//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with the subset
//! of the real API that `skymr-datagen`'s binary dataset codec uses:
//! little-endian integer/float accessors, slicing, and `freeze`. Cheap
//! cloning is preserved via an `Arc<[u8]>` backing store.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous slice of immutable bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Creates `Bytes` from a static byte slice without copying semantics
    /// concerns (the stand-in copies; the API matches).
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Number of bytes remaining in view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new `Bytes` viewing the given sub-range of this one.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice range {begin}..{end} out of bounds for length {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read access to a byte cursor, little-endian accessors included.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Borrows the unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies bytes into `dst`, consuming them.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice of {} bytes with only {} remaining",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance of {cnt} bytes with only {} remaining",
            self.len()
        );
        self.start += cnt;
    }
}

/// Write access to a growable byte buffer, little-endian writers included.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u32_le(7);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(0.25);
        let mut bytes = buf.freeze();
        let mut hdr = [0u8; 3];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_u64_le(), u64::MAX - 1);
        assert_eq!(bytes.get_f64_le(), 0.25);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_views_subrange() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let mut dst = [0u8; 2];
        b.copy_to_slice(&mut dst);
    }
}
