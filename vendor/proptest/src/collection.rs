//! Collection strategies: vectors and ordered sets of generated elements.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive size window for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<E::Value>` with a size drawn from `size`.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<E::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<E::Value>` targeting a size drawn from `size`.
///
/// When the element domain is too small to reach the target size, the set
/// is returned smaller after a bounded number of insertion attempts (the
/// same behaviour real proptest falls back to).
pub fn btree_set<E>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<E> {
    element: E,
    size: SizeRange,
}

impl<E> Strategy for BTreeSetStrategy<E>
where
    E: Strategy,
    E::Value: Ord,
{
    type Value = BTreeSet<E::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<E::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target.saturating_mul(16) + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
