//! Case scheduling: configuration, deterministic seeding, failure reporting.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases, overridable via the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        Self {
            cases: env_cases().unwrap_or(64),
        }
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Drives the case loop for one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose RNG is seeded from `name`, so every run of
    /// the same test generates the same case sequence.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        // PROPTEST_CASES changes the stream length, not the stream.
        let cases = env_cases().unwrap_or(config.cases);
        Self {
            cases,
            rng: TestRng::seed_from_u64(hasher.finish()),
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Prints the failing case index when a case body panics, since the
/// stand-in has no shrinking to localise failures.
#[derive(Debug)]
pub struct CaseGuard {
    case: u32,
}

impl CaseGuard {
    /// Enters case `case`.
    pub fn enter(case: u32) -> Self {
        Self { case }
    }

    /// Marks the case as passed.
    pub fn pass(self) {}
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stand-in: case #{} failed (deterministic seed; \
                 re-running the test reproduces it)",
                self.case
            );
        }
    }
}
