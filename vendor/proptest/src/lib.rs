//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest's API this workspace uses — the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_filter`,
//! range and tuple strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`arbitrary::any`], the [`proptest!`] macro, and `prop_assert*` macros —
//! on top of a deterministic seeded RNG.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the case index; re-running
//!   the test reproduces it exactly (seeds derive from the test's module
//!   path and name, not from entropy).
//! * **Case count** defaults to 64 and is overridable per-test via
//!   `ProptestConfig::with_cases` or globally via the `PROPTEST_CASES`
//!   environment variable (highest precedence).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestRunner};

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); ) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(
                config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..runner.cases() {
                let case_guard = $crate::test_runner::CaseGuard::enter(case);
                let ($($pat,)*) = (
                    $( $crate::strategy::Strategy::generate(&($strat), runner.rng()), )*
                );
                // Mirror real proptest: the body may `return Ok(())` early
                // or fall through; assertion macros panic directly.
                let case_result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(reason) = case_result {
                    panic!("proptest case #{case} returned Err: {reason}");
                }
                case_guard.pass();
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold.
///
/// The stand-in has no case-rejection bookkeeping; an unmet assumption
/// simply ends the case successfully.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}
