//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, RngCore};

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — the workspace's data space. Real proptest
    /// samples the full bit pattern space (including NaN/inf), which no
    /// test here relies on.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(0.0..1.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(0.0..1.0) as f32
    }
}
