//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// How many times a filtered strategy retries before giving up.
const FILTER_RETRIES: usize = 1024;

/// A recipe for generating values of type `Value` from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, retrying a bounded number
    /// of times.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} candidates in a row; \
             loosen the filter or narrow the base strategy",
            self.reason
        );
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
