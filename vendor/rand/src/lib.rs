//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The workspace's determinism policy requires every RNG to be explicitly
//! seeded (`SeedableRng::seed_from_u64` / `from_seed`), so this stand-in
//! deliberately provides **no** `thread_rng`, `from_entropy`, or
//! `rand::random` — constructing an unseeded generator is a compile error,
//! which is exactly the property `cargo xtask lint` enforces at the source
//! level for third-party `rand` too.
//!
//! The generator behind [`rngs::StdRng`] and [`rngs::SmallRng`] is
//! xoshiro256++ seeded through SplitMix64 — small, fast, and plenty for
//! synthetic data generation and property tests. Streams are stable across
//! runs and platforms; they are *not* the same streams as the real
//! `rand::rngs::StdRng` (ChaCha12), which no test in this workspace relies
//! on.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform double in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's standard seeded generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // A xoshiro state of all zeros is a fixed point; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            Self { s }
        }
    }

    /// Small generator — identical engine to [`StdRng`] in this stand-in.
    #[derive(Debug, Clone)]
    pub struct SmallRng(StdRng);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            Self(StdRng::from_seed(seed))
        }
    }
}

/// Uniform sampling from a range type.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                start + unit * (end - start)
            }
        }
    )*};
}

// f64 only: no workspace code samples f32, and a single float impl keeps
// literal ranges like `-60.0..60.0` unambiguous for inference.
impl_float_range!(f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(10usize..20);
            assert!((10..20).contains(&i));
            let j = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&j));
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f = rng.gen_range(0.0f64..1.0);
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples did not cover the unit interval");
    }
}
