//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment for this repository has no network access and no
//! vendored registry, so the real `parking_lot` cannot be fetched. This crate
//! exposes the subset of its API the workspace uses — panic-free guards with
//! no `Result` around `lock()` — implemented on top of `std::sync`. Lock
//! poisoning is deliberately ignored (`parking_lot` has no poisoning), which
//! matches the semantics workspace code was written against.

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: poisoned.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
