//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's benchmark harness compiling and runnable without
//! network access. Each benchmark closure is warmed up once and then timed
//! over a small fixed number of iterations; the mean per-iteration time is
//! printed. No statistics, baselines, or HTML reports — run the real
//! criterion in a connected environment for publishable numbers.
//!
//! On top of the printed lines, every completed benchmark is recorded in a
//! process-global registry ([`take_measurements`]) so harness-free bench
//! binaries can export machine-readable results (the repo's
//! `BENCH_dominance.json` baseline is produced this way).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

const MEASURE_ITERS: u64 = 20;

/// One completed benchmark: label plus mean per-iteration time.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark label (`group/function/parameter`).
    pub label: String,
    /// Mean wall-clock time per iteration, in nanoseconds.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains and returns every measurement recorded so far, in run order.
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement registry poisoned"))
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Batch-size hint, accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Timing handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = MEASURE_ITERS;
    }

    /// Times `routine` over inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        let mut total = Duration::ZERO;
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = MEASURE_ITERS;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
    };
    println!(
        "bench {label:<50} {per_iter:>12.2?}/iter ({} iters)",
        bencher.iters
    );
    if let Ok(mut all) = MEASUREMENTS.lock() {
        all.push(Measurement {
            label: label.to_owned(),
            mean_ns: per_iter.as_nanos() as f64,
            iters: bencher.iters,
        });
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
