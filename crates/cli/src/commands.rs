//! The CLI subcommand implementations.

use skymr::bitstring::job::generate_bitstring;
use skymr::groups::plan_groups;
use skymr::{mr_gpmrs, mr_gpsrs, mr_hybrid, mr_skyband, PpdPolicy, SkylineConfig};
use skymr_baselines::{
    bnl_skyline, discretize, dnc_skyline, mr_angle, mr_bitmap, mr_bnl, mr_sfs, sfs_skyline, sky_mr,
    BaselineConfig, SfsOrder, SkyMrConfig,
};
use skymr_common::{Dataset, Tuple};
use skymr_datagen::{generate as gen_data, io, Distribution};
use skymr_mapreduce::telemetry::export::{chrome_trace, jsonl};
use skymr_mapreduce::telemetry::json;
use skymr_mapreduce::{
    BlacklistPolicy, Collector, FaultPlan, FaultTolerance, PipelineMetrics, Placement,
};

use crate::args::Args;

fn parse_distribution(args: &Args) -> Result<Distribution, String> {
    match args.require("dist")? {
        "independent" => Ok(Distribution::Independent),
        "correlated" => Ok(Distribution::Correlated),
        "anticorrelated" => Ok(Distribution::Anticorrelated),
        "clustered" => {
            let clusters = args.get_parsed("clusters", 4usize)?;
            Ok(Distribution::Clustered { clusters })
        }
        other => Err(format!(
            "unknown distribution {other:?} (independent|correlated|anticorrelated|clustered)"
        )),
    }
}

/// Loads `--input FILE` (binary or CSV, auto-detected by magic bytes), or
/// generates from `--dist/--dim/--card/--seed`; `--dims i,j,…` projects
/// the result onto a subspace (subspace skyline queries).
fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let data = if let Some(path) = args.get("input") {
        let raw = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        if raw.starts_with(b"SKYMR") {
            io::decode_binary(raw.into()).map_err(|e| format!("cannot parse {path}: {e}"))?
        } else {
            io::read_csv(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
    } else {
        let dist = parse_distribution(args)?;
        let dim = args.get_parsed("dim", 0usize)?;
        let card = args.get_parsed("card", 0usize)?;
        if dim == 0 || card == 0 {
            return Err("without --input, --dim and --card are required".into());
        }
        let seed = args.get_parsed("seed", 42u64)?;
        gen_data(dist, dim, card, seed)
    };
    let data = if let Some(spec) = args.get("dims") {
        let dims: Vec<usize> = spec
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .map_err(|e| format!("bad --dims entry {s:?}: {e}"))
            })
            .collect::<Result<_, _>>()?;
        let projected = data.project(&dims).map_err(|e| e.to_string())?;
        println!("projected onto dimensions {dims:?} (subspace query)");
        projected
    } else {
        data
    };
    match (args.get("lo"), args.get("hi")) {
        (None, None) => Ok(data),
        (lo, hi) => {
            let parse = |spec: Option<&str>, default: f64| -> Result<Vec<f64>, String> {
                match spec {
                    None => Ok(vec![default; data.dim()]),
                    Some(s) => s
                        .split(',')
                        .map(|v| {
                            v.trim()
                                .parse()
                                .map_err(|e| format!("bad bound {v:?}: {e}"))
                        })
                        .collect(),
                }
            };
            let constraint = skymr::Constraint::new(parse(lo, 0.0)?, parse(hi, 1.0)?)
                .map_err(|e| e.to_string())?;
            let filtered = constraint.filter(&data);
            println!(
                "constrained to the given range box: {} of {} tuples remain",
                filtered.len(),
                data.len()
            );
            Ok(filtered)
        }
    }
}

fn parse_ppd(args: &Args) -> Result<PpdPolicy, String> {
    match args.get("ppd") {
        None | Some("auto") => Ok(PpdPolicy::auto()),
        Some(v) => {
            let n: usize = v.parse().map_err(|e| format!("bad --ppd: {e}"))?;
            Ok(PpdPolicy::Fixed(n))
        }
    }
}

/// Applies `--memory-budget SIZE` / `--spill-dir DIR` — the out-of-core
/// storage plane — to a simulated cluster. SIZE takes `k`/`m`/`g`
/// suffixes (powers of 1024).
fn apply_storage(args: &Args, cluster: &mut skymr_mapreduce::ClusterConfig) -> Result<(), String> {
    if let Some(v) = args.get("memory-budget") {
        let bytes =
            skymr_mapreduce::parse_byte_size(v).map_err(|e| format!("bad --memory-budget: {e}"))?;
        cluster.storage.memory_budget = Some(bytes);
    }
    if let Some(dir) = args.get("spill-dir") {
        cluster.storage.spill_dir = Some(dir.into());
    }
    Ok(())
}

fn skyline_config(args: &Args) -> Result<SkylineConfig, String> {
    let mut config = SkylineConfig::default();
    config.mappers = args.get_parsed("mappers", config.mappers)?;
    config.reducers = args.get_parsed("reducers", config.reducers)?;
    config.ppd = parse_ppd(args)?;
    config.local_algo = match args.get("local") {
        None | Some("bnl") => skymr::LocalAlgo::Bnl,
        Some("sfs") => skymr::LocalAlgo::Sfs,
        Some("dnc") => skymr::LocalAlgo::Dnc,
        Some(other) => return Err(format!("unknown local kernel {other:?} (bnl|sfs|dnc)")),
    };
    // Node-hostile chaos: a seeded placement plus a node-loss/partition
    // fault plan, with Hadoop-style blacklisting. The skyline must come out
    // byte-identical regardless (pair with --verify to check).
    if let Some(seed) = args.get("chaos-nodes") {
        let seed: u64 = seed
            .parse()
            .map_err(|e| format!("bad --chaos-nodes seed: {e}"))?;
        config.cluster.placement = Some(Placement::new(seed));
        config.fault_tolerance = FaultTolerance::with_plan(FaultPlan::chaos_nodes(seed))
            .with_blacklist(BlacklistPolicy::new());
    }
    // Data-plane chaos: seeded shuffle-frame corruption and hung attempts.
    // The frame CRC plus the progress timeout must recover to a
    // byte-identical skyline (pair with --verify to check).
    let data_plan = match args.get("chaos-corrupt") {
        Some(seed) => {
            let seed: u64 = seed
                .parse()
                .map_err(|e| format!("bad --chaos-corrupt seed: {e}"))?;
            Some(FaultPlan::chaos_data(seed))
        }
        None => None,
    };
    // A scripted poison record `MAP:RECORD`: that map task panics
    // deterministically on that record every attempt; pair with
    // --skip-bad-records to complete (degraded) instead of aborting.
    let data_plan = match args.get("poison") {
        Some(spec) => {
            let (m, n) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad --poison {spec:?}, expected MAP:RECORD"))?;
            let m: usize = m.parse().map_err(|e| format!("bad --poison map: {e}"))?;
            let n: usize = n.parse().map_err(|e| format!("bad --poison record: {e}"))?;
            Some(
                data_plan
                    .unwrap_or_else(FaultPlan::none)
                    .with_poison_record(m, n),
            )
        }
        None => data_plan,
    };
    if let Some(plan) = data_plan {
        config.fault_tolerance = FaultTolerance::with_plan(plan);
    }
    config.cluster.skip_bad_records = args.has_flag("skip-bad-records");
    apply_storage(args, &mut config.cluster)?;
    if let Some(path) = args.get("checkpoint") {
        config.checkpoint.file = Some(path.into());
    }
    config.checkpoint.resume = args.has_flag("resume");
    if args.get("kill-after").is_some() {
        config.checkpoint.kill_after = Some(args.get_parsed("kill-after", 0usize)?);
    }
    // Gate the pipeline's stages behind an admission queue of this depth;
    // resumed stages re-enter the queue rather than bypassing it.
    if args.get("admission-queue").is_some() {
        config.checkpoint.admission_queue = Some(args.get_parsed("admission-queue", 0usize)?);
    }
    Ok(config)
}

fn baseline_config(args: &Args) -> Result<BaselineConfig, String> {
    let mut config = BaselineConfig::default();
    config.mappers = args.get_parsed("mappers", config.mappers)?;
    apply_storage(args, &mut config.cluster)?;
    Ok(config)
}

fn print_metrics(metrics: &PipelineMetrics) {
    for job in &metrics.jobs {
        println!(
            "  job {:<18} sim {:>8.2?}  map {:>8.2?}  shuffle {:>7} KiB / {:>7.2?}  reduce {:>8.2?}",
            job.name,
            job.sim_runtime,
            job.map_phase,
            job.shuffle_bytes / 1024,
            job.shuffle_time,
            job.reduce_phase
        );
        if job.nodes_lost > 0 || job.maps_reexecuted > 0 || job.nodes_blacklisted > 0 {
            println!(
                "      node faults: {} lost, {} blacklisted; {} maps re-executed ({:.2?})",
                job.nodes_lost, job.nodes_blacklisted, job.maps_reexecuted, job.reexecution_time
            );
        }
        if job.spill_files > 0 {
            println!(
                "      storage: {} spill files ({} KiB) merged in {} passes",
                job.spill_files,
                job.spilled_bytes / 1024,
                job.merge_passes
            );
        }
        if job.corrupt_fetches > 0 || job.records_skipped > 0 {
            println!(
                "      data faults: {} corrupt fetches re-fetched, {} bad records skipped{}",
                job.corrupt_fetches,
                job.records_skipped,
                if job.degraded {
                    " (degraded output)"
                } else {
                    ""
                }
            );
        }
        if !job.queue_wait_time.is_zero() || job.preemptions > 0 {
            println!(
                "      scheduling: queued {:.2?}, {} preemptions, {:.2?} wasted",
                job.queue_wait_time, job.preemptions, job.wasted_task_time
            );
        }
    }
    println!(
        "  total simulated runtime {:.2?}   (host wall {:.2?})",
        metrics.sim_runtime(),
        metrics.host_wall()
    );
}

fn write_skyline(args: &Args, skyline: &[Tuple], dim: usize) -> Result<(), String> {
    if let Some(path) = args.get("out") {
        let ds = Dataset::new_unchecked(dim, skyline.to_vec());
        io::write_csv(&ds, path).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote skyline to {path}");
    }
    Ok(())
}

const GENERATE_OPTS: &[&str] = &["dist", "dim", "card", "seed", "clusters", "out", "format"];
const RUN_OPTS: &[&str] = &[
    "algo",
    "input",
    "dist",
    "dim",
    "card",
    "seed",
    "clusters",
    "mappers",
    "reducers",
    "ppd",
    "out",
    "distinct",
    "verify",
    "k",
    "dims",
    "lo",
    "hi",
    "local",
    "trace",
    "chaos-nodes",
    "chaos-corrupt",
    "poison",
    "skip-bad-records",
    "checkpoint",
    "resume",
    "kill-after",
    "admission-queue",
    "memory-budget",
    "spill-dir",
];
const PLAN_OPTS: &[&str] = &[
    "input", "dist", "dim", "card", "seed", "clusters", "ppd", "reducers", "dims", "lo", "hi",
];
const INFO_OPTS: &[&str] = &[
    "input", "dist", "dim", "card", "seed", "clusters", "dims", "lo", "hi",
];

/// `skymr-cli generate`
pub fn generate(args: &Args) -> Result<(), String> {
    args.reject_unknown(GENERATE_OPTS)?;
    let dist = parse_distribution(args)?;
    let dim = args.get_parsed("dim", 0usize)?;
    let card = args.get_parsed("card", 0usize)?;
    if dim == 0 || card == 0 {
        return Err("--dim and --card are required".into());
    }
    let seed = args.get_parsed("seed", 42u64)?;
    let out = args.require("out")?;
    let ds = gen_data(dist, dim, card, seed);
    match args.get("format").unwrap_or("csv") {
        "csv" => io::write_csv(&ds, out).map_err(|e| format!("cannot write {out}: {e}"))?,
        "binary" | "bin" => {
            io::write_binary(&ds, out).map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        other => return Err(format!("unknown format {other:?} (csv|binary)")),
    }
    println!(
        "wrote {} {}-dimensional {} tuples to {out}",
        ds.len(),
        ds.dim(),
        dist.name()
    );
    Ok(())
}

/// `skymr-cli run`
pub fn run(args: &Args) -> Result<(), String> {
    args.reject_unknown(RUN_OPTS)?;
    let algo = args.require("algo")?.to_string();
    let data = load_dataset(args)?;
    println!("dataset: {} tuples, {} dimensions", data.len(), data.dim());
    // With --trace, the MapReduce algorithms record their span timelines
    // into this collector; it is exported after the run completes.
    let collector = args.get("trace").map(|_| Collector::new());
    let sky_config = || -> Result<SkylineConfig, String> {
        Ok(skyline_config(args)?.with_telemetry(collector.clone()))
    };
    let (skyline, metrics): (Vec<Tuple>, Option<PipelineMetrics>) = match algo.as_str() {
        "gpsrs" => {
            let run = mr_gpsrs(&data, &sky_config()?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "gpmrs" => {
            let run = mr_gpmrs(&data, &sky_config()?).map_err(|e| e.to_string())?;
            println!(
                "grid: PPD {}, {} surviving of {} non-empty partitions, {} groups -> {} buckets",
                run.info.ppd,
                run.info.surviving_partitions,
                run.info.non_empty_partitions,
                run.info.independent_groups,
                run.info.buckets
            );
            (run.skyline, Some(run.metrics))
        }
        "hybrid" => {
            let run = mr_hybrid(&data, &sky_config()?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "skyband" => {
            let k = args.get_parsed("k", 2u32)?;
            println!("note: computing the {k}-skyband (tuples dominated by fewer than {k} others)");
            let run = mr_skyband(&data, k, &sky_config()?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "topk" => {
            let k = args.get_parsed("k", 10usize)?;
            let run =
                skymr::mr_top_k_dominating(&data, k, &sky_config()?).map_err(|e| e.to_string())?;
            println!("top-{k} dominating tuples (score = tuples dominated):");
            for (t, score) in &run.ranked {
                println!("  #{:<8} score {score}", t.id);
            }
            (
                run.ranked.into_iter().map(|(t, _)| t).collect(),
                Some(run.metrics),
            )
        }
        "mr-bnl" => {
            let run = mr_bnl(&data, &baseline_config(args)?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "mr-sfs" => {
            let run = mr_sfs(&data, &baseline_config(args)?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "mr-angle" => {
            let run = mr_angle(&data, &baseline_config(args)?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "sky-mr" => {
            let mut config = SkyMrConfig::default();
            config.mappers = args.get_parsed("mappers", config.mappers)?;
            config.reducers = args.get_parsed("reducers", config.reducers)?;
            let run = sky_mr(&data, &config).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "mr-bitmap" => {
            let distinct = args.get_parsed("distinct", 16usize)?;
            let discretized = discretize(&data, distinct);
            println!("note: mr-bitmap runs on data discretized to {distinct} values/dimension");
            let run =
                mr_bitmap(&discretized, &baseline_config(args)?).map_err(|e| e.to_string())?;
            (run.skyline, Some(run.metrics))
        }
        "bnl" => (bnl_skyline(data.tuples()), None),
        "sfs" => (sfs_skyline(data.tuples(), SfsOrder::Entropy), None),
        "dnc" => (dnc_skyline(data.tuples()), None),
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    println!(
        "skyline: {} of {} tuples ({:.2}%)",
        skyline.len(),
        data.len(),
        100.0 * skyline.len() as f64 / data.len().max(1) as f64
    );
    if let Some(metrics) = &metrics {
        print_metrics(metrics);
        if collector.is_some() {
            println!("{}", metrics.phase_table());
        }
    }
    if let (Some(collector), Some(path)) = (&collector, args.get("trace")) {
        let doc = collector.finish();
        // A `.jsonl` extension selects line-delimited export; anything else
        // gets the Chrome trace_event JSON Perfetto loads directly.
        let body = if path.ends_with(".jsonl") {
            jsonl(&doc)
        } else {
            chrome_trace(&doc)
        };
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote trace ({} events) to {path}", doc.events.len());
    }
    if args.has_flag("verify") && !matches!(algo.as_str(), "mr-bitmap" | "skyband" | "topk") {
        // (mr-bitmap answers for the discretized dataset and skyband for
        // k ≥ 1 bands, so the plain BNL oracle does not apply to them.)
        let oracle = bnl_skyline(data.tuples());
        let mut got: Vec<u64> = skyline.iter().map(|t| t.id).collect();
        got.sort_unstable();
        let want: Vec<u64> = oracle.iter().map(|t| t.id).collect();
        if got == want {
            println!("verify: OK — matches the centralized BNL oracle");
        } else {
            return Err(format!(
                "verify FAILED: got {} tuples, oracle has {}",
                got.len(),
                want.len()
            ));
        }
    }
    write_skyline(args, &skyline, data.dim())
}

/// `skymr-cli plan`
pub fn plan(args: &Args) -> Result<(), String> {
    args.reject_unknown(PLAN_OPTS)?;
    let data = load_dataset(args)?;
    let config = SkylineConfig {
        ppd: parse_ppd(args)?,
        ..SkylineConfig::default()
    };
    let reducers = args.get_parsed("reducers", config.reducers)?;
    let splits = data.split(config.mappers);
    let (bitstring, info, _) =
        generate_bitstring(&splits, data.dim(), data.len(), &config).map_err(|e| e.to_string())?;
    println!(
        "dataset   : {} tuples, {} dimensions",
        data.len(),
        data.dim()
    );
    println!(
        "grid      : PPD {} -> {} partitions ({} non-empty, {} after pruning)",
        info.ppd,
        bitstring.grid().num_partitions(),
        info.non_empty,
        info.surviving
    );
    let plan = plan_groups(&bitstring, reducers, config.merge_policy);
    println!(
        "groups    : {} independent partition groups",
        plan.groups.len()
    );
    println!(
        "buckets   : {} (of {} requested reducers)",
        plan.num_buckets(),
        reducers
    );
    for (i, bucket) in plan.buckets.iter().enumerate() {
        println!(
            "  bucket {i}: {} partitions ({} groups, cost {})",
            bucket.partitions.len(),
            bucket.group_indices.len(),
            bucket.cost
        );
    }
    let replicated = plan
        .buckets
        .iter()
        .map(|b| b.partitions.len())
        .sum::<usize>()
        .saturating_sub(info.surviving);
    println!("replicated partition copies across buckets: {replicated}");
    Ok(())
}

/// One complete span pulled out of a trace file.
struct SpanRow {
    pid: u64,
    cat: String,
    dur: u64,
    end: u64,
}

/// Pulls the fields the summary needs out of one event object.
fn classify_event(
    event: &json::Value,
    names: &mut std::collections::BTreeMap<u64, String>,
    spans: &mut Vec<SpanRow>,
) {
    let pid = event.get("pid").and_then(json::Value::as_u64).unwrap_or(0);
    let ph = event.get("ph").and_then(json::Value::as_str).unwrap_or("");
    match ph {
        "M" if event.get("name").and_then(json::Value::as_str) == Some("process_name") => {
            if let Some(name) = event
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(json::Value::as_str)
            {
                names.insert(pid, name.to_string());
            }
        }
        "X" => {
            let ts = event.get("ts").and_then(json::Value::as_u64).unwrap_or(0);
            let dur = event.get("dur").and_then(json::Value::as_u64).unwrap_or(0);
            spans.push(SpanRow {
                pid,
                cat: event
                    .get("cat")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?")
                    .to_string(),
                dur,
                end: ts + dur,
            });
        }
        _ => {}
    }
}

/// How many registry counters `skymr-cli trace` prints per job.
const SHOWN: usize = 24;

/// `skymr-cli trace` — summarize a trace file written by `run --trace`.
pub fn trace(args: &Args) -> Result<(), String> {
    args.reject_unknown(&[])?;
    let path = args
        .positional
        .first()
        .ok_or("usage: skymr-cli trace FILE")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    let mut names: std::collections::BTreeMap<u64, String> = std::collections::BTreeMap::new();
    let mut spans: Vec<SpanRow> = Vec::new();
    let mut registries: Vec<(String, Vec<(String, u64)>)> = Vec::new();

    if path.ends_with(".jsonl") {
        for (n, line) in raw.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let value = json::parse(line).map_err(|e| format!("{path}:{}: {e}", n + 1))?;
            match value.get("type").and_then(json::Value::as_str) {
                Some("event") => {
                    if let Some(event) = value.get("event") {
                        classify_event(event, &mut names, &mut spans);
                    }
                }
                Some("registry") => {
                    let job = value
                        .get("job")
                        .and_then(json::Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                    let counters = value
                        .get("counters")
                        .and_then(json::Value::as_object)
                        .map(|kv| {
                            kv.iter()
                                .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                                .collect()
                        })
                        .unwrap_or_default();
                    registries.push((job, counters));
                }
                _ => return Err(format!("{path}:{}: unknown record type", n + 1)),
            }
        }
    } else {
        let doc = json::parse(&raw).map_err(|e| format!("{path}: {e}"))?;
        let events = doc
            .get("traceEvents")
            .and_then(json::Value::as_array)
            .ok_or_else(|| format!("{path}: no traceEvents array — not a Chrome trace?"))?;
        for event in events {
            classify_event(event, &mut names, &mut spans);
        }
        if let Some(regs) = doc.get("registries").and_then(json::Value::as_array) {
            for reg in regs {
                let job = reg
                    .get("job")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                let counters = reg
                    .get("counters")
                    .and_then(json::Value::as_object)
                    .map(|kv| {
                        kv.iter()
                            .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                            .collect()
                    })
                    .unwrap_or_default();
                registries.push((job, counters));
            }
        }
    }

    println!("trace      : {path}");
    println!("spans      : {}", spans.len());
    for (pid, name) in &names {
        let mut by_cat: std::collections::BTreeMap<&str, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut makespan = 0u64;
        for s in spans.iter().filter(|s| s.pid == *pid) {
            let entry = by_cat.entry(s.cat.as_str()).or_default();
            entry.0 += 1;
            entry.1 += s.dur;
            makespan = makespan.max(s.end);
        }
        if by_cat.is_empty() {
            continue;
        }
        println!("process {pid} ({name}): finishes at {makespan} ticks");
        for (cat, (count, total)) in by_cat {
            println!("  {cat:<12} {count:>5} spans, {total:>12} ticks total");
        }
    }
    for (job, counters) in &registries {
        println!("registry {job}: {} counters", counters.len());
        for (k, v) in counters.iter().take(SHOWN) {
            println!("  {k:<44} {v}");
        }
        if counters.len() > SHOWN {
            println!("  … and {} more", counters.len() - SHOWN);
        }
    }
    Ok(())
}

/// `skymr-cli info`
pub fn info(args: &Args) -> Result<(), String> {
    args.reject_unknown(INFO_OPTS)?;
    let data = load_dataset(args)?;
    println!("tuples     : {}", data.len());
    println!("dimensions : {}", data.dim());
    if data.is_empty() {
        return Ok(());
    }
    for d in 0..data.dim() {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for t in data.tuples() {
            let v = t.values[d];
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        println!(
            "  dim {d}: min {min:.4}  mean {:.4}  max {max:.4}",
            sum / data.len() as f64
        );
    }
    let skyline = bnl_skyline(data.tuples());
    println!(
        "skyline    : {} tuples ({:.2}%)",
        skyline.len(),
        100.0 * skyline.len() as f64 / data.len() as f64
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn run_all_algorithms_on_generated_data() {
        for algo in [
            "gpsrs",
            "gpmrs",
            "hybrid",
            "mr-bnl",
            "mr-sfs",
            "mr-angle",
            "sky-mr",
            "mr-bitmap",
            "bnl",
            "sfs",
            "dnc",
        ] {
            let a = args(&format!(
                "run --algo {algo} --dist independent --dim 3 --card 200 --seed 5 --mappers 2 --reducers 2"
            ));
            run(&a).unwrap_or_else(|e| panic!("{algo} failed: {e}"));
        }
    }

    #[test]
    fn run_skyband_with_k() {
        let a = args("run --algo skyband --k 3 --dist independent --dim 3 --card 200");
        run(&a).unwrap();
    }

    #[test]
    fn run_topk_dominating() {
        let a = args("run --algo topk --k 5 --dist anticorrelated --dim 3 --card 200");
        run(&a).unwrap();
    }

    #[test]
    fn run_with_each_local_kernel() {
        for kernel in ["bnl", "sfs", "dnc"] {
            let a = args(&format!(
                "run --algo gpsrs --dist anticorrelated --dim 3 --card 200 --local {kernel} --verify"
            ));
            run(&a).unwrap_or_else(|e| panic!("kernel {kernel} failed: {e}"));
        }
        let a = args("run --algo gpsrs --dist independent --dim 2 --card 50 --local nope");
        assert!(run(&a).is_err());
    }

    #[test]
    fn run_constrained_skyline() {
        let a = args(
            "run --algo gpmrs --dist anticorrelated --dim 2 --card 300 --lo 0.2,0.1 --hi 0.9,0.8 --verify",
        );
        run(&a).unwrap();
        // --hi alone defaults the lower bounds to zero.
        let a = args("run --algo bnl --dist independent --dim 2 --card 100 --hi 0.5,0.5");
        run(&a).unwrap();
    }

    #[test]
    fn run_subspace_projection() {
        let a =
            args("run --algo gpmrs --dist anticorrelated --dim 5 --card 200 --dims 0,2,4 --verify");
        run(&a).unwrap();
        let a = args("run --algo bnl --dist independent --dim 3 --card 50 --dims 9");
        assert!(run(&a).is_err(), "out-of-range projection must fail");
    }

    #[test]
    fn run_with_verify_flag_checks_oracle() {
        let a = args("run --algo gpmrs --dist anticorrelated --dim 3 --card 300 --verify");
        run(&a).unwrap();
    }

    #[test]
    fn run_rejects_unknown_algorithm_and_options() {
        let a = args("run --algo nope --dist independent --dim 2 --card 10");
        assert!(run(&a).is_err());
        let a = args("run --algo bnl --dist independent --dim 2 --card 10 --bogus 1");
        assert!(run(&a).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn generate_binary_and_reload() {
        let path = std::env::temp_dir().join(format!("skymr-cli-bin-{}.bin", std::process::id()));
        let a = args(&format!(
            "generate --dist independent --dim 3 --card 80 --format binary --out {}",
            path.display()
        ));
        generate(&a).unwrap();
        let a = args(&format!(
            "run --algo gpsrs --input {} --verify",
            path.display()
        ));
        run(&a).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_and_reload_roundtrip() {
        let path = std::env::temp_dir().join(format!("skymr-cli-test-{}.csv", std::process::id()));
        let a = args(&format!(
            "generate --dist anticorrelated --dim 3 --card 100 --seed 9 --out {}",
            path.display()
        ));
        generate(&a).unwrap();
        let a = args(&format!("info --input {}", path.display()));
        info(&a).unwrap();
        let a = args(&format!("run --algo gpmrs --input {}", path.display()));
        run(&a).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_writes_and_summarizes_traces() {
        for ext in ["json", "jsonl"] {
            let path =
                std::env::temp_dir().join(format!("skymr-cli-trace-{}.{ext}", std::process::id()));
            let a = args(&format!(
                "run --algo gpmrs --dist anticorrelated --dim 3 --card 300 --seed 7 \
                 --mappers 3 --reducers 2 --ppd 3 --trace {}",
                path.display()
            ));
            run(&a).unwrap();
            let a = args(&format!("trace {}", path.display()));
            trace(&a).unwrap_or_else(|e| panic!("summarizing .{ext} failed: {e}"));
            std::fs::remove_file(path).ok();
        }
    }

    #[test]
    fn trace_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("skymr-cli-bad-{}.json", std::process::id()));
        std::fs::write(&path, "not json").unwrap();
        let a = args(&format!("trace {}", path.display()));
        assert!(trace(&a).is_err());
        std::fs::remove_file(path).ok();
        let a = args("trace");
        assert!(trace(&a).is_err(), "missing file argument must fail");
    }

    #[test]
    fn run_with_node_chaos_still_verifies() {
        // A handful of seeds so at least one actually loses a node; every
        // run must still match the BNL oracle.
        for seed in 0..4 {
            let a = args(&format!(
                "run --algo gpmrs --dist anticorrelated --dim 3 --card 300 \
                 --mappers 4 --reducers 2 --chaos-nodes {seed} --verify"
            ));
            run(&a).unwrap_or_else(|e| panic!("chaos seed {seed} failed: {e}"));
        }
    }

    #[test]
    fn run_with_data_chaos_still_verifies() {
        // Seeded shuffle corruption and hangs must be invisible in the
        // output: every seed still matches the BNL oracle.
        for seed in 0..4 {
            let a = args(&format!(
                "run --algo gpmrs --dist anticorrelated --dim 3 --card 300 \
                 --mappers 4 --reducers 2 --chaos-corrupt {seed} --verify"
            ));
            run(&a).unwrap_or_else(|e| panic!("data chaos seed {seed} failed: {e}"));
        }
    }

    #[test]
    fn run_poison_record_needs_skip_bad_records() {
        // Without the skip policy the poisoned record aborts the job …
        let base = "run --algo gpsrs --dist independent --dim 3 --card 200 --seed 5 \
                    --mappers 2 --reducers 2 --poison 0:3";
        let err = run(&args(base)).expect_err("poison without skip must abort");
        assert!(err.contains("poisoned"), "unexpected error: {err}");
        // … with it, the job completes degraded, skipping exactly one record.
        run(&args(&format!("{base} --skip-bad-records"))).unwrap();
        // Malformed specs are rejected up front.
        let bad = args("run --algo gpsrs --dist independent --dim 2 --card 50 --poison nope");
        assert!(run(&bad).unwrap_err().contains("MAP:RECORD"));
    }

    #[test]
    fn run_kill_and_resume_via_flags() {
        let path = std::env::temp_dir().join(format!("skymr-cli-ckpt-{}.json", std::process::id()));
        let base = format!(
            "run --algo gpsrs --dist anticorrelated --dim 3 --card 300 --seed 11 \
             --checkpoint {}",
            path.display()
        );
        let killed = run(&args(&format!("{base} --kill-after 1")))
            .expect_err("the kill-point must abort the run");
        assert!(killed.contains("killed"), "unexpected error: {killed}");
        run(&args(&format!("{base} --resume --verify"))).unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn run_admission_queue_gates_the_pipeline() {
        let base = "run --algo gpsrs --dist independent --dim 3 --card 200 --seed 5";
        // Depth 1 admits the sequential two-stage chain one stage at a time.
        run(&args(&format!("{base} --admission-queue 1 --verify"))).unwrap();
        // Depth 0 rejects the very first stage with the structured error.
        let err = run(&args(&format!("{base} --admission-queue 0")))
            .expect_err("zero-depth admission queue must reject");
        assert!(err.contains("admission"), "unexpected error: {err}");
    }

    #[test]
    fn run_spilling_under_a_memory_budget_still_verifies() {
        // A 1 KiB budget forces every MapReduce algorithm out of core; the
        // skyline must stay byte-identical to the in-memory oracle.
        for algo in ["gpsrs", "gpmrs", "mr-bnl", "mr-angle"] {
            let a = args(&format!(
                "run --algo {algo} --dist anticorrelated --dim 3 --card 300 --seed 5 \
                 --mappers 3 --reducers 2 --memory-budget 1k --verify"
            ));
            run(&a).unwrap_or_else(|e| panic!("{algo} spill run failed: {e}"));
        }
        let bad =
            args("run --algo gpsrs --dist independent --dim 2 --card 50 --memory-budget nope");
        assert!(run(&bad).unwrap_err().contains("--memory-budget"));
    }

    #[test]
    fn run_spilling_into_an_explicit_spill_dir() {
        let dir = std::env::temp_dir().join(format!("skymr-cli-spill-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let a = args(&format!(
            "run --algo gpmrs --dist anticorrelated --dim 3 --card 300 --seed 7 \
             --memory-budget 512 --spill-dir {} --verify",
            dir.display()
        ));
        run(&a).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_reports_structure() {
        let a = args("plan --dist anticorrelated --dim 3 --card 500 --ppd 4 --reducers 3");
        plan(&a).unwrap();
    }

    #[test]
    fn load_requires_input_or_shape() {
        let a = args("info --dist independent");
        assert!(info(&a).is_err());
    }

    #[test]
    fn clustered_distribution_parses() {
        let a = args("info --dist clustered --clusters 2 --dim 2 --card 50");
        info(&a).unwrap();
    }
}
