//! A small, dependency-free command-line argument parser.
//!
//! Supports `--key value` options and positional arguments; unknown keys
//! are errors so typos fail fast.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positionals, and `--key value` pairs.
#[derive(Debug, Default)]
pub struct Args {
    /// The first positional (subcommand), if any.
    pub command: Option<String>,
    /// Remaining positionals.
    pub positional: Vec<String>,
    /// `--key value` options.
    options: BTreeMap<String, String>,
    /// Bare `--flag` options.
    flags: Vec<String>,
}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// A `--key` followed by another `--…` token or end of input is a
    /// flag; otherwise it consumes the next token as its value.
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let tokens: Vec<String> = raw.into_iter().collect();
        let mut args = Args::default();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare `--` is not supported".into());
                }
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.options.insert(key.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            } else {
                if args.command.is_none() {
                    args.command = Some(tok.clone());
                } else {
                    args.positional.push(tok.clone());
                }
                i += 1;
            }
        }
        Ok(args)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed option with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("bad value for --{key}: {e}")),
        }
    }

    /// `true` iff the bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// All option keys that were supplied (for unknown-option checking).
    pub fn supplied_keys(&self) -> impl Iterator<Item = &str> {
        self.options
            .keys()
            .map(String::as_str)
            .chain(self.flags.iter().map(String::as_str))
    }

    /// Errors if any supplied option is not in `known`.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for key in self.supplied_keys() {
            if !known.contains(&key) {
                return Err(format!(
                    "unknown option --{key} (expected one of: {})",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("run --algo gpmrs --card 1000 --verbose");
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("algo"), Some("gpmrs"));
        assert_eq!(a.get_parsed("card", 0usize).unwrap(), 1000);
        assert!(a.has_flag("verbose"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse("run --algo gpsrs");
        assert_eq!(a.get_parsed("card", 42usize).unwrap(), 42);
        assert!(a.require("algo").is_ok());
        assert!(a.require("missing").is_err());
    }

    #[test]
    fn rejects_unknown_options() {
        let a = parse("run --algo gpsrs --oops 1");
        assert!(a.reject_unknown(&["algo"]).is_err());
        assert!(a.reject_unknown(&["algo", "oops"]).is_ok());
    }

    #[test]
    fn bad_values_report_key() {
        let a = parse("run --card notanumber");
        let err = a.get_parsed("card", 0usize).unwrap_err();
        assert!(err.contains("--card"));
    }

    #[test]
    fn positionals_after_command() {
        let a = parse("info data.csv");
        assert_eq!(a.command.as_deref(), Some("info"));
        assert_eq!(a.positional, vec!["data.csv"]);
    }
}
