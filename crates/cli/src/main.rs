//! `skymr-cli` — generate workloads, run skyline algorithms, inspect plans.
//!
//! ```text
//! skymr-cli generate --dist anticorrelated --dim 5 --card 50000 --out data.csv
//! skymr-cli run --algo gpmrs --input data.csv --reducers 13
//! skymr-cli run --algo mr-bnl --dist independent --dim 8 --card 20000
//! skymr-cli plan --input data.csv --ppd 4 --reducers 8
//! skymr-cli info --input data.csv
//! ```
//!
//! Every subcommand prints a human-readable report; `run` can also write
//! the skyline as CSV with `--out`.

mod args;
mod commands;

use std::process::ExitCode;

use args::Args;

const USAGE: &str = "\
skymr-cli — skyline computation in (simulated) MapReduce

USAGE:
    skymr-cli <COMMAND> [OPTIONS]

COMMANDS:
    generate   Generate a synthetic dataset and write it to a file
               --dist independent|correlated|anticorrelated|clustered
               --dim N --card N [--seed N] [--clusters N] --out FILE
               [--format csv|binary   (default csv; inputs auto-detect)]
    run        Run a skyline algorithm
               --algo gpsrs|gpmrs|hybrid|skyband|topk|mr-bnl|mr-sfs|
                      mr-angle|sky-mr|mr-bitmap|bnl|sfs|dnc
               [--k N          (skyband depth, default 2; topk size, default 10)]
               (--input FILE | --dist … --dim N --card N [--seed N])
               [--mappers N] [--reducers N] [--ppd auto|N] [--out FILE]
               [--distinct N   (mr-bitmap: discretization levels, default 16)]
               [--verify       (check the result against the BNL oracle)]
               [--dims i,j,…   (project onto a subspace before running)]
               [--lo a,b,… --hi a,b,…  (constrained skyline: range box)]
               [--local bnl|sfs|dnc    (mapper local-skyline kernel)]
               [--trace FILE   (write the span timeline: Chrome trace_event
                                JSON for Perfetto, or JSONL if FILE ends
                                in .jsonl; MapReduce algorithms only)]
    trace      Summarize a trace file written by `run --trace`
               FILE   (either export format is accepted)
    plan       Show the bitstring and independent-group structure
               (--input FILE | --dist … --dim N --card N [--seed N])
               [--ppd auto|N] [--reducers N]
    info       Dataset statistics
               (--input FILE | --dist … --dim N --card N [--seed N])
    help       Show this message
";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("generate") => commands::generate(&args),
        Some("run") => commands::run(&args),
        Some("plan") => commands::plan(&args),
        Some("info") => commands::info(&args),
        Some("trace") => commands::trace(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
