//! Property tests for the foundation types: dominance must be a strict
//! partial order, the joint comparison must agree with the directional
//! checks, and the bitset must behave like a set of integers.

use proptest::prelude::*;

use skymr_common::dominance::{compare, dominates, DomOrdering};
use skymr_common::{BitGrid, Tuple};

fn arb_tuple(dim: usize) -> impl Strategy<Value = Tuple> {
    proptest::collection::vec(0.0f64..1.0, dim).prop_map(|v| Tuple::new(0, v))
}

proptest! {
    #[test]
    fn dominance_is_irreflexive(t in arb_tuple(4)) {
        prop_assert!(!dominates(&t, &t));
    }

    #[test]
    fn dominance_is_antisymmetric(a in arb_tuple(4), b in arb_tuple(4)) {
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    #[test]
    fn dominance_is_transitive(a in arb_tuple(3), b in arb_tuple(3), c in arb_tuple(3)) {
        if dominates(&a, &b) && dominates(&b, &c) {
            prop_assert!(dominates(&a, &c));
        }
    }

    #[test]
    fn compare_agrees_with_dominates(a in arb_tuple(5), b in arb_tuple(5)) {
        let expected = match (dominates(&a, &b), dominates(&b, &a)) {
            (true, false) => DomOrdering::Dominates,
            (false, true) => DomOrdering::DominatedBy,
            (false, false) => DomOrdering::Incomparable,
            (true, true) => unreachable!("antisymmetry violated"),
        };
        prop_assert_eq!(compare(&a, &b), expected);
    }

    #[test]
    fn componentwise_shift_dominates(t in arb_tuple(4), shift in 1e-6f64..0.1) {
        let better = Tuple::new(
            1,
            t.values.iter().map(|v| (v - shift).max(0.0)).collect::<Vec<_>>(),
        );
        if better.values.iter().zip(t.values.iter()).any(|(b, o)| b < o) {
            prop_assert!(dominates(&better, &t));
        }
    }

    #[test]
    fn bitgrid_behaves_like_a_set(
        len in 1usize..500,
        ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..100),
    ) {
        let mut bits = BitGrid::zeros(len);
        let mut reference = std::collections::BTreeSet::new();
        for (idx, set) in ops {
            let idx = idx % len;
            if set {
                bits.set(idx);
                reference.insert(idx);
            } else {
                bits.clear(idx);
                reference.remove(&idx);
            }
        }
        prop_assert_eq!(bits.count_ones(), reference.len());
        prop_assert_eq!(bits.iter_ones().collect::<Vec<_>>(), reference.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(bits.highest_one(), reference.iter().next_back().copied());
        prop_assert_eq!(bits.is_zero(), reference.is_empty());
    }

    #[test]
    fn bitgrid_set_get_roundtrip(
        len in 1usize..400,
        indices in proptest::collection::vec(0usize..400, 0..80),
    ) {
        // set(i) makes get(i) true without disturbing any other bit, and
        // clear(i) undoes exactly that.
        let mut bits = BitGrid::zeros(len);
        for i in indices {
            let i = i % len;
            let before: Vec<bool> = (0..len).map(|j| bits.get(j)).collect();
            bits.set(i);
            prop_assert!(bits.get(i));
            for j in (0..len).filter(|&j| j != i) {
                prop_assert_eq!(bits.get(j), before[j], "set({}) disturbed bit {}", i, j);
            }
            bits.clear(i);
            prop_assert!(!bits.get(i));
            for j in (0..len).filter(|&j| j != i) {
                prop_assert_eq!(bits.get(j), before[j], "clear({}) disturbed bit {}", i, j);
            }
            if before[i] {
                bits.set(i);
            }
        }
    }

    #[test]
    fn bitgrid_or_is_union(
        len in 1usize..300,
        a in proptest::collection::vec(0usize..300, 0..50),
        b in proptest::collection::vec(0usize..300, 0..50),
    ) {
        let mut ga = BitGrid::zeros(len);
        let mut gb = BitGrid::zeros(len);
        let mut union = std::collections::BTreeSet::new();
        for i in a {
            ga.set(i % len);
            union.insert(i % len);
        }
        for i in b {
            gb.set(i % len);
            union.insert(i % len);
        }
        ga.or_assign(&gb);
        prop_assert_eq!(ga.iter_ones().collect::<Vec<_>>(), union.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bitgrid_and_is_intersection(
        len in 1usize..300,
        a in proptest::collection::vec(0usize..300, 0..50),
        b in proptest::collection::vec(0usize..300, 0..50),
    ) {
        let mut ga = BitGrid::zeros(len);
        let mut gb = BitGrid::zeros(len);
        let sa: std::collections::BTreeSet<usize> = a.into_iter().map(|i| i % len).collect();
        let sb: std::collections::BTreeSet<usize> = b.into_iter().map(|i| i % len).collect();
        for &i in &sa {
            ga.set(i);
        }
        for &i in &sb {
            gb.set(i);
        }
        prop_assert_eq!(ga.intersects(&gb), sa.intersection(&sb).next().is_some());
        ga.and_assign(&gb);
        prop_assert_eq!(
            ga.iter_ones().collect::<Vec<_>>(),
            sa.intersection(&sb).copied().collect::<Vec<_>>()
        );
    }
}
