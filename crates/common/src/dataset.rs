//! Datasets: a homogeneous collection of tuples plus split helpers.

use crate::error::{Error, Result};
use crate::tuple::Tuple;

/// A set `R` of `d`-dimensional tuples.
///
/// The MapReduce drivers split a dataset into `m` disjoint subsets
/// `R_1, …, R_m` — one per mapper — exactly as the paper's Figure 3 and
/// Figure 4 describe. Splitting is round-robin by position so that every
/// split sees a representative sample of the input (Hadoop's block splits of
/// a randomly ordered file have the same property).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    tuples: Vec<Tuple>,
}

impl Dataset {
    /// Creates a dataset after validating that every tuple has dimensionality
    /// `dim` and values within `[0,1)`.
    pub fn new(dim: usize, tuples: Vec<Tuple>) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidDimension(dim));
        }
        for t in &tuples {
            if t.dim() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    got: t.dim(),
                    tuple_id: t.id,
                });
            }
            if t.values
                .iter()
                .any(|v| !(0.0..1.0).contains(v) || v.is_nan())
            {
                return Err(Error::ValueOutOfRange { tuple_id: t.id });
            }
        }
        Ok(Self { dim, tuples })
    }

    /// Creates a dataset without validation. Intended for generators that
    /// guarantee the invariants by construction.
    pub fn new_unchecked(dim: usize, tuples: Vec<Tuple>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.dim() == dim));
        Self { dim, tuples }
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Cardinality `c = |R|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the dataset holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Borrows the tuples.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the dataset, returning its tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Splits the dataset into `m` disjoint subsets by round-robin
    /// assignment. Subsets differ in size by at most one tuple.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn split(&self, m: usize) -> Vec<Vec<Tuple>> {
        assert!(m > 0, "cannot split into zero subsets");
        let (base, extra) = (self.tuples.len() / m, self.tuples.len() % m); // xtask: allow(panic-reachability) — m > 0 asserted above
        let mut splits: Vec<Vec<Tuple>> = (0..m)
            .map(|i| Vec::with_capacity(base + usize::from(i < extra)))
            .collect();
        for (i, t) in self.tuples.iter().enumerate() {
            splits[i % m].push(t.clone()); // xtask: allow(panic-reachability) — i % m < m == splits.len()
        }
        splits
    }

    /// Returns the ids of all tuples, sorted — the canonical form used to
    /// compare skyline results across algorithms.
    pub fn sorted_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.tuples.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        ids
    }

    /// Projects the dataset onto a subset of dimensions (*subspace*
    /// skyline queries run any algorithm on the projection; tuple ids are
    /// preserved so answers join back to the full tuples).
    ///
    /// ```
    /// use skymr_common::{Dataset, Tuple};
    ///
    /// let ds = Dataset::new(3, vec![Tuple::new(7, vec![0.1, 0.5, 0.9])]).unwrap();
    /// let sub = ds.project(&[2, 0]).unwrap();
    /// assert_eq!(sub.dim(), 2);
    /// assert_eq!(&sub.tuples()[0].values[..], &[0.9, 0.1]);
    /// assert_eq!(sub.tuples()[0].id, 7);
    /// ```
    ///
    /// # Errors
    ///
    /// Fails when `dims` is empty, repeats a dimension, or references a
    /// dimension the dataset does not have.
    pub fn project(&self, dims: &[usize]) -> Result<Self> {
        if dims.is_empty() {
            return Err(Error::InvalidDimension(0));
        }
        let mut seen = vec![false; self.dim];
        for &d in dims {
            if d >= self.dim {
                return Err(Error::InvalidConfig(format!(
                    "projection dimension {d} out of range 0..{}",
                    self.dim
                )));
            }
            if seen[d] {
                return Err(Error::InvalidConfig(format!(
                    "projection repeats dimension {d}"
                )));
            }
            seen[d] = true;
        }
        let tuples = self
            .tuples
            .iter()
            .map(|t| {
                Tuple::new(
                    t.id,
                    dims.iter().map(|&d| t.values[d]).collect::<Vec<f64>>(),
                )
            })
            .collect();
        Ok(Self {
            dim: dims.len(),
            tuples,
        })
    }
}

/// Sorts a skyline (or any tuple list) by id — canonical order for result
/// comparison across algorithms and runs.
pub fn canonicalize(mut tuples: Vec<Tuple>) -> Vec<Tuple> {
    tuples.sort_by_key(|t| t.id);
    tuples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: usize, d: usize) -> Vec<Tuple> {
        (0..n)
            .map(|i| Tuple::new(i as u64, vec![(i as f64 / n as f64).min(0.999); d]))
            .collect()
    }

    #[test]
    fn new_validates_dimensions() {
        let mut ts = tuples(3, 2);
        ts.push(Tuple::new(99, vec![0.1, 0.2, 0.3]));
        let err = Dataset::new(2, ts).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { tuple_id: 99, .. }));
    }

    #[test]
    fn new_rejects_out_of_range_values() {
        let ts = vec![Tuple::new(0, vec![1.0, 0.5])];
        assert!(matches!(
            Dataset::new(2, ts).unwrap_err(),
            Error::ValueOutOfRange { tuple_id: 0 }
        ));
        let ts = vec![Tuple::new(1, vec![-0.1, 0.5])];
        assert!(Dataset::new(2, ts).is_err());
        let ts = vec![Tuple::new(2, vec![f64::NAN, 0.5])];
        assert!(Dataset::new(2, ts).is_err());
    }

    #[test]
    fn new_rejects_zero_dimension() {
        assert!(matches!(
            Dataset::new(0, vec![]).unwrap_err(),
            Error::InvalidDimension(0)
        ));
    }

    #[test]
    fn split_is_disjoint_and_complete() {
        let ds = Dataset::new(3, tuples(10, 3)).unwrap();
        let splits = ds.split(3);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(splits[0].len(), 4);
        assert_eq!(splits[1].len(), 3);
        let mut all: Vec<u64> = splits.iter().flatten().map(|t| t.id).collect();
        all.sort_unstable();
        assert_eq!(all, ds.sorted_ids());
    }

    #[test]
    fn split_handles_more_splits_than_tuples() {
        let ds = Dataset::new(2, tuples(2, 2)).unwrap();
        let splits = ds.split(5);
        assert_eq!(splits.len(), 5);
        assert_eq!(splits.iter().filter(|s| s.is_empty()).count(), 3);
    }

    #[test]
    fn project_selects_and_reorders_dimensions() {
        let ds = Dataset::new(3, tuples(5, 3)).unwrap();
        let sub = ds.project(&[1]).unwrap();
        assert_eq!(sub.dim(), 1);
        assert_eq!(sub.len(), 5);
        assert_eq!(sub.sorted_ids(), ds.sorted_ids());
        let swapped = ds.project(&[2, 1, 0]).unwrap();
        assert_eq!(swapped.dim(), 3);
    }

    #[test]
    fn project_validates_dimensions() {
        let ds = Dataset::new(2, tuples(3, 2)).unwrap();
        assert!(ds.project(&[]).is_err());
        assert!(ds.project(&[2]).is_err());
        assert!(ds.project(&[0, 0]).is_err());
    }

    #[test]
    fn canonicalize_sorts_by_id() {
        let out = canonicalize(vec![Tuple::new(5, vec![0.1]), Tuple::new(2, vec![0.2])]);
        assert_eq!(out.iter().map(|t| t.id).collect::<Vec<_>>(), vec![2, 5]);
    }
}
