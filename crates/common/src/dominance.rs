//! Tuple dominance (paper Definition 1).
//!
//! Tuple `ri` dominates `rj` (`ri ≺ rj`) iff `ri` is not worse than `rj` on
//! every dimension and strictly better on at least one. Smaller is better.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::tuple::Tuple;

/// Outcome of comparing two tuples for dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomOrdering {
    /// The left tuple dominates the right one (`a ≺ b`).
    Dominates,
    /// The left tuple is dominated by the right one (`b ≺ a`).
    DominatedBy,
    /// Neither dominates the other (including equal value vectors).
    Incomparable,
}

/// Returns `true` iff `a ≺ b` (Definition 1): `a` is ≤ `b` on all dimensions
/// and < on at least one.
///
/// ```
/// use skymr_common::{dominance::dominates, Tuple};
///
/// let cheap_near = Tuple::new(0, vec![0.2, 0.1]);
/// let pricey_far = Tuple::new(1, vec![0.8, 0.9]);
/// let pricey_near = Tuple::new(2, vec![0.8, 0.1]);
/// assert!(dominates(&cheap_near, &pricey_far));
/// assert!(dominates(&cheap_near, &pricey_near)); // ties on one dimension still dominate
/// assert!(!dominates(&pricey_near, &cheap_near));
/// ```
///
/// # Panics
///
/// Debug-asserts that the tuples share the same dimensionality.
#[inline]
pub fn dominates(a: &Tuple, b: &Tuple) -> bool {
    debug_assert_eq!(a.dim(), b.dim(), "dominance requires equal dimensionality");
    let mut strictly_better = false;
    for (&av, &bv) in a.values.iter().zip(b.values.iter()) {
        if av > bv {
            return false;
        }
        if av < bv {
            strictly_better = true;
        }
    }
    strictly_better
}

/// Performs a single pass that classifies the pair in both directions.
///
/// One joint pass is what the BNL window check needs (paper Algorithm 4
/// tests both `t' ≺ t` and `t ≺ t'`); it costs roughly half of two separate
/// [`dominates`] calls.
#[inline]
pub fn compare(a: &Tuple, b: &Tuple) -> DomOrdering {
    debug_assert_eq!(a.dim(), b.dim(), "dominance requires equal dimensionality");
    let mut a_better = false;
    let mut b_better = false;
    for (&av, &bv) in a.values.iter().zip(b.values.iter()) {
        if av < bv {
            a_better = true;
        } else if bv < av {
            b_better = true;
        }
        if a_better && b_better {
            return DomOrdering::Incomparable;
        }
    }
    match (a_better, b_better) {
        (true, false) => DomOrdering::Dominates,
        (false, true) => DomOrdering::DominatedBy,
        _ => DomOrdering::Incomparable,
    }
}

/// Like [`dominates`] but bumps `counter` by one — used by the cost-model
/// validation (paper Section 7.5 / Figure 11) to count tuple-dominance
/// checks executed by mappers and reducers.
#[inline]
pub fn dominates_counted(a: &Tuple, b: &Tuple, counter: &AtomicU64) -> bool {
    counter.fetch_add(1, Ordering::Relaxed);
    dominates(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[f64]) -> Tuple {
        Tuple::new(0, vals.to_vec())
    }

    #[test]
    fn strictly_smaller_dominates() {
        assert!(dominates(&t(&[0.1, 0.1]), &t(&[0.2, 0.2])));
    }

    #[test]
    fn equal_on_some_dims_still_dominates() {
        assert!(dominates(&t(&[0.1, 0.2]), &t(&[0.1, 0.3])));
    }

    #[test]
    fn equal_tuples_do_not_dominate() {
        assert!(!dominates(&t(&[0.1, 0.2]), &t(&[0.1, 0.2])));
    }

    #[test]
    fn incomparable_tuples_do_not_dominate() {
        assert!(!dominates(&t(&[0.1, 0.9]), &t(&[0.9, 0.1])));
        assert!(!dominates(&t(&[0.9, 0.1]), &t(&[0.1, 0.9])));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = t(&[0.1, 0.1]);
        let b = t(&[0.2, 0.2]);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn compare_matches_directional_checks() {
        let a = t(&[0.1, 0.5]);
        let b = t(&[0.2, 0.6]);
        assert_eq!(compare(&a, &b), DomOrdering::Dominates);
        assert_eq!(compare(&b, &a), DomOrdering::DominatedBy);
        let c = t(&[0.9, 0.1]);
        assert_eq!(compare(&a, &c), DomOrdering::Incomparable);
        assert_eq!(compare(&a, &a), DomOrdering::Incomparable);
    }

    #[test]
    fn counted_variant_counts() {
        let counter = AtomicU64::new(0);
        let a = t(&[0.1]);
        let b = t(&[0.2]);
        assert!(dominates_counted(&a, &b, &counter));
        assert!(!dominates_counted(&b, &a, &counter));
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn single_dimension_dominance() {
        assert!(dominates(&t(&[0.0]), &t(&[0.5])));
        assert!(!dominates(&t(&[0.5]), &t(&[0.0])));
    }
}
