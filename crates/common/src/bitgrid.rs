//! A compact bitset sized for grid partitionings.
//!
//! The paper represents the `n^d` grid partitions as a bitstring `BS_R`
//! where bit `i` says whether partition `p_i` is non-empty (Equation 1) and,
//! after pruning, whether it survives partition dominance (Equation 2).
//! [`BitGrid`] is that bitstring: a plain `u64`-backed bitset with the
//! operations the algorithms need — set/clear/test, bitwise OR (the reducer
//! of the bitstring-generation job merges local bitstrings with `∨`),
//! population count, and forward/backward iteration over set bits (the
//! independent-group generation scans for the *largest* set index).

const WORD_BITS: usize = 64;

/// A fixed-length bitset backed by `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub struct BitGrid {
    len: usize,
    words: Vec<u64>,
}

impl BitGrid {
    /// Creates a bitset of `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; len.div_ceil(WORD_BITS)],
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff the bitset has zero length.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to 1.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS); // xtask: allow(panic-reachability) — i < len asserted above, so i/WORD_BITS < words.len()
    }

    /// Clears bit `i` to 0.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS)); // xtask: allow(panic-reachability) — i < len asserted above, so i/WORD_BITS < words.len()
    }

    /// Returns bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0 // xtask: allow(panic-reachability) — i < len asserted above, so i/WORD_BITS < words.len()
    }

    /// In-place bitwise OR with another bitset of the same length.
    ///
    /// This is the merge step of the bitstring-generation reducer
    /// (`BS_R = BS_R1 ∨ BS_R2 ∨ … ∨ BS_Rm`, paper Algorithm 2 line 3).
    pub fn or_assign(&mut self, other: &BitGrid) {
        assert_eq!(self.len, other.len, "BitGrid length mismatch in OR");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// In-place bitwise AND with another bitset of the same length (used
    /// by the bitmap skyline algorithm's slice intersection).
    pub fn and_assign(&mut self, other: &BitGrid) {
        assert_eq!(self.len, other.len, "BitGrid length mismatch in AND");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    /// `true` iff the two bitsets share at least one set bit.
    pub fn intersects(&self, other: &BitGrid) -> bool {
        assert_eq!(self.len, other.len, "BitGrid length mismatch in intersects");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of set bits (the paper's `ρ`, the count of non-empty
    /// partitions, used by the PPD-selection heuristic in Section 3.3).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` iff no bit is set (the `while BS_R ≠ 0` loop guard of
    /// Algorithm 7).
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the indexes of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * WORD_BITS + bit)
            })
        })
    }

    /// Index of the highest set bit, if any — the "partition with the
    /// largest index" seed scan of Algorithm 7.
    pub fn highest_one(&self) -> Option<usize> {
        for (wi, &word) in self.words.iter().enumerate().rev() {
            if word != 0 {
                return Some(wi * WORD_BITS + (WORD_BITS - 1 - word.leading_zeros() as usize));
            }
        }
        None
    }

    /// Byte size of the packed representation (used for shuffle-traffic
    /// accounting when bitstrings move between mappers and the reducer).
    pub fn packed_bytes(&self) -> u64 {
        (self.words.len() * 8) as u64
    }

    /// The backing words, least-significant bit first (for the wire
    /// codec in [`crate::bytes`]).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitset from its wire representation. `None` when the
    /// word count disagrees with the bit length or a padding bit beyond
    /// `len` is set (the encoder never produces either).
    pub(crate) fn from_words(len: usize, words: Vec<u64>) -> Option<Self> {
        if words.len() != len.div_ceil(WORD_BITS) {
            return None;
        }
        if let Some(&last) = words.last() {
            let used = len - (words.len() - 1) * WORD_BITS;
            if used < WORD_BITS && last >> used != 0 {
                return None;
            }
        }
        Some(Self { len, words })
    }
}

impl std::fmt::Debug for BitGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitGrid[{}]{{", self.len)?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let b = BitGrid::zeros(100);
        assert_eq!(b.len(), 100);
        assert!(b.is_zero());
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(99));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut b = BitGrid::zeros(130);
        for i in [0, 63, 64, 65, 129] {
            b.set(i);
            assert!(b.get(i), "bit {i} should be set");
        }
        assert_eq!(b.count_ones(), 5);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn or_assign_merges() {
        let mut a = BitGrid::zeros(70);
        let mut b = BitGrid::zeros(70);
        a.set(1);
        b.set(69);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(69));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn or_assign_rejects_length_mismatch() {
        let mut a = BitGrid::zeros(10);
        let b = BitGrid::zeros(11);
        a.or_assign(&b);
    }

    #[test]
    fn and_assign_intersects() {
        let mut a = BitGrid::zeros(70);
        let mut b = BitGrid::zeros(70);
        a.set(1);
        a.set(69);
        b.set(69);
        assert!(a.intersects(&b));
        a.and_assign(&b);
        assert!(!a.get(1) && a.get(69));
        b.clear(69);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn iter_ones_is_sorted_and_complete() {
        let mut b = BitGrid::zeros(200);
        let set = [3usize, 64, 65, 127, 128, 199];
        for &i in &set {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_ones().collect();
        assert_eq!(got, set);
    }

    #[test]
    fn highest_one_finds_max() {
        let mut b = BitGrid::zeros(300);
        assert_eq!(b.highest_one(), None);
        b.set(5);
        assert_eq!(b.highest_one(), Some(5));
        b.set(255);
        assert_eq!(b.highest_one(), Some(255));
        b.set(299);
        assert_eq!(b.highest_one(), Some(299));
        b.clear(299);
        assert_eq!(b.highest_one(), Some(255));
    }

    #[test]
    fn figure2_bitstring_example() {
        // Paper Figure 2: 3x3 grid, non-empty partitions {1,2,3,4,6} give
        // the column-major bitstring 011110100 (bit 0 is leftmost).
        let mut b = BitGrid::zeros(9);
        for i in [1, 2, 3, 4, 6] {
            b.set(i);
        }
        let rendered: String = (0..9).map(|i| if b.get(i) { '1' } else { '0' }).collect();
        assert_eq!(rendered, "011110100");
    }

    #[test]
    fn out_of_range_panics() {
        let b = BitGrid::zeros(8);
        assert!(std::panic::catch_unwind(|| b.get(8)).is_err());
    }

    #[test]
    fn packed_bytes_rounds_up_to_words() {
        assert_eq!(BitGrid::zeros(1).packed_bytes(), 8);
        assert_eq!(BitGrid::zeros(64).packed_bytes(), 8);
        assert_eq!(BitGrid::zeros(65).packed_bytes(), 16);
    }
}
