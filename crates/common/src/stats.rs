//! Named counters shared by tasks of a MapReduce job.
//!
//! Hadoop exposes job counters; the engine mirrors that so the cost-model
//! validation (paper Section 7.5) can record how many partition-wise and
//! tuple-wise dominance comparisons each mapper and reducer executed.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// A set of named monotonically increasing counters.
///
/// Counter handles are cheap `Arc<AtomicU64>` clones; taking a handle once
/// and bumping it in a hot loop avoids the map lookup per increment.
#[derive(Debug, Default, Clone)]
pub struct Counters {
    inner: Arc<Mutex<BTreeMap<String, Arc<AtomicU64>>>>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn handle(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.inner.lock();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let counter = Arc::new(AtomicU64::new(0));
        map.insert(name.to_owned(), Arc::clone(&counter));
        counter
    }

    /// Adds `delta` to the counter named `name`.
    pub fn add(&self, name: &str, delta: u64) {
        self.handle(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Records `value` into the counter named `name` if it exceeds the
    /// current value — a max-aggregation used for "busiest task" metrics
    /// (Figure 11 reports the mapper/reducer with the most comparisons).
    pub fn record_max(&self, name: &str, value: u64) {
        self.handle(name).fetch_max(value, Ordering::Relaxed);
    }

    /// Current value of the counter named `name` (0 if it was never touched).
    pub fn get(&self, name: &str) -> u64 {
        let map = self.inner.lock();
        map.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Snapshot of all counters, sorted by name.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        let map = self.inner.lock();
        map.iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let c = Counters::new();
        assert_eq!(c.get("anything"), 0);
    }

    #[test]
    fn add_and_get() {
        let c = Counters::new();
        c.add("x", 3);
        c.add("x", 4);
        c.add("y", 1);
        assert_eq!(c.get("x"), 7);
        assert_eq!(c.get("y"), 1);
    }

    #[test]
    fn handle_is_stable() {
        let c = Counters::new();
        let h1 = c.handle("h");
        let h2 = c.handle("h");
        h1.fetch_add(2, Ordering::Relaxed);
        assert_eq!(h2.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn record_max_keeps_largest() {
        let c = Counters::new();
        c.record_max("m", 5);
        c.record_max("m", 3);
        c.record_max("m", 9);
        assert_eq!(c.get("m"), 9);
    }

    #[test]
    fn snapshot_sorted_by_name() {
        let c = Counters::new();
        c.add("b", 2);
        c.add("a", 1);
        let snap = c.snapshot();
        let keys: Vec<&String> = snap.keys().collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn clones_share_state() {
        let c = Counters::new();
        let c2 = c.clone();
        c.add("shared", 1);
        c2.add("shared", 2);
        assert_eq!(c.get("shared"), 3);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Counters::new();
        let h = c.handle("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(c.get("hot"), 4000);
    }
}
