//! Byte-size accounting for simulated network traffic.
//!
//! The MapReduce engine charges shuffle and distributed-cache traffic to a
//! simulated cluster clock (the paper's testbed moved data over a
//! 100 Mbit/s LAN, and the communication overhead of MR-GPMRS is one of the
//! effects its evaluation studies). [`ByteSized`] reports how many bytes a
//! value would occupy in a compact on-the-wire encoding.

use crate::bitgrid::BitGrid;
use crate::tuple::Tuple;

/// Size of a value in a compact wire encoding, in bytes.
pub trait ByteSized {
    /// Encoded size in bytes.
    fn byte_size(&self) -> u64;
}

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl ByteSized for $t {
            #[inline]
            fn byte_size(&self) -> u64 { $n }
        })*
    };
}

fixed_size!(u8 => 1, u16 => 2, u32 => 4, u64 => 8, usize => 8, f32 => 4, f64 => 8, i32 => 4, i64 => 8, bool => 1, () => 0);

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_size(&self) -> u64 {
        // 4-byte length prefix, like a Hadoop Writable collection.
        4 + self.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

impl<T: ByteSized> ByteSized for Box<[T]> {
    fn byte_size(&self) -> u64 {
        4 + self.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSized, B: ByteSized, C: ByteSized> ByteSized for (A, B, C) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn byte_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, ByteSized::byte_size)
    }
}

impl ByteSized for Tuple {
    fn byte_size(&self) -> u64 {
        // id + length prefix + one f64 per dimension.
        8 + 4 + 8 * self.values.len() as u64
    }
}

impl ByteSized for BitGrid {
    fn byte_size(&self) -> u64 {
        4 + self.packed_bytes()
    }
}

impl ByteSized for String {
    fn byte_size(&self) -> u64 {
        4 + self.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_fixed_sizes() {
        assert_eq!(1u8.byte_size(), 1);
        assert_eq!(1u32.byte_size(), 4);
        assert_eq!(1.0f64.byte_size(), 8);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn vec_adds_length_prefix() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.byte_size(), 4 + 24);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.byte_size(), 4);
    }

    #[test]
    fn tuple_size_scales_with_dimensionality() {
        let t2 = Tuple::new(0, vec![0.0, 0.0]);
        let t5 = Tuple::new(0, vec![0.0; 5]);
        assert_eq!(t2.byte_size(), 8 + 4 + 16);
        assert_eq!(t5.byte_size(), 8 + 4 + 40);
    }

    #[test]
    fn nested_collections_compose() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        assert_eq!(v.byte_size(), 4 + (4 + 2) + (4 + 1));
    }

    #[test]
    fn option_charges_tag_byte() {
        assert_eq!(None::<u64>.byte_size(), 1);
        assert_eq!(Some(1u64).byte_size(), 9);
    }

    #[test]
    fn bitgrid_charges_packed_words() {
        let b = BitGrid::zeros(128);
        assert_eq!(b.byte_size(), 4 + 16);
    }
}
