//! Byte-size accounting and the checksummed wire codec.
//!
//! The MapReduce engine charges shuffle and distributed-cache traffic to a
//! simulated cluster clock (the paper's testbed moved data over a
//! 100 Mbit/s LAN, and the communication overhead of MR-GPMRS is one of the
//! effects its evaluation studies). [`ByteSized`] reports how many bytes a
//! value would occupy in a compact on-the-wire encoding.
//!
//! [`Wire`] is that encoding made real: a deterministic little-endian
//! byte codec for every type that crosses a shuffle boundary. Encoded
//! pairs travel inside CRC32C-checksummed, length-prefixed *frames*
//! ([`frame_encode`] / [`frame_decode_exact`]), so a reducer fetching a
//! map-output partition verifies its integrity before consuming a single
//! record — the data-plane half of the engine's fault story.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! +----------------+------------------+----------------------------+
//! | len: u32       | payload: len B   | crc: u32                   |
//! +----------------+------------------+----------------------------+
//!                                       CRC32C over len ‖ payload
//! ```
//!
//! The checksum covers the length prefix as well as the payload, so any
//! single-bit flip anywhere in a frame — header, body, or trailer — is
//! caught by [`frame_decode_exact`] (bit flips that shrink the length
//! leave trailing bytes, which full-consumption decoding rejects).

use crate::bitgrid::BitGrid;
use crate::tuple::Tuple;

/// Size of a value in a compact wire encoding, in bytes.
pub trait ByteSized {
    /// Encoded size in bytes.
    fn byte_size(&self) -> u64;
}

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl ByteSized for $t {
            #[inline]
            fn byte_size(&self) -> u64 { $n }
        })*
    };
}

fixed_size!(u8 => 1, u16 => 2, u32 => 4, u64 => 8, usize => 8, f32 => 4, f64 => 8, i32 => 4, i64 => 8, bool => 1, () => 0);

impl<T: ByteSized> ByteSized for Vec<T> {
    fn byte_size(&self) -> u64 {
        // 4-byte length prefix, like a Hadoop Writable collection.
        4 + self.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

impl<T: ByteSized> ByteSized for Box<[T]> {
    fn byte_size(&self) -> u64 {
        4 + self.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

impl<A: ByteSized, B: ByteSized> ByteSized for (A, B) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: ByteSized, B: ByteSized, C: ByteSized> ByteSized for (A, B, C) {
    fn byte_size(&self) -> u64 {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

impl<T: ByteSized> ByteSized for Option<T> {
    fn byte_size(&self) -> u64 {
        1 + self.as_ref().map_or(0, ByteSized::byte_size)
    }
}

impl ByteSized for Tuple {
    fn byte_size(&self) -> u64 {
        // id + length prefix + one f64 per dimension.
        8 + 4 + 8 * self.values.len() as u64
    }
}

impl ByteSized for BitGrid {
    fn byte_size(&self) -> u64 {
        4 + self.packed_bytes()
    }
}

impl ByteSized for String {
    fn byte_size(&self) -> u64 {
        4 + self.len() as u64
    }
}

// ---------------------------------------------------------------------
// CRC32C (Castagnoli).
// ---------------------------------------------------------------------

/// The reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed) — the
/// CRC32C variant Hadoop uses for its checksummed file and shuffle
/// streams, hand-rolled here so the workspace stays dependency-free.
const CRC32C_POLY: u32 = 0x82F6_3B78;

/// Byte-at-a-time lookup table for [`crc32c_update`], built at compile
/// time.
const fn crc32c_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ CRC32C_POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// Folds `data` into a running CRC32C state.
///
/// `crc32c_update(crc32c_update(0, a), b)` equals `crc32c` of `a ‖ b`,
/// so framed streams can be checksummed incrementally without
/// concatenating buffers.
#[inline]
pub fn crc32c_update(crc: u32, data: &[u8]) -> u32 {
    let mut c = !crc;
    for &byte in data {
        c = CRC32C_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The CRC32C checksum of `data`.
#[inline]
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_update(0, data)
}

// ---------------------------------------------------------------------
// Checksummed frames.
// ---------------------------------------------------------------------

/// Bytes a frame adds around its payload (u32 length + u32 CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame its header announces.
    Truncated {
        /// Bytes the header claims the frame needs.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The stored checksum disagrees with the recomputed one — the frame
    /// was corrupted in flight or at rest.
    Corrupt {
        /// CRC32C recomputed over the received header and payload.
        expected: u32,
        /// CRC32C stored in the frame trailer.
        got: u32,
    },
    /// Bytes remain after the frame a full-consumption decode expected
    /// to be alone in the buffer.
    TrailingBytes {
        /// Number of unconsumed bytes.
        got: usize,
    },
    /// The payload verified but its contents did not parse as the
    /// expected record stream.
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated { needed, got } => {
                write!(f, "frame truncated: header needs {needed} bytes, got {got}")
            }
            FrameError::Corrupt { expected, got } => write!(
                f,
                "frame checksum mismatch: computed {expected:#010x}, stored {got:#010x}"
            ),
            FrameError::TrailingBytes { got } => {
                write!(f, "{got} trailing byte(s) after the frame")
            }
            FrameError::Malformed => write!(f, "frame payload is not a valid record stream"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Appends one checksummed frame wrapping `payload` onto `out`.
pub fn frame_encode(payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(payload.len() + FRAME_OVERHEAD);
    let len = u32::try_from(payload.len()).expect("frame payload exceeds u32::MAX bytes");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32c_update(crc32c(&len.to_le_bytes()), payload);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Decodes and verifies one frame from the front of `buf`, returning the
/// payload and the unconsumed remainder.
pub fn frame_decode(buf: &[u8]) -> Result<(&[u8], &[u8]), FrameError> {
    if buf.len() < 4 {
        return Err(FrameError::Truncated {
            needed: FRAME_OVERHEAD,
            got: buf.len(),
        });
    }
    let header: [u8; 4] = buf[..4].try_into().expect("4-byte slice");
    let len = u32::from_le_bytes(header) as usize;
    let needed = len + FRAME_OVERHEAD;
    if buf.len() < needed {
        return Err(FrameError::Truncated {
            needed,
            got: buf.len(),
        });
    }
    let payload = &buf[4..4 + len]; // xtask: allow(panic-reachability) — in bounds: `buf.len() >= needed = len + FRAME_OVERHEAD` was checked above
    let stored = u32::from_le_bytes(buf[4 + len..needed].try_into().expect("4-byte slice")); // xtask: allow(panic-reachability) — same bounds invariant; the trailer is exactly the 4 bytes at `4 + len..needed`
    let expected = crc32c_update(crc32c(&header), payload);
    if expected != stored {
        return Err(FrameError::Corrupt {
            expected,
            got: stored,
        });
    }
    Ok((payload, &buf[needed..]))
}

/// Decodes exactly one frame filling the whole buffer.
///
/// This is the shuffle-fetch entry point: a partition travels as one
/// frame, so trailing bytes are as much a corruption signal as a bad
/// checksum (a bit flip that shrinks the length prefix leaves them).
pub fn frame_decode_exact(buf: &[u8]) -> Result<&[u8], FrameError> {
    let (payload, rest) = frame_decode(buf)?;
    if !rest.is_empty() {
        return Err(FrameError::TrailingBytes { got: rest.len() });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Wire: the deterministic byte codec behind the frames.
// ---------------------------------------------------------------------

/// Cursor over an encoded byte stream for [`Wire::wire_decode`].
#[derive(Debug)]
pub struct WireCursor<'a> {
    buf: &'a [u8],
}

impl<'a> WireCursor<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    /// `true` iff every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn array<const N: usize>(&mut self) -> Option<[u8; N]> {
        self.take(N)?.try_into().ok()
    }
}

/// A value with a deterministic little-endian wire encoding.
///
/// Every key and value type crossing a shuffle boundary implements
/// `Wire`; the engine encodes map-output partitions through it into
/// checksummed frames and decodes them on the reduce side, so the codec
/// is load-bearing — a round-trip bug changes job output, not just a
/// byte count. Encodings mirror the [`ByteSized`] accounting (length
/// prefixes are u32, integers are fixed-width little-endian).
pub trait Wire: Sized {
    /// Appends this value's encoding onto `out`.
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the cursor; `None` on any structural
    /// mismatch (truncation, invalid length, bad tag).
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self>;
}

macro_rules! wire_int {
    ($($t:ty),* $(,)?) => {
        $(impl Wire for $t {
            #[inline]
            fn wire_encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
                r.array().map(<$t>::from_le_bytes)
            }
        })*
    };
}

wire_int!(u8, u16, u32, u64, i32, i64, f32, f64);

impl Wire for usize {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (*self as u64).wire_encode(out);
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        usize::try_from(u64::wire_decode(r)?).ok()
    }
}

impl Wire for bool {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        match u8::wire_decode(r)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for () {
    fn wire_encode(&self, _out: &mut Vec<u8>) {}
    fn wire_decode(_r: &mut WireCursor<'_>) -> Option<Self> {
        Some(())
    }
}

impl Wire for String {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).wire_encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let len = u32::wire_decode(r)? as usize;
        String::from_utf8(r.take(len)?.to_vec()).ok()
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).wire_encode(out);
        for item in self {
            item.wire_encode(out);
        }
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let len = u32::wire_decode(r)? as usize;
        let mut items = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            items.push(T::wire_decode(r)?);
        }
        Some(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::wire_decode(r)?, B::wire_decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        Some((A::wire_decode(r)?, B::wire_decode(r)?, C::wire_decode(r)?))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        match u8::wire_decode(r)? {
            0 => Some(None),
            1 => Some(Some(T::wire_decode(r)?)),
            _ => None,
        }
    }
}

impl Wire for Tuple {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.id.wire_encode(out);
        (self.values.len() as u32).wire_encode(out);
        for v in &*self.values {
            v.wire_encode(out);
        }
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let id = u64::wire_decode(r)?;
        let dim = u32::wire_decode(r)? as usize;
        let mut values = Vec::with_capacity(dim.min(1 << 10));
        for _ in 0..dim {
            values.push(f64::wire_decode(r)?);
        }
        Some(Tuple::new(id, values))
    }
}

impl Wire for BitGrid {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).wire_encode(out);
        for word in self.words() {
            word.wire_encode(out);
        }
    }
    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let len = u32::wire_decode(r)? as usize;
        let word_count = len.div_ceil(64);
        let mut words = Vec::with_capacity(word_count.min(1 << 16));
        for _ in 0..word_count {
            words.push(u64::wire_decode(r)?);
        }
        BitGrid::from_words(len, words)
    }
}

// ---------------------------------------------------------------------
// Framed pair streams: the shuffle-partition unit.
// ---------------------------------------------------------------------

/// Encodes a shuffle partition — a batch of key/value pairs — as one
/// checksummed frame: `[count: u32][pair encodings…]` wrapped by
/// [`frame_encode`]. Empty partitions encode to a valid (count 0) frame.
pub fn encode_pairs<K: Wire, V: Wire>(pairs: &[(K, V)]) -> Vec<u8> {
    let mut payload = Vec::new();
    (pairs.len() as u32).wire_encode(&mut payload);
    for (k, v) in pairs {
        k.wire_encode(&mut payload);
        v.wire_encode(&mut payload);
    }
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    frame_encode(&payload, &mut out);
    out
}

/// Verifies and decodes one partition frame produced by [`encode_pairs`].
pub fn decode_pairs<K: Wire, V: Wire>(frame: &[u8]) -> Result<Vec<(K, V)>, FrameError> {
    let payload = frame_decode_exact(frame)?;
    let mut r = WireCursor::new(payload);
    let count = u32::wire_decode(&mut r).ok_or(FrameError::Malformed)? as usize;
    let mut pairs = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let k = K::wire_decode(&mut r).ok_or(FrameError::Malformed)?;
        let v = V::wire_decode(&mut r).ok_or(FrameError::Malformed)?;
        pairs.push((k, v));
    }
    if !r.is_empty() {
        return Err(FrameError::Malformed);
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_have_fixed_sizes() {
        assert_eq!(1u8.byte_size(), 1);
        assert_eq!(1u32.byte_size(), 4);
        assert_eq!(1.0f64.byte_size(), 8);
        assert_eq!(().byte_size(), 0);
    }

    #[test]
    fn vec_adds_length_prefix() {
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(v.byte_size(), 4 + 24);
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.byte_size(), 4);
    }

    #[test]
    fn tuple_size_scales_with_dimensionality() {
        let t2 = Tuple::new(0, vec![0.0, 0.0]);
        let t5 = Tuple::new(0, vec![0.0; 5]);
        assert_eq!(t2.byte_size(), 8 + 4 + 16);
        assert_eq!(t5.byte_size(), 8 + 4 + 40);
    }

    #[test]
    fn nested_collections_compose() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![3]];
        assert_eq!(v.byte_size(), 4 + (4 + 2) + (4 + 1));
    }

    #[test]
    fn option_charges_tag_byte() {
        assert_eq!(None::<u64>.byte_size(), 1);
        assert_eq!(Some(1u64).byte_size(), 9);
    }

    #[test]
    fn bitgrid_charges_packed_words() {
        let b = BitGrid::zeros(128);
        assert_eq!(b.byte_size(), 4 + 16);
    }

    // -----------------------------------------------------------------
    // CRC32C.
    // -----------------------------------------------------------------

    #[test]
    fn crc32c_matches_published_check_values() {
        // RFC 3720 appendix B.4 test vectors for CRC32C.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        assert_eq!(crc32c(b""), 0);
    }

    #[test]
    fn crc32c_update_chains_like_concatenation() {
        let whole = crc32c(b"hello world");
        let chained = crc32c_update(crc32c(b"hello "), b"world");
        assert_eq!(whole, chained);
    }

    // -----------------------------------------------------------------
    // Frames.
    // -----------------------------------------------------------------

    #[test]
    fn frame_roundtrip_including_empty_payload() {
        for payload in [&b""[..], b"x", b"some longer payload bytes"] {
            let mut frame = Vec::new();
            frame_encode(payload, &mut frame);
            assert_eq!(frame.len(), payload.len() + FRAME_OVERHEAD);
            assert_eq!(frame_decode_exact(&frame).unwrap(), payload);
        }
    }

    #[test]
    fn frame_decode_streams_multiple_frames() {
        let mut buf = Vec::new();
        frame_encode(b"first", &mut buf);
        frame_encode(b"second", &mut buf);
        let (a, rest) = frame_decode(&buf).unwrap();
        assert_eq!(a, b"first");
        let (b, rest) = frame_decode(rest).unwrap();
        assert_eq!(b, b"second");
        assert!(rest.is_empty());
        assert!(matches!(
            frame_decode_exact(&buf),
            Err(FrameError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn frame_rejects_truncation_and_corruption() {
        let mut frame = Vec::new();
        frame_encode(b"payload", &mut frame);
        assert!(matches!(
            frame_decode(&frame[..frame.len() - 1]),
            Err(FrameError::Truncated { .. })
        ));
        assert!(matches!(
            frame_decode(&[1, 0]),
            Err(FrameError::Truncated { .. })
        ));
        let mut bad = frame.clone();
        bad[5] ^= 0x10;
        assert!(matches!(
            frame_decode(&bad),
            Err(FrameError::Corrupt { .. })
        ));
    }

    #[test]
    fn pair_stream_roundtrip_and_empty_partition() {
        let pairs: Vec<(u32, String)> = vec![(7, "alpha".into()), (9, String::new())];
        let frame = encode_pairs(&pairs);
        assert_eq!(decode_pairs::<u32, String>(&frame).unwrap(), pairs);
        let empty: Vec<(u32, String)> = Vec::new();
        let frame = encode_pairs(&empty);
        assert_eq!(decode_pairs::<u32, String>(&frame).unwrap(), empty);
    }

    #[test]
    fn wire_roundtrips_every_builtin() {
        fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
            let mut bytes = Vec::new();
            v.wire_encode(&mut bytes);
            let mut r = WireCursor::new(&bytes);
            assert_eq!(T::wire_decode(&mut r), Some(v));
            assert!(r.is_empty(), "decoder left unconsumed bytes");
        }
        roundtrip(0xABu8);
        roundtrip(0xABCDu16);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(-5i64);
        roundtrip(1.5f32);
        roundtrip(0.123_456_789f64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(());
        roundtrip(String::from("héllo"));
        roundtrip(vec![1u32, 2, 3]);
        roundtrip((1u8, 2u16));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip(Some(7u64));
        roundtrip(None::<u64>);
        roundtrip(Tuple::new(42, vec![0.1, 0.2, 0.3]));
        let mut grid = BitGrid::zeros(130);
        grid.set(0);
        grid.set(64);
        grid.set(129);
        roundtrip(grid);
        roundtrip(vec![(3u32, vec![Tuple::new(1, vec![0.5])])]);
    }

    #[test]
    fn wire_decode_rejects_malformed_streams() {
        let mut r = WireCursor::new(&[1, 0, 0]);
        assert_eq!(u32::wire_decode(&mut r), None);
        let mut r = WireCursor::new(&[2u8]);
        assert_eq!(bool::wire_decode(&mut r), None, "bad bool tag");
        // A BitGrid with a set padding bit cannot come from the encoder.
        let mut bytes = Vec::new();
        1u32.wire_encode(&mut bytes);
        u64::MAX.wire_encode(&mut bytes);
        let mut r = WireCursor::new(&bytes);
        assert_eq!(BitGrid::wire_decode(&mut r), None);
    }

    mod codec_properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_tuple() -> impl Strategy<Value = Tuple> {
            (any::<u64>(), proptest::collection::vec(0.0f64..1.0, 0..6))
                .prop_map(|(id, values)| Tuple::new(id, values))
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn pair_frames_roundtrip(
                pairs in proptest::collection::vec((any::<u32>(), arb_tuple()), 0..24)
            ) {
                let frame = encode_pairs(&pairs);
                let decoded = decode_pairs::<u32, Tuple>(&frame).expect("clean frame decodes");
                prop_assert_eq!(decoded, pairs);
            }

            #[test]
            fn any_single_bit_flip_is_caught(
                pairs in proptest::collection::vec((any::<u32>(), any::<u64>()), 0..8),
                bit_seed in any::<u64>()
            ) {
                let frame = encode_pairs(&pairs);
                let bit = (bit_seed % (frame.len() as u64 * 8)) as usize;
                let mut corrupted = frame.clone();
                corrupted[bit / 8] ^= 1 << (bit % 8);
                prop_assert!(
                    decode_pairs::<u32, u64>(&corrupted).is_err(),
                    "bit {} flip went undetected", bit
                );
            }
        }
    }
}
