//! Workspace error type.

use std::fmt;

/// Result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by validation and configuration across the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// Dimensionality must be at least 1.
    InvalidDimension(usize),
    /// A tuple's dimensionality disagreed with its dataset.
    DimensionMismatch {
        /// The dataset's dimensionality.
        expected: usize,
        /// The offending tuple's dimensionality.
        got: usize,
        /// The offending tuple's id.
        tuple_id: u64,
    },
    /// A tuple value fell outside the `[0,1)` data space (or was NaN).
    ValueOutOfRange {
        /// The offending tuple's id.
        tuple_id: u64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig(String),
    /// A MapReduce job exhausted the retry budget of one of its tasks and
    /// aborted (fault-injection or a genuinely failing UDF). Carries the
    /// pipeline-level summary of the engine's structured `JobError`; the
    /// task kind is `"map"` or `"reduce"`.
    JobFailed {
        /// Name of the job that aborted.
        job: String,
        /// `"map"` or `"reduce"`.
        task: String,
        /// Index of the failed task within its phase.
        index: usize,
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Cause of the final failed attempt.
        message: String,
    },
    /// A pipeline runner hit its configured kill-point (chaos testing's
    /// deterministic stand-in for a driver crash between chained jobs).
    /// The checkpoint taken after `after_jobs` completed jobs survives and
    /// can seed a resumed run.
    PipelineKilled {
        /// How many jobs had completed (and checkpointed) before the kill.
        after_jobs: usize,
    },
    /// A multi-tenant executor refused to queue a job submission: the
    /// admission queue was at capacity, or the job's slot/memory
    /// reservation cannot be satisfied by the cluster it was submitted to.
    /// Rejection is deterministic — the same submission set against the
    /// same cluster produces the same rejections on every run.
    AdmissionRejected {
        /// Name of the rejected job.
        job: String,
        /// Tenant that submitted it.
        tenant: String,
        /// Why admission refused it (queue depth, reservation vs capacity).
        reason: String,
    },
    /// A checkpoint file failed its integrity check — a snapshot payload's
    /// CRC32C no longer matches what was recorded at write time (bit rot at
    /// rest), or the document itself is unreadable. Unlike a *stale*
    /// checkpoint (job-name mismatch, which silently falls back to
    /// execution), rot is surfaced: resuming from a damaged file aborts so
    /// the operator can discard it deliberately.
    CheckpointCorrupt {
        /// Name of the job whose snapshot failed verification, or
        /// `"<document>"` when the file as a whole is unreadable.
        job: String,
        /// What failed to verify.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidDimension(d) => write!(f, "invalid dimensionality {d}; must be >= 1"),
            Error::DimensionMismatch {
                expected,
                got,
                tuple_id,
            } => {
                write!(
                    f,
                    "tuple {tuple_id} has {got} dimensions, dataset expects {expected}"
                )
            }
            Error::ValueOutOfRange { tuple_id } => {
                write!(f, "tuple {tuple_id} has a value outside [0,1) (or NaN)")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::JobFailed {
                job,
                task,
                index,
                attempts,
                message,
            } => write!(
                f,
                "job `{job}` aborted: {task} task {index} failed {attempts} attempt(s); last: {message}"
            ),
            Error::PipelineKilled { after_jobs } => write!(
                f,
                "pipeline killed after {after_jobs} completed job(s); checkpoint available for resume"
            ),
            Error::AdmissionRejected {
                job,
                tenant,
                reason,
            } => write!(
                f,
                "job `{job}` (tenant `{tenant}`) rejected at admission: {reason}"
            ),
            Error::CheckpointCorrupt { job, detail } => write!(
                f,
                "checkpoint for job `{job}` failed verification: {detail}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(Error::InvalidDimension(0).to_string().contains(">= 1"));
        let e = Error::DimensionMismatch {
            expected: 3,
            got: 2,
            tuple_id: 7,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('3') && s.contains('2'));
        assert!(Error::ValueOutOfRange { tuple_id: 1 }
            .to_string()
            .contains("[0,1)"));
        assert!(Error::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
        let rejected = Error::AdmissionRejected {
            job: "gpsrs-42".into(),
            tenant: "analytics".into(),
            reason: "admission queue full (8 of 8)".into(),
        }
        .to_string();
        assert!(
            rejected.contains("gpsrs-42")
                && rejected.contains("analytics")
                && rejected.contains("queue full")
        );
        let killed = Error::PipelineKilled { after_jobs: 1 }.to_string();
        assert!(killed.contains('1') && killed.contains("resume"));
        let rotted = Error::CheckpointCorrupt {
            job: "bitstring".into(),
            detail: "payload CRC32C mismatch".into(),
        }
        .to_string();
        assert!(rotted.contains("bitstring") && rotted.contains("CRC32C"));
    }
}
