//! Foundation types for the `skyline-mr` workspace.
//!
//! This crate holds the vocabulary shared by every other crate in the
//! reproduction of *"Efficient Skyline Computation in MapReduce"*
//! (Mullesgaard, Pedersen, Lu, Zhou — EDBT 2014):
//!
//! * [`Tuple`] and [`Dataset`] — the multi-dimensional records a skyline
//!   query runs over (paper Section 1, Definition 1),
//! * [`dominance`] — the tuple-dominance kernel (`ri ≺ rj`),
//! * [`BitGrid`] — the compact bitstring the paper uses to describe the
//!   empty/non-empty state of grid partitions (paper Section 3.2),
//! * [`ByteSized`] — byte-size accounting used by the MapReduce engine to
//!   model shuffle and broadcast traffic.
//!
//! The convention throughout the workspace follows the paper: the data space
//! is `[0,1)^d` and **smaller values are better** on every dimension.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bitgrid;
pub mod bytes;
pub mod dataset;
pub mod dominance;
pub mod error;
pub mod stats;
pub mod tuple;

pub use bitgrid::BitGrid;
pub use bytes::{
    crc32c, crc32c_update, decode_pairs, encode_pairs, frame_decode, frame_decode_exact,
    frame_encode, ByteSized, FrameError, Wire, WireCursor,
};
pub use dataset::Dataset;
pub use dominance::{dominates, dominates_counted, DomOrdering};
pub use error::{Error, Result};
pub use stats::Counters;
pub use tuple::Tuple;
