//! The multi-dimensional tuple type skyline queries operate on.

use std::fmt;

/// A `d`-dimensional tuple (paper notation: `r`, `ri`, `rj`, `t`).
///
/// Every tuple carries a workspace-unique `id` so that results can be
/// compared across algorithms (skylines are sets; two algorithms agree when
/// they return the same id set), and so duplicate elimination in
/// MR-GPMRS (paper Section 5.4.2) can be verified exactly.
///
/// Values live in `[0,1)` and **smaller is better** on every dimension,
/// matching the paper's convention ("this paper assumes that a smaller value
/// is better", Section 1).
#[derive(Clone, PartialEq)]
pub struct Tuple {
    /// Stable identifier, assigned by the generator or loader.
    pub id: u64,
    /// Dimension values; length is the dimensionality `d`.
    pub values: Box<[f64]>,
}

impl Tuple {
    /// Creates a tuple from an id and its dimension values.
    pub fn new(id: u64, values: impl Into<Box<[f64]>>) -> Self {
        Self {
            id,
            values: values.into(),
        }
    }

    /// The dimensionality `d` of this tuple.
    #[inline]
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Sum of the dimension values — the monotone scoring function used by
    /// sort-based skyline algorithms (SFS presorting, Chomicki et al.).
    #[inline]
    pub fn score_sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The entropy score `Σ ln(1 + v_k)` — the alternative monotone scoring
    /// function proposed for SFS. Like [`Tuple::score_sum`], if `a` dominates
    /// `b` then `a.score_entropy() < b.score_entropy()`.
    #[inline]
    pub fn score_entropy(&self) -> f64 {
        self.values.iter().map(|v| (1.0 + v).ln()).sum()
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple#{}{:?}", self.id, &self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_assigns_id_and_values() {
        let t = Tuple::new(7, vec![0.25, 0.5]);
        assert_eq!(t.id, 7);
        assert_eq!(t.dim(), 2);
        assert_eq!(&t.values[..], &[0.25, 0.5]);
    }

    #[test]
    fn score_sum_adds_all_dimensions() {
        let t = Tuple::new(0, vec![0.1, 0.2, 0.3]);
        assert!((t.score_sum() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn score_entropy_is_monotone_under_dominance() {
        let better = Tuple::new(0, vec![0.1, 0.2]);
        let worse = Tuple::new(1, vec![0.3, 0.2]);
        assert!(better.score_entropy() < worse.score_entropy());
    }

    #[test]
    fn debug_output_contains_id() {
        let t = Tuple::new(42, vec![0.5]);
        assert!(format!("{t:?}").contains("42"));
    }
}
