//! Deterministic LPT placement of model task durations onto slots.
//!
//! This mirrors the engine's `makespan` accounting (longest-processing-
//! time-first list scheduling) but works in integer ticks and returns the
//! *placement* — which slot each task landed on and when it started — so
//! the trace can draw one lane per slot. Ties break on the lowest task
//! index and lowest slot index, making the layout a pure function of the
//! input durations.

use crate::span::Ticks;

/// Where one task landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Slot (lane) index in `0..slots`.
    pub slot: usize,
    /// Start tick of the task's span (includes the per-task overhead).
    pub start: Ticks,
    /// End tick (`start + overhead + duration`).
    pub end: Ticks,
}

/// Places `ticks[i] + overhead` onto `slots` lanes with LPT list
/// scheduling. Returns per-task placements (indexed like `ticks`) and the
/// makespan.
///
/// # Panics
///
/// Panics if `slots == 0` and there is at least one task to place.
pub fn place(ticks: &[Ticks], slots: usize, overhead: Ticks) -> (Vec<Placement>, Ticks) {
    if ticks.is_empty() {
        return (Vec::new(), 0);
    }
    assert!(slots > 0, "placement requires at least one slot");
    let mut order: Vec<usize> = (0..ticks.len()).collect();
    // Longest first; ties on the lower task index.
    order.sort_by_key(|&i| (std::cmp::Reverse(ticks[i]), i));
    let mut loads = vec![0u64; slots];
    let mut placements = vec![
        Placement {
            slot: 0,
            start: 0,
            end: 0
        };
        ticks.len()
    ];
    for i in order {
        let slot = loads
            .iter()
            .enumerate()
            .min_by_key(|&(s, &load)| (load, s))
            .map_or(0, |(s, _)| s);
        let start = loads[slot];
        let end = start + overhead + ticks[i];
        placements[i] = Placement { slot, start, end };
        loads[slot] = end;
    }
    let makespan = loads.into_iter().max().unwrap_or(0);
    (placements, makespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_phase_places_nothing() {
        let (p, makespan) = place(&[], 0, 5);
        assert!(p.is_empty());
        assert_eq!(makespan, 0);
    }

    #[test]
    fn single_slot_is_sequential_longest_first() {
        let (p, makespan) = place(&[10, 30, 20], 1, 0);
        assert_eq!(makespan, 60);
        // LPT order: task 1 (30), task 2 (20), task 0 (10).
        assert_eq!((p[1].start, p[1].end), (0, 30));
        assert_eq!((p[2].start, p[2].end), (30, 50));
        assert_eq!((p[0].start, p[0].end), (50, 60));
    }

    #[test]
    fn lpt_balances_two_slots() {
        let (p, makespan) = place(&[10, 20, 30], 2, 0);
        assert_eq!(makespan, 30);
        assert_eq!(p[2].slot, 0);
        assert_eq!(p[1].slot, 1);
        assert_eq!(p[0].slot, 1);
        assert_eq!(p[0].start, 20);
    }

    #[test]
    fn overhead_is_charged_inside_the_span() {
        let (p, makespan) = place(&[10, 10], 1, 5);
        assert_eq!(makespan, 30);
        assert_eq!(p[0].end - p[0].start, 15);
    }

    #[test]
    fn ties_break_on_task_then_slot_index() {
        let (p, _) = place(&[10, 10, 10], 3, 0);
        assert_eq!(p[0].slot, 0);
        assert_eq!(p[1].slot, 1);
        assert_eq!(p[2].slot, 2);
    }

    #[test]
    fn matches_engine_makespan_semantics() {
        // Same cases as cluster::makespan's unit tests.
        let (_, m) = place(&[10_000, 20_000, 30_000], 2, 0);
        assert_eq!(m, 30_000);
        let (_, m) = place(&[10_000; 4], 2, 0);
        assert_eq!(m, 20_000);
        let (_, m) = place(&[10_000, 10_000], 2, 5_000);
        assert_eq!(m, 15_000);
    }
}
