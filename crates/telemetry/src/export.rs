//! Exporters: Chrome `trace_event` JSON and machine-readable JSONL.
//!
//! Both exporters are byte-stable: events are emitted in the document's
//! sorted order, object keys are written in a fixed sequence, and every
//! number is an integer (no float formatting anywhere). The Chrome export
//! loads directly in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`.

use crate::collector::TraceDocument;
use crate::registry::MetricsRegistry;
use crate::span::{ArgValue, EventKind, TraceEvent};

/// Escapes a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn write_arg_value(out: &mut String, value: &ArgValue) {
    match value {
        ArgValue::U64(v) => out.push_str(&v.to_string()),
        ArgValue::I64(v) => out.push_str(&v.to_string()),
        ArgValue::Str(s) => {
            out.push('"');
            out.push_str(&json_escape(s));
            out.push('"');
        }
    }
}

fn write_args(out: &mut String, args: &[(String, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(key));
        out.push_str("\":");
        write_arg_value(out, value);
    }
    out.push('}');
}

fn write_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    out.push_str(&json_escape(&e.name));
    out.push_str("\",\"cat\":\"");
    out.push_str(&json_escape(&e.cat));
    out.push_str("\",\"ph\":\"");
    out.push_str(e.kind.code());
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts.to_string());
    if e.kind == EventKind::Complete {
        out.push_str(",\"dur\":");
        out.push_str(&e.dur.to_string());
    }
    if e.kind == EventKind::Instant {
        // Thread-scoped instants render as small arrows on the lane.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&e.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&e.tid.to_string());
    out.push_str(",\"args\":");
    write_args(out, &e.args);
    out.push('}');
}

fn write_registry_body(out: &mut String, registry: &MetricsRegistry) {
    out.push_str("\"counters\":{");
    for (i, (name, value)) in registry.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(name));
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in registry.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(name));
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in registry.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(name));
        out.push_str("\":{\"count\":");
        out.push_str(&hist.count().to_string());
        out.push_str(",\"sum\":");
        out.push_str(&hist.sum().to_string());
        out.push_str(",\"buckets\":[");
        for (j, (bound, count)) in hist.buckets().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"le\":");
            match bound {
                Some(b) => out.push_str(&b.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(",\"count\":");
            out.push_str(&count.to_string());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push('}');
}

/// Renders the document as Chrome `trace_event` JSON (the "JSON object
/// format": a `traceEvents` array plus metadata). Per-job registries ride
/// along under a top-level `registries` key, which trace viewers ignore.
pub fn chrome_trace(doc: &TraceDocument) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, event) in doc.events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_event(&mut out, event);
    }
    out.push_str("\n],\"registries\":[\n");
    for (i, (job, registry)) in doc.registries.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("{\"job\":\"");
        out.push_str(&json_escape(job));
        out.push_str("\",");
        write_registry_body(&mut out, registry);
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Renders the document as JSONL: one `event` object per line followed by
/// one `registry` object per job — the format the bench harness and
/// external tooling consume.
pub fn jsonl(doc: &TraceDocument) -> String {
    let mut out = String::new();
    for event in &doc.events {
        out.push_str("{\"type\":\"event\",\"event\":");
        write_event(&mut out, event);
        out.push_str("}\n");
    }
    for (job, registry) in &doc.registries {
        out.push_str("{\"type\":\"registry\",\"job\":\"");
        out.push_str(&json_escape(job));
        out.push_str("\",");
        write_registry_body(&mut out, registry);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{Collector, JobTrace};
    use crate::span::Span;

    fn sample_doc() -> TraceDocument {
        let c = Collector::new();
        let mut job = JobTrace::new("wc");
        job.name_lane(1, "map slot 0");
        job.span(
            Span::new(&["wc", "map", "0"], "map[0]", "map", 1, 0, 40).with_arg("records_in", 12u64),
        );
        job.instant(
            "fault:lost_output",
            "fault",
            1,
            40,
            vec![("task".to_owned(), ArgValue::U64(0))],
        );
        job.counter("map running", 0, "tasks", 1);
        job.registry_mut().add("map.records_out", 12);
        job.registry_mut().record("map.task_ticks", &[100], 40);
        job.set_total(50);
        c.commit(job);
        c.finish()
    }

    #[test]
    fn escape_handles_quotes_backslashes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\u{1}"), "x\\n\\t\\u0001");
    }

    #[test]
    fn chrome_export_is_valid_json_with_expected_fields() {
        let text = chrome_trace(&sample_doc());
        let value = crate::json::parse(&text).expect("chrome export parses as JSON");
        let events = value
            .get("traceEvents")
            .and_then(crate::json::Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        for event in events {
            assert!(event.get("name").is_some());
            assert!(event.get("ph").is_some());
            assert!(event.get("ts").is_some());
            assert!(event.get("pid").is_some());
            assert!(event.get("tid").is_some());
        }
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(crate::json::Value::as_str) == Some("X"))
            .expect("a complete span");
        assert!(x.get("dur").is_some(), "complete spans carry a duration");
        assert!(value.get("registries").is_some());
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&sample_doc());
        let mut kinds = Vec::new();
        for line in text.lines() {
            let value = crate::json::parse(line).expect("each JSONL line parses");
            kinds.push(
                value
                    .get("type")
                    .and_then(crate::json::Value::as_str)
                    .expect("type tag")
                    .to_owned(),
            );
        }
        assert!(kinds.contains(&"event".to_owned()));
        assert_eq!(kinds.last().map(String::as_str), Some("registry"));
    }

    #[test]
    fn exports_are_byte_stable() {
        assert_eq!(chrome_trace(&sample_doc()), chrome_trace(&sample_doc()));
        assert_eq!(jsonl(&sample_doc()), jsonl(&sample_doc()));
    }
}
