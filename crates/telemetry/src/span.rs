//! Span identity and the trace-event vocabulary.
//!
//! A [`Span`] is one box on the timeline: a task, an attempt, a phase. A
//! [`TraceEvent`] is the exporter's unit — spans plus the auxiliary event
//! kinds the Chrome `trace_event` format knows (instants, counter samples,
//! metadata). Span IDs are stable FNV-1a hashes over the span's identity
//! parts, so the same logical span gets the same ID in every run.

/// Model time, in microseconds on the simulated cluster clock.
pub type Ticks = u64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stable 64-bit span ID: FNV-1a over the identity parts with a unit
/// separator folded in between them, so `["a", "bc"]` and `["ab", "c"]`
/// hash differently. Identity parts are typically
/// `(job, phase, task, attempt)` rendered as strings.
pub fn span_id(parts: &[&str]) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h ^= 0x1f; // ASCII unit separator: cannot appear in identifiers
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A typed argument value attached to an event. Deliberately no float
/// variant: exported numbers are integers so formatting is trivially
/// byte-stable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// Unsigned quantity (counts, bytes, ticks).
    U64(u64),
    /// Signed quantity (gauge levels).
    I64(i64),
    /// Free-form label.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// What kind of event this is, mapping 1:1 onto Chrome `ph` codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Metadata (`"M"`): process / thread names. Sorts first so lane
    /// naming precedes the lane's events.
    Meta,
    /// A complete span (`"X"`): has a duration.
    Complete,
    /// A point-in-time marker (`"i"`): faults, speculation decisions.
    Instant,
    /// A counter sample (`"C"`): slot occupancy over time.
    Counter,
}

impl EventKind {
    /// The Chrome `trace_event` phase code.
    pub fn code(self) -> &'static str {
        match self {
            EventKind::Meta => "M",
            EventKind::Complete => "X",
            EventKind::Instant => "i",
            EventKind::Counter => "C",
        }
    }
}

/// One box on the timeline, before it is committed to a lane.
///
/// `lane` is the thread-track the span renders on (a slot index, or a
/// reserved lane like the driver's); the process-track (`pid`) is assigned
/// when the owning job commits, so spans are built without knowing where
/// in the pipeline their job sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stable identity hash (see [`span_id`]).
    pub id: u64,
    /// Identity hash of the enclosing span, if any. Chrome nests spans by
    /// time containment; the explicit parent ID is carried in `args` for
    /// machine consumers.
    pub parent: Option<u64>,
    /// Human-readable name, e.g. `"map[3]"` or `"attempt 1"`.
    pub name: String,
    /// Category, e.g. `"map"`, `"reduce"`, `"shuffle"`, `"fault"`.
    pub cat: String,
    /// Thread-track within the job's process-track.
    pub lane: u64,
    /// Start tick, relative to the owning job's start.
    pub start: Ticks,
    /// Duration in ticks.
    pub dur: Ticks,
    /// Typed arguments, in insertion order (kept sorted by the caller or
    /// left in build order — exporters preserve it verbatim).
    pub args: Vec<(String, ArgValue)>,
}

impl Span {
    /// A span with the given identity parts, name and category, covering
    /// `[start, start + dur)` on `lane`.
    pub fn new(
        id_parts: &[&str],
        name: impl Into<String>,
        cat: impl Into<String>,
        lane: u64,
        start: Ticks,
        dur: Ticks,
    ) -> Self {
        Self {
            id: span_id(id_parts),
            parent: None,
            name: name.into(),
            cat: cat.into(),
            lane,
            start,
            dur,
            args: Vec::new(),
        }
    }

    /// Sets the parent span ID.
    pub fn with_parent(mut self, parent: u64) -> Self {
        self.parent = Some(parent);
        self
    }

    /// Appends one argument.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<ArgValue>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }
}

/// The exporter's unit: a span or auxiliary event, fully placed (absolute
/// ticks, process-track assigned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind (Chrome `ph`).
    pub kind: EventKind,
    /// Event name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Process-track: 0 = pipeline, then one per job in run order.
    pub pid: u64,
    /// Thread-track within the process.
    pub tid: u64,
    /// Absolute start tick.
    pub ts: Ticks,
    /// Duration (complete spans only; 0 otherwise).
    pub dur: Ticks,
    /// Arguments, exported in this order.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    /// The total order exporters sort by, making export output independent
    /// of event insertion order: `(pid, tid, ts, kind, longest-first dur,
    /// name)`.
    pub fn sort_key(&self) -> (u64, u64, Ticks, EventKind, std::cmp::Reverse<Ticks>, &str) {
        (
            self.pid,
            self.tid,
            self.ts,
            self.kind,
            std::cmp::Reverse(self.dur),
            &self.name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_stable_across_calls() {
        let a = span_id(&["wc", "map", "3", "0"]);
        let b = span_id(&["wc", "map", "3", "0"]);
        assert_eq!(a, b);
    }

    #[test]
    fn span_ids_distinguish_part_boundaries() {
        assert_ne!(span_id(&["ab", "c"]), span_id(&["a", "bc"]));
        assert_ne!(span_id(&["ab"]), span_id(&["ab", ""]));
    }

    #[test]
    fn span_ids_depend_on_every_part() {
        let base = span_id(&["job", "map", "0", "0"]);
        assert_ne!(base, span_id(&["job", "map", "0", "1"]));
        assert_ne!(base, span_id(&["job", "map", "1", "0"]));
        assert_ne!(base, span_id(&["job", "reduce", "0", "0"]));
    }

    #[test]
    fn builder_attaches_args_in_order() {
        let s = Span::new(&["j", "map", "0"], "map[0]", "map", 2, 10, 5)
            .with_arg("records_in", 7u64)
            .with_arg("kind", "winner");
        assert_eq!(s.args.len(), 2);
        assert_eq!(s.args[0], ("records_in".to_owned(), ArgValue::U64(7)));
        assert_eq!(s.lane, 2);
        assert_eq!((s.start, s.dur), (10, 5));
    }

    #[test]
    fn sort_key_orders_meta_first_and_long_spans_first() {
        let mk = |kind, ts, dur, name: &str| TraceEvent {
            kind,
            name: name.to_owned(),
            cat: String::new(),
            pid: 1,
            tid: 1,
            ts,
            dur,
            args: Vec::new(),
        };
        let meta = mk(EventKind::Meta, 0, 0, "thread_name");
        let outer = mk(EventKind::Complete, 0, 10, "task");
        let inner = mk(EventKind::Complete, 0, 4, "attempt");
        let mut events = vec![inner.clone(), outer.clone(), meta.clone()];
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        assert_eq!(events, vec![meta, outer, inner]);
    }
}
