//! The metrics registry: typed counters, gauges, and fixed-bucket
//! histograms.
//!
//! The registry is the structured replacement for the ad-hoc count fields
//! that used to live only on `JobMetrics`; the engine now populates a
//! registry per job and derives the legacy fields from it (the
//! compatibility facade). Everything is deterministic by construction:
//! `BTreeMap` storage, `u64` histogram bounds, integer values throughout.

use std::collections::BTreeMap;

use crate::span::Ticks;

/// Default histogram bounds for per-task model durations, in ticks
/// (microseconds): powers of four from 64 µs to ~17 s, plus an implicit
/// overflow bucket. Integer bounds keep bucketing and export byte-stable.
pub const TICK_BUCKETS: &[u64] = &[
    64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];

/// A fixed-bucket histogram over `u64` samples.
///
/// Bucket `i` counts samples `v <= bounds[i]` (first matching bound); one
/// implicit overflow bucket counts everything above the last bound.
/// `record` followed by `merge` is associative and commutative (it is
/// element-wise addition), which the engine relies on to fold per-task
/// histograms in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
}

impl Histogram {
    /// An empty histogram with the given upper bounds (must be strictly
    /// increasing; an overflow bucket is added implicitly).
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Folds another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bounds differ — merging histograms of different
    /// shapes is a programming error, not a data condition.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `(upper_bound, count)` pairs; the overflow bucket has bound `None`.
    pub fn buckets(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.bounds
            .iter()
            .map(|&b| Some(b))
            .chain(std::iter::once(None))
            .zip(self.counts.iter().copied())
    }

    /// The smallest bound whose cumulative count reaches `q`-per-mille of
    /// the samples (`None` for an empty histogram or when the quantile
    /// lands in the overflow bucket). Integer arithmetic only.
    pub fn quantile_bound(&self, q_per_mille: u64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (total * q_per_mille).div_ceil(1000).max(1);
        let mut seen = 0;
        for (bound, count) in self.buckets() {
            seen += count;
            if seen >= target {
                return bound;
            }
        }
        None
    }
}

/// A per-job metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the named counter (created at zero).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets the named gauge to an absolute level.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current gauge level, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Records a sample into the named histogram, creating it with
    /// `bounds` on first use.
    pub fn record(&mut self, name: &str, bounds: &[u64], value: Ticks) {
        self.histograms
            .entry(name.to_owned())
            .or_insert_with(|| Histogram::new(bounds))
            .record(value);
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into this registry: counters add, gauges take
    /// `other`'s value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = MetricsRegistry::new();
        assert_eq!(r.counter("map.records_out"), 0);
        r.add("map.records_out", 3);
        r.add("map.records_out", 4);
        assert_eq!(r.counter("map.records_out"), 7);
    }

    #[test]
    fn gauges_hold_the_last_level() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("cluster.map_slots", 13);
        r.set_gauge("cluster.map_slots", 4);
        assert_eq!(r.gauge("cluster.map_slots"), Some(4));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_first_matching_bound() {
        let mut h = Histogram::new(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts, vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5222);
    }

    #[test]
    fn quantile_bound_walks_cumulative_counts() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..9 {
            h.record(5);
        }
        h.record(500);
        assert_eq!(h.quantile_bound(500), Some(10));
        assert_eq!(h.quantile_bound(1000), Some(1000));
        assert_eq!(Histogram::new(&[10]).quantile_bound(500), None);
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.record("h", &[10], 5);
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 3);
        b.record("h", &[10], 50);
        b.set_gauge("g", -1);
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.gauge("g"), Some(-1));
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 2);
    }

    fn from_samples(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new(TICK_BUCKETS);
        for &s in samples {
            h.record(s);
        }
        h
    }

    proptest! {
        /// `record`/`merge` is commutative: folding A into B equals
        /// folding B into A.
        #[test]
        fn histogram_merge_is_commutative(
            xs in proptest::collection::vec(0u64..1 << 28, 0..40),
            ys in proptest::collection::vec(0u64..1 << 28, 0..40),
        ) {
            let mut ab = from_samples(&xs);
            ab.merge(&from_samples(&ys));
            let mut ba = from_samples(&ys);
            ba.merge(&from_samples(&xs));
            prop_assert_eq!(ab, ba);
        }

        /// `merge` is associative: (A + B) + C equals A + (B + C).
        #[test]
        fn histogram_merge_is_associative(
            xs in proptest::collection::vec(0u64..1 << 28, 0..30),
            ys in proptest::collection::vec(0u64..1 << 28, 0..30),
            zs in proptest::collection::vec(0u64..1 << 28, 0..30),
        ) {
            let (a, b, c) = (from_samples(&xs), from_samples(&ys), from_samples(&zs));
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(left, right);
        }

        /// Merging is equivalent to recording the concatenated sample
        /// stream in any order.
        #[test]
        fn merge_equals_recording_everything(
            xs in proptest::collection::vec(0u64..1 << 28, 0..40),
            ys in proptest::collection::vec(0u64..1 << 28, 0..40),
        ) {
            let mut merged = from_samples(&xs);
            merged.merge(&from_samples(&ys));
            let mut all: Vec<u64> = xs.iter().chain(ys.iter()).copied().collect();
            all.reverse();
            prop_assert_eq!(merged, from_samples(&all));
        }
    }
}
