//! The collector: assembles per-job traces into one pipeline timeline.
//!
//! A [`Collector`] owns the pipeline's model clock cursor. Each job builds
//! a [`JobTrace`] with ticks relative to its own start; committing the
//! trace assigns the job a process-track, offsets its events by the
//! cursor, and advances the cursor by the job's total model duration — so
//! consecutive jobs of a pipeline lay out end-to-end exactly like the
//! simulated clock says they ran.
//!
//! [`Collector::scope`] opens a pipeline-level [`SpanGuard`] (lane 0 of
//! process 0) that closes at whatever cursor position the collector has
//! reached when the guard drops — the job-chain spans that wrap
//! `mr_gpsrs` / `mr_gpmrs`.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::registry::MetricsRegistry;
use crate::span::{span_id, ArgValue, EventKind, Span, Ticks, TraceEvent};

/// Process-track reserved for pipeline-level scopes.
pub const PIPELINE_PID: u64 = 0;

/// The finished product of a collector: every event placed on the absolute
/// model clock, plus each job's registry snapshot in commit order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceDocument {
    /// All events, sorted by [`TraceEvent::sort_key`].
    pub events: Vec<TraceEvent>,
    /// `(job name, registry)` per committed job, in commit order.
    pub registries: Vec<(String, MetricsRegistry)>,
}

#[derive(Debug, Default)]
struct Inner {
    cursor: Ticks,
    next_pid: u64,
    events: Vec<TraceEvent>,
    registries: Vec<(String, MetricsRegistry)>,
    open_scopes: usize,
}

/// A shared, clonable handle to a trace under construction.
///
/// Clones share the same underlying trace, so a collector stored in a
/// config struct and cloned along with it keeps appending to one timeline.
#[derive(Clone, Default)]
pub struct Collector {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Collector")
            .field("cursor", &inner.cursor)
            .field("jobs", &inner.registries.len())
            .field("events", &inner.events.len())
            .finish()
    }
}

impl Collector {
    /// An empty collector with the model clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current position of the pipeline model clock.
    pub fn cursor(&self) -> Ticks {
        self.inner.lock().cursor
    }

    /// Opens a pipeline-level span that closes when the returned guard
    /// drops, covering every job committed in between.
    pub fn scope(&self, cat: impl Into<String>, name: impl Into<String>) -> SpanGuard {
        let mut inner = self.inner.lock();
        inner.open_scopes += 1;
        SpanGuard {
            collector: self.clone(),
            cat: cat.into(),
            name: name.into(),
            start: inner.cursor,
        }
    }

    /// Commits a finished job trace: assigns it the next process-track,
    /// offsets its events by the current cursor, and advances the cursor
    /// by the job's total model duration.
    pub fn commit(&self, job: JobTrace) {
        let mut inner = self.inner.lock();
        let base = inner.cursor;
        inner.next_pid += 1;
        let pid = inner.next_pid;
        inner.events.push(TraceEvent {
            kind: EventKind::Meta,
            name: "process_name".to_owned(),
            cat: String::new(),
            pid,
            tid: 0,
            ts: 0,
            dur: 0,
            args: vec![("name".to_owned(), ArgValue::Str(job.name.clone()))],
        });
        for mut event in job.events {
            event.pid = pid;
            event.ts += base;
            inner.events.push(event);
        }
        inner.cursor = base + job.total;
        inner.registries.push((job.name, job.registry));
    }

    fn close_scope(&self, cat: String, name: String, start: Ticks) {
        let mut inner = self.inner.lock();
        let end = inner.cursor;
        inner.open_scopes -= 1;
        inner.events.push(TraceEvent {
            kind: EventKind::Complete,
            name,
            cat,
            pid: PIPELINE_PID,
            tid: 0,
            ts: start,
            dur: end - start,
            args: Vec::new(),
        });
    }

    /// Snapshots the trace into a sorted, export-ready document.
    ///
    /// # Panics
    ///
    /// Panics if a [`SpanGuard`] is still open — finishing with dangling
    /// scopes would silently drop their spans.
    pub fn finish(&self) -> TraceDocument {
        let inner = self.inner.lock();
        assert_eq!(inner.open_scopes, 0, "finish() with an open SpanGuard");
        let mut events = inner.events.clone();
        if !events.is_empty() {
            events.push(TraceEvent {
                kind: EventKind::Meta,
                name: "process_name".to_owned(),
                cat: String::new(),
                pid: PIPELINE_PID,
                tid: 0,
                ts: 0,
                dur: 0,
                args: vec![("name".to_owned(), ArgValue::Str("pipeline".to_owned()))],
            });
        }
        events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        TraceDocument {
            events,
            registries: inner.registries.clone(),
        }
    }
}

/// Closes its pipeline-level span on drop (RAII).
#[derive(Debug)]
pub struct SpanGuard {
    collector: Collector,
    cat: String,
    name: String,
    start: Ticks,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.collector.close_scope(
            std::mem::take(&mut self.cat),
            std::mem::take(&mut self.name),
            self.start,
        );
    }
}

/// One job's trace under construction: events in job-relative ticks plus
/// the job's metrics registry.
#[derive(Debug)]
pub struct JobTrace {
    name: String,
    events: Vec<TraceEvent>,
    registry: MetricsRegistry,
    total: Ticks,
}

impl JobTrace {
    /// An empty trace for the named job.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            events: Vec::new(),
            registry: MetricsRegistry::new(),
            total: 0,
        }
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Records a complete span. The span's ID and parent ID are exported
    /// as args so machine consumers can rebuild the tree without relying
    /// on time containment.
    pub fn span(&mut self, span: Span) {
        let mut args = Vec::with_capacity(span.args.len() + 2);
        args.push(("span_id".to_owned(), ArgValue::U64(span.id)));
        if let Some(parent) = span.parent {
            args.push(("parent_id".to_owned(), ArgValue::U64(parent)));
        }
        args.extend(span.args);
        self.events.push(TraceEvent {
            kind: EventKind::Complete,
            name: span.name,
            cat: span.cat,
            pid: 0,
            tid: span.lane,
            ts: span.start,
            dur: span.dur,
            args,
        });
    }

    /// Records a point-in-time marker (fault injections, speculation
    /// decisions).
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: impl Into<String>,
        lane: u64,
        ts: Ticks,
        args: Vec<(String, ArgValue)>,
    ) {
        self.events.push(TraceEvent {
            kind: EventKind::Instant,
            name: name.into(),
            cat: cat.into(),
            pid: 0,
            tid: lane,
            ts,
            dur: 0,
            args,
        });
    }

    /// Records a counter sample (`series` → value at `ts`), rendered by
    /// Chrome as a stacked area track.
    pub fn counter(&mut self, name: impl Into<String>, ts: Ticks, series: &str, value: u64) {
        self.events.push(TraceEvent {
            kind: EventKind::Counter,
            name: name.into(),
            cat: String::new(),
            pid: 0,
            tid: 0,
            ts,
            dur: 0,
            args: vec![(series.to_owned(), ArgValue::U64(value))],
        });
    }

    /// Names a thread-track (slot lane) of this job.
    pub fn name_lane(&mut self, lane: u64, label: impl Into<String>) {
        self.events.push(TraceEvent {
            kind: EventKind::Meta,
            name: "thread_name".to_owned(),
            cat: String::new(),
            pid: 0,
            tid: lane,
            ts: 0,
            dur: 0,
            args: vec![("name".to_owned(), ArgValue::Str(label.into()))],
        });
    }

    /// The job's metrics registry.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Sets the job's total model duration (how far the pipeline cursor
    /// advances on commit).
    pub fn set_total(&mut self, total: Ticks) {
        self.total = total;
    }

    /// Stable span ID for a part path rooted at this job's name.
    pub fn id(&self, parts: &[&str]) -> u64 {
        let mut all: Vec<&str> = Vec::with_capacity(parts.len() + 1);
        all.push(&self.name);
        all.extend_from_slice(parts);
        span_id(&all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_offsets_events_and_advances_cursor() {
        let c = Collector::new();
        let mut job = JobTrace::new("a");
        job.span(Span::new(&["a", "map", "0"], "map[0]", "map", 1, 10, 5));
        job.set_total(100);
        c.commit(job);
        assert_eq!(c.cursor(), 100);

        let mut job = JobTrace::new("b");
        job.span(Span::new(&["b", "map", "0"], "map[0]", "map", 1, 0, 7));
        job.set_total(50);
        c.commit(job);
        assert_eq!(c.cursor(), 150);

        let doc = c.finish();
        let spans: Vec<&TraceEvent> = doc
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Complete)
            .collect();
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].pid, spans[0].ts), (1, 10));
        assert_eq!((spans[1].pid, spans[1].ts), (2, 100));
        assert_eq!(doc.registries.len(), 2);
    }

    #[test]
    fn scope_covers_jobs_committed_inside_it() {
        let c = Collector::new();
        {
            let _guard = c.scope("algo", "mr-gpmrs");
            let mut job = JobTrace::new("bitstring");
            job.set_total(40);
            c.commit(job);
            let mut job = JobTrace::new("gpmrs");
            job.set_total(60);
            c.commit(job);
        }
        let doc = c.finish();
        let scope = doc
            .events
            .iter()
            .find(|e| e.name == "mr-gpmrs")
            .expect("scope span present");
        assert_eq!(scope.pid, PIPELINE_PID);
        assert_eq!((scope.ts, scope.dur), (0, 100));
    }

    #[test]
    #[should_panic(expected = "open SpanGuard")]
    fn finish_rejects_dangling_scopes() {
        let c = Collector::new();
        let _guard = c.scope("algo", "dangling");
        let _ = c.finish();
    }

    #[test]
    fn finish_is_sorted_and_repeatable() {
        let c = Collector::new();
        let mut job = JobTrace::new("j");
        job.span(Span::new(&["j", "x"], "late", "map", 2, 50, 5));
        job.span(Span::new(&["j", "y"], "early", "map", 1, 0, 5));
        job.name_lane(1, "slot 1");
        job.set_total(60);
        c.commit(job);
        let a = c.finish();
        let b = c.finish();
        assert_eq!(a, b);
        let keys: Vec<_> = a.events.iter().map(|e| (e.pid, e.tid, e.ts)).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
