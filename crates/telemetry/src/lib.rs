//! Deterministic telemetry for the simulated MapReduce engine.
//!
//! The engine's evaluation story (the paper's Sections 6–7) is entirely
//! about *where time goes* — map vs. shuffle vs. reduce, bitstring-job
//! overhead, per-partition pruning effectiveness. This crate provides the
//! measurement substrate:
//!
//! * a **span tree** ([`Span`], [`SpanGuard`], [`Collector`]) keyed to the
//!   *simulated* cluster clock — never the host's wall clock — with stable
//!   span IDs derived from `(job, phase, task, attempt)`;
//! * a **metrics registry** ([`MetricsRegistry`]) with typed counters,
//!   gauges, and fixed-bucket histograms (integer bucket boundaries only);
//! * **exporters**: Chrome `trace_event` JSON (loadable in Perfetto /
//!   `chrome://tracing`), machine-readable JSONL, and a plain-text
//!   per-job phase summary table.
//!
//! # Determinism rules
//!
//! Everything that reaches an export must be a pure function of the job's
//! *logical* execution: record counts, byte counts, configured `Duration`
//! constants, and the deterministic fault plan. Concretely:
//!
//! 1. **No wall-clock reads.** Span times are model ticks (microseconds on
//!    the simulated clock) computed by [`model`], never `Instant::now()`.
//! 2. **No hash-iteration ordering.** Every map in this crate is a
//!    `BTreeMap`; exporters additionally sort events by a total order.
//! 3. **No floats in bucket boundaries or exported values.** Histogram
//!    bounds are `u64`; exported numbers are integers.
//!
//! Under those rules the same seeded job produces *byte-identical* exports
//! regardless of host thread count or schedule shaking. The one documented
//! exception is speculative execution, whose backup/winner decisions
//! depend on measured host durations; traces of speculative runs carry the
//! outcome as counters but make no byte-identity promise.

#![forbid(unsafe_code)]

pub mod collector;
pub mod export;
pub mod json;
pub mod model;
pub mod place;
pub mod registry;
pub mod span;
pub mod summary;

pub use collector::{Collector, JobTrace, SpanGuard, TraceDocument};
pub use registry::{Histogram, MetricsRegistry};
pub use span::{span_id, ArgValue, EventKind, Span, Ticks, TraceEvent};
pub use summary::{phase_table, JobPhaseSummary};
