//! The plain-text per-job phase summary table.
//!
//! This is the human-facing exporter: one row per job with its phase
//! breakdown and fault-tolerance story. Unlike the Chrome/JSONL exports
//! (model ticks only), the table may carry *measured* durations — it is a
//! report for eyeballs, not a byte-stability contract.

use std::time::Duration;

/// One job's row in the phase table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobPhaseSummary {
    /// Job name.
    pub job: String,
    /// Map task count.
    pub map_tasks: usize,
    /// Reduce task count.
    pub reduce_tasks: usize,
    /// Startup plus broadcast charge.
    pub overhead: Duration,
    /// Map-phase makespan.
    pub map: Duration,
    /// Shuffle transfer time.
    pub shuffle: Duration,
    /// Reduce-phase makespan.
    pub reduce: Duration,
    /// End-to-end simulated runtime.
    pub total: Duration,
    /// Task attempts executed (including retries and backups).
    pub attempts: u64,
    /// Failed-and-retried attempts.
    pub retries: u64,
    /// Speculative backups that beat their original.
    pub speculative_wins: u64,
    /// Simulated task time that produced no surviving output.
    pub wasted: Duration,
    /// Simulated time spent waiting in an executor's admission queue.
    pub queued: Duration,
    /// Task attempts preempted by the scheduler for higher-priority work.
    pub preemptions: u64,
}

/// Renders a duration compactly: `1.234s`, `56.7ms`, `890us`.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us >= 1_000_000 {
        format!("{}.{:03}s", us / 1_000_000, (us % 1_000_000) / 1_000)
    } else if us >= 1_000 {
        format!("{}.{}ms", us / 1_000, (us % 1_000) / 100)
    } else {
        format!("{us}us")
    }
}

/// Renders the phase table. Never panics — zero-task jobs, zero
/// durations, and an empty row set all render (the empty set renders as
/// just the header).
pub fn phase_table(rows: &[JobPhaseSummary]) -> String {
    let headers = [
        "job",
        "tasks",
        "overhead",
        "map",
        "shuffle",
        "reduce",
        "total",
        "attempts",
        "retries",
        "spec wins",
        "wasted",
        "queued",
        "preempt",
    ];
    let mut cells: Vec<Vec<String>> = vec![headers.iter().map(|&h| h.to_owned()).collect()];
    for row in rows {
        cells.push(vec![
            row.job.clone(),
            format!("{}m/{}r", row.map_tasks, row.reduce_tasks),
            fmt_duration(row.overhead),
            fmt_duration(row.map),
            fmt_duration(row.shuffle),
            fmt_duration(row.reduce),
            fmt_duration(row.total),
            row.attempts.to_string(),
            row.retries.to_string(),
            row.speculative_wins.to_string(),
            fmt_duration(row.wasted),
            fmt_duration(row.queued),
            row.preemptions.to_string(),
        ]);
    }
    let mut widths = vec![0usize; headers.len()];
    for row in &cells {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, row) in cells.iter().enumerate() {
        for (j, (cell, width)) in row.iter().zip(&widths).enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            if j == 0 {
                // Left-align the job name, right-align numbers.
                out.push_str(&format!("{cell:<width$}"));
            } else {
                out.push_str(&format!("{cell:>width$}"));
            }
        }
        out.push('\n');
        if i == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn durations_format_with_unit_scaling() {
        assert_eq!(fmt_duration(Duration::from_micros(890)), "890us");
        assert_eq!(fmt_duration(Duration::from_micros(56_700)), "56.7ms");
        assert_eq!(fmt_duration(Duration::from_micros(1_234_000)), "1.234s");
        assert_eq!(fmt_duration(Duration::ZERO), "0us");
    }

    #[test]
    fn table_renders_rows_with_aligned_columns() {
        let rows = vec![
            JobPhaseSummary {
                job: "bitstring".to_owned(),
                map_tasks: 4,
                reduce_tasks: 1,
                overhead: ms(2),
                map: ms(10),
                shuffle: ms(1),
                reduce: ms(3),
                total: ms(16),
                attempts: 5,
                ..Default::default()
            },
            JobPhaseSummary {
                job: "gpmrs".to_owned(),
                map_tasks: 4,
                reduce_tasks: 8,
                total: ms(40),
                ..Default::default()
            },
        ];
        let table = phase_table(&rows);
        assert!(table.contains("bitstring"));
        assert!(table.contains("4m/8r"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4, "header, rule, two rows");
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn zero_reducer_and_empty_rows_render_without_panicking() {
        let degenerate = JobPhaseSummary {
            job: "empty".to_owned(),
            map_tasks: 0,
            reduce_tasks: 0,
            ..Default::default()
        };
        let table = phase_table(&[degenerate]);
        assert!(table.contains("0m/0r"));
        let header_only = phase_table(&[]);
        assert!(header_only.contains("job"));
    }
}
