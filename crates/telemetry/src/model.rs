//! The model timebase: deterministic per-attempt cost in ticks.
//!
//! Measured host durations (what `JobMetrics` reports) vary run-to-run
//! and with host thread count, so they can never appear in a byte-stable
//! export. Exported span durations instead come from this cost model — a
//! pure function of record counts, byte counts, and the fault plan. The
//! model is *not* calibrated to be accurate; it exists to make relative
//! shapes (skew, retries, phase balance) visible and reproducible.

use crate::span::Ticks;

/// Fixed setup cost charged to every attempt, in ticks.
pub const ATTEMPT_BASE_TICKS: Ticks = 150;

/// Cost per input record processed.
pub const TICKS_PER_RECORD_IN: Ticks = 2;

/// Cost per output record emitted.
pub const TICKS_PER_RECORD_OUT: Ticks = 1;

/// Output bytes serialized per tick.
pub const BYTES_PER_TICK: Ticks = 64;

/// Model cost of one full task attempt.
pub fn attempt_ticks(records_in: u64, records_out: u64, bytes_out: u64) -> Ticks {
    ATTEMPT_BASE_TICKS
        + records_in * TICKS_PER_RECORD_IN
        + records_out * TICKS_PER_RECORD_OUT
        + bytes_out / BYTES_PER_TICK
}

/// Local-disk bytes moved per tick by the out-of-core storage plane —
/// faster than the shuffle's [`BYTES_PER_TICK`], as sequential local disk
/// beats the paper-era 100 Mbit/s LAN.
pub const DISK_BYTES_PER_TICK: Ticks = 256;

/// Fixed per-file-open charge (a modeled seek) for spill and merge I/O.
pub const SEEK_TICKS: Ticks = 20;

/// Model cost of moving `bytes` over local disk with `seeks` file opens —
/// the tick analogue of the storage plane's simulated-clock disk charge.
pub fn storage_ticks(bytes: u64, seeks: u64) -> Ticks {
    bytes / DISK_BYTES_PER_TICK + seeks * SEEK_TICKS
}

/// Applies a straggler slowdown factor to a model duration. The factor
/// comes from the (deterministic) fault plan; the multiply rounds down,
/// and factors below 1 are clamped to 1, mirroring the engine's charge.
pub fn scaled(ticks: Ticks, slowdown: f64) -> Ticks {
    let factor = if slowdown > 1.0 { slowdown } else { 1.0 };
    // f64 arithmetic on identical inputs is bit-stable; the cast truncates.
    (ticks as f64 * factor) as Ticks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_cost_is_linear_in_inputs() {
        let base = attempt_ticks(0, 0, 0);
        assert_eq!(base, ATTEMPT_BASE_TICKS);
        assert_eq!(attempt_ticks(10, 0, 0), base + 20);
        assert_eq!(attempt_ticks(0, 10, 0), base + 10);
        assert_eq!(attempt_ticks(0, 0, 640), base + 10);
    }

    #[test]
    fn slowdown_clamps_below_one_and_truncates() {
        assert_eq!(scaled(100, 0.5), 100);
        assert_eq!(scaled(100, 1.0), 100);
        assert_eq!(scaled(100, 2.5), 250);
        assert_eq!(scaled(3, 1.5), 4);
    }
}
