//! A minimal JSON parser, used by the trace summarizer and the `xtask`
//! schema checker. No serde in the workspace (the build is offline), so
//! this hand-rolled recursive-descent parser covers the subset the
//! exporters emit — which is all of standard JSON minus exotic number
//! forms (exponents are accepted; only finite values appear in traces).

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not emitted by our
                            // exporters; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    if let Some(c) = s.chars().next() {
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("42"), Ok(Value::Num(42.0)));
        assert_eq!(parse("-3.5"), Ok(Value::Num(-3.5)));
        assert_eq!(parse("\"hi\""), Ok(Value::Str("hi".to_owned())));
    }

    #[test]
    fn parses_nested_structures_preserving_key_order() {
        let v = parse(r#"{"b":[1,2,{"c":null}],"a":"x"}"#).expect("parses");
        let members = v.as_object().expect("object");
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a").and_then(Value::as_str), Some("x"));
        let arr = v.get("b").and_then(Value::as_array).expect("array");
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
    }

    #[test]
    fn decodes_escapes() {
        let v = parse(r#""a\n\t\"\\ A""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\n\t\"\\ A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").expect("ok").as_u64(), None);
        assert_eq!(parse("-1").expect("ok").as_u64(), None);
        assert_eq!(parse("12").expect("ok").as_u64(), Some(12));
    }
}
