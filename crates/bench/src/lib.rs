//! Shared harness for the figure-reproduction binaries.
//!
//! The paper's evaluation (Section 7) consists of five figures; each has a
//! binary in `src/bin/` that sweeps the same parameters, runs the same
//! algorithm set, and prints the same series the paper plots — the
//! *simulated* cluster runtime standing in for the paper's measured Hadoop
//! runtime (see `skymr-mapreduce`). Results are printed as aligned tables
//! and written as CSV under `bench_results/`.
//!
//! Scale profiles (`--scale quick|paper-shape|full`) trade fidelity for
//! wall-clock time; `paper-shape` (the default) keeps the paper's
//! dimensionality sweeps but reduces cardinalities so a laptop regenerates
//! every figure in minutes. Like the paper — where MR-BNL, MR-Angle, and
//! sometimes MR-GPSRS "cannot terminate in a reasonable period of time" at
//! high dimensionality — the harness stops extending a series once an
//! algorithm exceeds its per-run wall-clock budget and reports `DNF`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_baselines::{mr_angle, mr_bnl, BaselineConfig};
use skymr_common::Dataset;
use skymr_datagen::{generate, Distribution};
use skymr_mapreduce::telemetry::export::json_escape;
use skymr_mapreduce::telemetry::JobPhaseSummary;
use skymr_mapreduce::JobMetrics;

/// Benchmark scale profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast smoke scale (CI).
    Quick,
    /// Default: the paper's sweeps at reduced cardinality (minutes).
    PaperShape,
    /// The paper's own cardinalities (hours; needs a beefy machine).
    Full,
}

impl Scale {
    /// Parses `--scale` command-line values.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper-shape" | "default" => Some(Scale::PaperShape),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The low / high cardinalities playing the paper's 1×10⁵ / 2×10⁶
    /// roles.
    pub fn cardinalities(&self) -> (usize, usize) {
        match self {
            Scale::Quick => (2_000, 8_000),
            Scale::PaperShape => (10_000, 40_000),
            Scale::Full => (100_000, 2_000_000),
        }
    }

    /// The cardinality sweep for Figure 9 (paper: 1×10⁵ … 3×10⁶).
    pub fn cardinality_sweep(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![1_000, 3_000, 6_000, 10_000],
            Scale::PaperShape => vec![5_000, 15_000, 30_000, 60_000, 100_000],
            Scale::Full => vec![100_000, 500_000, 1_000_000, 2_000_000, 3_000_000],
        }
    }

    /// Per-run host wall-clock budget before a series is marked DNF.
    ///
    /// Note MR-GPMRS deliberately trades *aggregate* work for parallelism
    /// (replicated partitions are re-merged on several reducers), so its
    /// host cost exceeds its simulated cluster runtime by up to the slot
    /// count; budgets are sized so that only genuinely runaway runs — the
    /// paper's "cannot terminate in a reasonable period of time" cases —
    /// get cut.
    pub fn dnf_budget(&self) -> Duration {
        match self {
            Scale::Quick => Duration::from_secs(10),
            Scale::PaperShape => Duration::from_secs(240),
            Scale::Full => Duration::from_secs(3_600),
        }
    }
}

/// Parsed command-line options shared by all figure binaries.
#[derive(Debug, Clone)]
pub struct HarnessOptions {
    /// Scale profile.
    pub scale: Scale,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Seed for dataset generation.
    pub seed: u64,
}

impl HarnessOptions {
    /// Parses `std::env::args()`: `--scale <s>`, `--out <dir>`,
    /// `--seed <n>`.
    pub fn from_args() -> Self {
        let mut opts = Self {
            scale: Scale::PaperShape,
            out_dir: PathBuf::from("bench_results"),
            seed: 42,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = Scale::parse(&args[i])
                        .unwrap_or_else(|| panic!("unknown scale {:?}", args[i]));
                }
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(&args[i]);
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args[i].parse().expect("--seed takes an integer");
                }
                other => panic!("unknown option {other} (try --scale quick|paper-shape|full)"),
            }
            i += 1;
        }
        opts
    }
}

/// The algorithms the paper plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// The paper's multi-reducer algorithm.
    MrGpmrs,
    /// The paper's single-reducer algorithm.
    MrGpsrs,
    /// Zhang et al.'s baseline.
    MrBnl,
    /// Chen et al.'s baseline.
    MrAngle,
}

impl Algo {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::MrGpmrs => "MR-GPMRS",
            Algo::MrGpsrs => "MR-GPSRS",
            Algo::MrBnl => "MR-BNL",
            Algo::MrAngle => "MR-Angle",
        }
    }

    /// All four, in the paper's legend order.
    pub fn all() -> [Algo; 4] {
        [Algo::MrGpsrs, Algo::MrGpmrs, Algo::MrBnl, Algo::MrAngle]
    }
}

/// One measured data point.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Simulated cluster runtime (the paper's y-axis).
    pub sim_runtime: Duration,
    /// Host wall-clock cost of producing it.
    pub host_wall: Duration,
    /// Skyline size (sanity/reporting).
    pub skyline_size: usize,
    /// Merged job counters.
    pub counters: BTreeMap<String, u64>,
    /// PPD the grid algorithms used (0 for baselines).
    pub ppd: usize,
    /// Per-job phase breakdown (map / shuffle / reduce / overhead), in
    /// pipeline order.
    pub phases: Vec<JobPhaseSummary>,
}

/// Per-job phase rows for a finished pipeline.
fn phase_rows(metrics: &skymr_mapreduce::PipelineMetrics) -> Vec<JobPhaseSummary> {
    metrics.jobs.iter().map(JobMetrics::phase_summary).collect()
}

/// Runs one algorithm on one dataset with paper-default parameters.
pub fn run_algo(algo: Algo, dataset: &Dataset, reducers: usize) -> Measurement {
    let skyline_cfg = || SkylineConfig {
        reducers,
        ppd: PpdPolicy::auto(),
        ..SkylineConfig::default()
    };
    match algo {
        Algo::MrGpsrs => {
            let run = mr_gpsrs(dataset, &skyline_cfg()).expect("valid config");
            Measurement {
                sim_runtime: run.metrics.sim_runtime(),
                host_wall: run.metrics.host_wall(),
                skyline_size: run.skyline.len(),
                phases: phase_rows(&run.metrics),
                counters: run.counters,
                ppd: run.info.ppd,
            }
        }
        Algo::MrGpmrs => {
            let run = mr_gpmrs(dataset, &skyline_cfg()).expect("valid config");
            Measurement {
                sim_runtime: run.metrics.sim_runtime(),
                host_wall: run.metrics.host_wall(),
                skyline_size: run.skyline.len(),
                phases: phase_rows(&run.metrics),
                counters: run.counters,
                ppd: run.info.ppd,
            }
        }
        Algo::MrBnl => {
            let run = mr_bnl(dataset, &BaselineConfig::default()).expect("fault-free run");
            Measurement {
                sim_runtime: run.metrics.sim_runtime(),
                host_wall: run.metrics.host_wall(),
                skyline_size: run.skyline.len(),
                phases: phase_rows(&run.metrics),
                counters: BTreeMap::new(),
                ppd: 0,
            }
        }
        Algo::MrAngle => {
            let run = mr_angle(dataset, &BaselineConfig::default()).expect("fault-free run");
            Measurement {
                sim_runtime: run.metrics.sim_runtime(),
                host_wall: run.metrics.host_wall(),
                skyline_size: run.skyline.len(),
                phases: phase_rows(&run.metrics),
                counters: BTreeMap::new(),
                ppd: 0,
            }
        }
    }
}

/// A results table: one row per x-value, one column per series, `None`
/// where the series did not finish (DNF).
#[derive(Debug)]
pub struct Table {
    /// Table title (figure name).
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Series (column) names.
    pub series: Vec<String>,
    /// Rows: x value and one optional cell per series.
    pub rows: Vec<(String, Vec<Option<f64>>)>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, x: impl Into<String>, cells: Vec<Option<f64>>) {
        assert_eq!(cells.len(), self.series.len());
        self.rows.push((x.into(), cells));
    }

    /// Renders the table for the terminal, with a sparkline per series so
    /// the figure's *shape* is visible at a glance. All series share one
    /// scale (like the paper's shared y-axis); `×` marks DNF cells.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let widths: Vec<usize> = std::iter::once(self.x_label.len().max(8))
            .chain(self.series.iter().map(|s| s.len().max(10)))
            .collect();
        out.push_str(&format!("{:>w$}", self.x_label, w = widths[0]));
        for (s, w) in self.series.iter().zip(widths.iter().skip(1)) {
            out.push_str(&format!("  {s:>w$}"));
        }
        out.push('\n');
        for (x, cells) in &self.rows {
            out.push_str(&format!("{x:>w$}", w = widths[0]));
            for (cell, w) in cells.iter().zip(widths.iter().skip(1)) {
                match cell {
                    Some(v) => out.push_str(&format!("  {v:>w$.2}")),
                    None => out.push_str(&format!("  {:>w$}", "DNF")),
                }
            }
            out.push('\n');
        }
        if self.rows.len() >= 3 {
            let all: Vec<f64> = self
                .rows
                .iter()
                .flat_map(|(_, cells)| cells.iter().flatten().copied())
                .collect();
            if let (Some(&min), Some(&max)) = (
                all.iter().min_by(|a, b| a.total_cmp(b)),
                all.iter().max_by(|a, b| a.total_cmp(b)),
            ) {
                out.push('\n');
                let name_w = self.series.iter().map(String::len).max().unwrap_or(0);
                for (si, name) in self.series.iter().enumerate() {
                    let spark: String = self
                        .rows
                        .iter()
                        .map(|(_, cells)| match cells[si] {
                            Some(v) => sparkline_char(v, min, max),
                            None => '×',
                        })
                        .collect();
                    out.push_str(&format!("{name:>name_w$}  {spark}\n"));
                }
            }
        }
        out
    }

    /// Writes the table as CSV into `dir/<file>`.
    pub fn write_csv(&self, dir: &std::path::Path, file: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file);
        let mut f = std::fs::File::create(&path)?;
        write!(f, "{}", self.x_label)?;
        for s in &self.series {
            write!(f, ",{s}")?;
        }
        writeln!(f)?;
        for (x, cells) in &self.rows {
            write!(f, "{x}")?;
            for cell in cells {
                match cell {
                    Some(v) => write!(f, ",{v}")?,
                    None => write!(f, ",")?,
                }
            }
            writeln!(f)?;
        }
        Ok(path)
    }
}

/// One block character of an 8-level sparkline, `v` scaled into
/// `[min, max]`.
fn sparkline_char(v: f64, min: f64, max: f64) -> char {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if max <= min {
        return LEVELS[0];
    }
    let t = ((v - min) / (max - min)).clamp(0.0, 1.0);
    LEVELS[((t * 7.0).round() as usize).min(7)]
}

/// Tracks which algorithms have blown the wall-clock budget in a sweep and
/// should be skipped from then on (printed as DNF) — mirroring the paper's
/// "cannot terminate in a reasonable period of time" curves.
#[derive(Debug, Default)]
pub struct DnfTracker {
    dead: std::collections::HashSet<Algo>,
}

impl DnfTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` iff the algorithm already exceeded its budget earlier in the
    /// sweep.
    pub fn is_dnf(&self, algo: Algo) -> bool {
        self.dead.contains(&algo)
    }

    /// Records a finished run; marks the algorithm DNF for the rest of the
    /// sweep if it exceeded `budget`.
    pub fn record(&mut self, algo: Algo, host_wall: Duration, budget: Duration) {
        if host_wall > budget {
            self.dead.insert(algo);
        }
    }
}

/// Accumulates per-run phase breakdowns for one figure and writes them as
/// a JSON sidecar next to the CSV, so plots of *where time goes* (map vs.
/// shuffle vs. reduce vs. bitstring overhead) can be regenerated without
/// re-running the sweep.
#[derive(Debug, Default)]
pub struct PhaseLog {
    entries: Vec<(String, Measurement)>,
}

fn push_json_duration(out: &mut String, key: &str, d: Duration) {
    out.push_str(&format!("\"{key}\":{}", d.as_micros()));
}

impl PhaseLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one finished run under a label like `"MR-GPMRS dim=4"`.
    pub fn record(&mut self, label: impl Into<String>, m: &Measurement) {
        self.entries.push((label.into(), m.clone()));
    }

    /// Renders the log as a JSON document (all durations in integer
    /// microseconds; key order fixed, so output is reproducible).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"runs\":[\n");
        for (i, (label, m)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!("{{\"label\":\"{}\",", json_escape(label)));
            push_json_duration(&mut out, "sim_runtime_us", m.sim_runtime);
            out.push(',');
            push_json_duration(&mut out, "host_wall_us", m.host_wall);
            out.push_str(&format!(
                ",\"skyline_size\":{},\"ppd\":{},\"phases\":[",
                m.skyline_size, m.ppd
            ));
            for (j, p) in m.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"job\":\"{}\",\"map_tasks\":{},\"reduce_tasks\":{},",
                    json_escape(&p.job),
                    p.map_tasks,
                    p.reduce_tasks
                ));
                for (key, d) in [
                    ("overhead_us", p.overhead),
                    ("map_us", p.map),
                    ("shuffle_us", p.shuffle),
                    ("reduce_us", p.reduce),
                    ("total_us", p.total),
                    ("wasted_us", p.wasted),
                ] {
                    push_json_duration(&mut out, key, d);
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"attempts\":{},\"retries\":{},\"speculative_wins\":{}}}",
                    p.attempts, p.retries, p.speculative_wins
                ));
            }
            out.push_str("]}");
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the log as JSON into `dir/<file>`.
    pub fn write_json(&self, dir: &std::path::Path, file: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(file);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One kernel timing row for [`render_kernel_bench_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Benchmark label, `kernel/distribution` by convention.
    pub label: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// Renders kernel micro-benchmark timings as the repo's
/// `BENCH_dominance.json` document: the bench name plus one
/// `{label, mean_ns, iters}` object per row, in run order.
pub fn render_kernel_bench_json(bench: &str, rows: &[KernelTiming]) -> String {
    let mut out = format!("{{\"bench\":\"{}\",\"results\":[", json_escape(bench));
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"label\":\"{}\",\"mean_ns\":{:.1},\"iters\":{}}}",
            json_escape(&r.label),
            r.mean_ns,
            r.iters
        ));
    }
    out.push_str("\n]}\n");
    out
}

/// Generates (and memoizes per process) a dataset.
pub fn dataset(dist: Distribution, dim: usize, card: usize, seed: u64) -> Dataset {
    generate(dist, dim, card, seed ^ ((dim as u64) << 32) ^ card as u64)
}

/// Runs one sweep cell with DNF handling; returns the simulated runtime in
/// seconds, and records the run's phase breakdown under `label` when a log
/// is supplied.
pub fn measure_cell_logged(
    algo: Algo,
    ds: &Dataset,
    reducers: usize,
    tracker: &mut DnfTracker,
    budget: Duration,
    label: &str,
    log: Option<&mut PhaseLog>,
) -> Option<f64> {
    if tracker.is_dnf(algo) {
        return None;
    }
    let m = run_algo(algo, ds, reducers);
    tracker.record(algo, m.host_wall, budget);
    if let Some(log) = log {
        log.record(label, &m);
    }
    Some(m.sim_runtime.as_secs_f64())
}

/// Runs one sweep cell with DNF handling; returns the simulated runtime in
/// seconds.
pub fn measure_cell(
    algo: Algo,
    ds: &Dataset,
    reducers: usize,
    tracker: &mut DnfTracker,
    budget: Duration,
) -> Option<f64> {
    measure_cell_logged(algo, ds, reducers, tracker, budget, "", None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper-shape"), Some(Scale::PaperShape));
        assert_eq!(Scale::parse("default"), Some(Scale::PaperShape));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Quick.cardinalities().1 < Scale::PaperShape.cardinalities().1);
        assert!(Scale::PaperShape.cardinalities().1 < Scale::Full.cardinalities().1);
    }

    #[test]
    fn table_renders_and_writes_csv() {
        let mut t = Table::new("fig", "dim", vec!["A".into(), "B".into()]);
        t.push_row("2", vec![Some(1.5), None]);
        t.push_row("3", vec![Some(2.5), Some(3.0)]);
        let text = t.render();
        assert!(text.contains("DNF"));
        assert!(text.contains("2.50"));
        let dir = std::env::temp_dir().join(format!("skymr-bench-test-{}", std::process::id()));
        let path = t.write_csv(&dir, "t.csv").unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.starts_with("dim,A,B\n"));
        assert!(contents.contains("2,1.5,\n"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn sparklines_render_for_long_tables() {
        let mut t = Table::new("fig", "dim", vec!["A".into(), "B".into()]);
        for (i, a) in [1.0, 2.0, 4.0, 8.0].iter().enumerate() {
            t.push_row(
                (i + 2).to_string(),
                vec![Some(*a), if i == 3 { None } else { Some(1.0) }],
            );
        }
        let text = t.render();
        assert!(
            text.contains('█'),
            "max cell should render as a full block:\n{text}"
        );
        assert!(
            text.contains('▁'),
            "min cell should render as the lowest block:\n{text}"
        );
        assert!(text.contains('×'), "DNF cells should render as ×:\n{text}");
    }

    #[test]
    fn sparkline_char_scales() {
        assert_eq!(sparkline_char(0.0, 0.0, 1.0), '▁');
        assert_eq!(sparkline_char(1.0, 0.0, 1.0), '█');
        assert_eq!(
            sparkline_char(5.0, 5.0, 5.0),
            '▁',
            "degenerate range is flat"
        );
    }

    #[test]
    fn dnf_tracker_latches() {
        let mut tr = DnfTracker::new();
        assert!(!tr.is_dnf(Algo::MrBnl));
        tr.record(Algo::MrBnl, Duration::from_secs(10), Duration::from_secs(1));
        assert!(tr.is_dnf(Algo::MrBnl));
        assert!(!tr.is_dnf(Algo::MrGpmrs));
    }

    #[test]
    fn run_algo_smoke_all_algorithms() {
        let ds = dataset(Distribution::Independent, 3, 300, 1);
        let mut sizes = std::collections::HashSet::new();
        for algo in Algo::all() {
            let m = run_algo(algo, &ds, 4);
            assert!(m.sim_runtime > Duration::ZERO);
            assert!(!m.phases.is_empty(), "{algo:?} reports no phase rows");
            sizes.insert(m.skyline_size);
        }
        assert_eq!(sizes.len(), 1, "algorithms disagree on skyline size");
    }

    #[test]
    fn kernel_bench_json_is_valid_and_ordered() {
        use skymr_mapreduce::telemetry::json;

        let rows = vec![
            KernelTiming {
                label: "dominates/independent".into(),
                mean_ns: 41.26,
                iters: 20,
            },
            KernelTiming {
                label: "local_skyline_bnl/anticorrelated".into(),
                mean_ns: 1.5e6,
                iters: 20,
            },
        ];
        let text = render_kernel_bench_json("dominance", &rows);
        let doc = json::parse(&text).expect("kernel bench renders valid JSON");
        assert_eq!(
            doc.get("bench").and_then(json::Value::as_str),
            Some("dominance")
        );
        let results = doc
            .get("results")
            .and_then(json::Value::as_array)
            .expect("results array");
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("label").and_then(json::Value::as_str),
            Some("dominates/independent")
        );
        assert_eq!(
            results[0].get("mean_ns").and_then(json::Value::as_f64),
            Some(41.3)
        );
        assert_eq!(
            results[1].get("iters").and_then(json::Value::as_u64),
            Some(20)
        );
        // Byte-reproducible for identical timings.
        assert_eq!(text, render_kernel_bench_json("dominance", &rows));
    }

    #[test]
    fn phase_log_json_is_valid_and_carries_the_breakdown() {
        use skymr_mapreduce::telemetry::json;

        let ds = dataset(Distribution::Independent, 3, 300, 1);
        let mut log = PhaseLog::new();
        log.record("MR-GPMRS dim=3", &run_algo(Algo::MrGpmrs, &ds, 4));
        let text = log.to_json();
        let doc = json::parse(&text).expect("phase log renders valid JSON");
        let runs = doc
            .get("runs")
            .and_then(json::Value::as_array)
            .expect("runs array");
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(
            run.get("label").and_then(json::Value::as_str),
            Some("MR-GPMRS dim=3")
        );
        assert!(run
            .get("sim_runtime_us")
            .and_then(json::Value::as_u64)
            .is_some());
        let phases = run
            .get("phases")
            .and_then(json::Value::as_array)
            .expect("phases array");
        // MR-GPMRS is a two-job pipeline: bitstring then gpmrs.
        assert!(phases.len() >= 2, "{text}");
        for p in phases {
            for key in ["job", "map_us", "shuffle_us", "reduce_us", "total_us"] {
                assert!(p.get(key).is_some(), "phase row missing {key}: {text}");
            }
        }
        // Byte-reproducible, like the engine exporters.
        assert_eq!(text, log.to_json());
    }
}
