//! Figure 10: effect of the number of reducers in MR-GPMRS.
//!
//! Paper setup: 8-dimensional data, cardinality 2×10⁶, both distributions,
//! reducers swept 1..=17 (1 reducer = MR-GPSRS). Expected shape: on
//! independent data adding reducers does not help (a small bump from the
//! multi-reducer overhead, then flat); on anti-correlated data the largest
//! improvement comes from 1 → 5 reducers, with moderate further gains —
//! even past the node count, since nodes host multiple reducers.

use skymr::{mr_gpmrs, mr_gpsrs, PpdPolicy, SkylineConfig};
use skymr_bench::{dataset, HarnessOptions, Table};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (_, card_high) = opts.scale.cardinalities();
    let dim = 8;
    let mut table = Table::new(
        format!("Figure 10 (8-d, c={card_high}, reducers swept; 1 = MR-GPSRS)"),
        "reducers",
        vec!["independent".into(), "anticorrelated".into()],
    );
    let series = [
        (Distribution::Independent, 0usize),
        (Distribution::Anticorrelated, 1usize),
    ];
    let datasets: Vec<_> = series
        .iter()
        .map(|&(dist, _)| dataset(dist, dim, card_high, opts.seed))
        .collect();
    for reducers in [1usize, 3, 5, 9, 13, 17] {
        let mut cells: Vec<Option<f64>> = vec![None, None];
        for (&(_, slot), ds) in series.iter().zip(datasets.iter()) {
            let config = SkylineConfig {
                reducers,
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let run = if reducers == 1 {
                mr_gpsrs(ds, &config).expect("valid config")
            } else {
                mr_gpmrs(ds, &config).expect("valid config")
            };
            cells[slot] = Some(run.metrics.sim_runtime().as_secs_f64());
            eprint!(".");
        }
        table.push_row(reducers.to_string(), cells);
    }
    eprintln!();
    println!("{}", table.render());
    let path = table
        .write_csv(&opts.out_dir, "fig10_reducers.csv")
        .expect("write CSV");
    println!("wrote {}", path.display());
}
