//! Figure 8: effect of dimensionality on **anti-correlated** data.
//!
//! Paper setup: anti-correlated distribution, cardinalities 1×10⁵ and
//! 2×10⁶, dimensionality 2..=10. Expected shape: MR-GPMRS best almost
//! everywhere (MR-GPSRS marginally ahead below d ≈ 5); MR-BNL and
//! MR-Angle fail to terminate at high dimensionality (DNF), and MR-GPSRS
//! itself falls behind — or DNFs — at high dimensionality and cardinality,
//! its single reducer drowning in the huge skyline.

use skymr_bench::{
    dataset, measure_cell_logged, Algo, DnfTracker, HarnessOptions, PhaseLog, Table,
};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (card_low, card_high) = opts.scale.cardinalities();
    for (label, card) in [
        ("low-cardinality", card_low),
        ("high-cardinality", card_high),
    ] {
        let mut table = Table::new(
            format!("Figure 8 ({label}, c={card}, anti-correlated)"),
            "dim",
            Algo::all().iter().map(|a| a.name().to_string()).collect(),
        );
        let mut tracker = DnfTracker::new();
        let mut phases = PhaseLog::new();
        for dim in 2..=10 {
            let ds = dataset(Distribution::Anticorrelated, dim, card, opts.seed);
            let cells = Algo::all()
                .iter()
                .map(|&algo| {
                    measure_cell_logged(
                        algo,
                        &ds,
                        13,
                        &mut tracker,
                        opts.scale.dnf_budget(),
                        &format!("{} dim={dim}", algo.name()),
                        Some(&mut phases),
                    )
                })
                .collect();
            table.push_row(dim.to_string(), cells);
            eprint!(".");
        }
        eprintln!();
        println!("{}", table.render());
        let file = format!("fig8_{label}.csv");
        let path = table.write_csv(&opts.out_dir, &file).expect("write CSV");
        let json = phases
            .write_json(&opts.out_dir, &format!("fig8_{label}_phases.json"))
            .expect("write phase JSON");
        println!("wrote {}\nwrote {}\n", path.display(), json.display());
    }
}
