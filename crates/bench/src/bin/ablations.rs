//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **Bitstring pruning on/off** — how much does Equation 2's partition
//!    pruning save in shuffle bytes and runtime (the paper's "early and
//!    much more aggressive pruning" claim vs MR-BNL's content-free codes)?
//! 2. **PPD sensitivity** — fixed PPD sweep against the Section 3.3
//!    auto-selection heuristic.
//! 3. **Group-merge policy** — computation-cost vs communication-cost
//!    merging (Section 5.4.1; the paper picked computation-cost after
//!    preliminary tests).
//! 4. **Local-skyline kernel** — BNL (the paper's choice) vs SFS vs
//!    divide-and-conquer in the mappers (the paper's future-work
//!    question about optimizing local skyline computation).

use skymr::{mr_gpmrs, mr_gpsrs, LocalAlgo, MergePolicy, PpdPolicy, SkylineConfig};
use skymr_bench::{dataset, HarnessOptions, Table};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (card_low, _) = opts.scale.cardinalities();
    let card = card_low * 2;

    // ---- Ablation 1: bitstring pruning --------------------------------
    // Shuffle traffic only separates the variants when dominating tuples
    // are *not* replicated onto every mapper (mapper-side ComparePartitions
    // already drops dominated-partition tuples when their dominators are
    // co-located), so the honest scale-free metric is the mappers' tuple
    // comparison count: pruned partitions never enter the BNL windows.
    let mut t1 = Table::new(
        format!("Ablation 1: bitstring pruning (MR-GPSRS, c={card}, independent)"),
        "dim",
        vec![
            "pruned-runtime".into(),
            "unpruned-runtime".into(),
            "pruned-map-tuple-cmps".into(),
            "unpruned-map-tuple-cmps".into(),
        ],
    );
    for dim in [2usize, 4, 6, 8] {
        let ds = dataset(Distribution::Independent, dim, card, opts.seed);
        let mut row = Vec::new();
        let mut cmps = Vec::new();
        for prune in [true, false] {
            let config = SkylineConfig {
                prune_bitstring: prune,
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let run = mr_gpsrs(&ds, &config).expect("valid config");
            row.push(Some(run.metrics.sim_runtime().as_secs_f64()));
            cmps.push(Some(
                run.counters
                    .get("gpsrs.map.tuple_cmps")
                    .copied()
                    .unwrap_or(0) as f64,
            ));
        }
        row.extend(cmps);
        t1.push_row(dim.to_string(), row);
        eprint!(".");
    }
    eprintln!();
    println!("{}", t1.render());
    t1.write_csv(&opts.out_dir, "ablation_pruning.csv")
        .expect("write CSV");

    // ---- Ablation 2: PPD sensitivity ----------------------------------
    let dim = 4;
    let ds = dataset(Distribution::Anticorrelated, dim, card, opts.seed);
    let mut t2 = Table::new(
        format!("Ablation 2: PPD sensitivity (MR-GPMRS, {dim}-d, c={card}, anti-correlated)"),
        "ppd",
        vec!["runtime".into(), "surviving-partitions".into()],
    );
    for ppd in [1usize, 2, 3, 4, 6, 8, 12] {
        let config = SkylineConfig::default().with_ppd(ppd);
        let run = mr_gpmrs(&ds, &config).expect("valid config");
        t2.push_row(
            ppd.to_string(),
            vec![
                Some(run.metrics.sim_runtime().as_secs_f64()),
                Some(run.info.surviving_partitions as f64),
            ],
        );
        eprint!(".");
    }
    let auto = mr_gpmrs(
        &ds,
        &SkylineConfig {
            ppd: PpdPolicy::auto(),
            ..SkylineConfig::default()
        },
    )
    .expect("valid config");
    t2.push_row(
        format!("auto({})", auto.info.ppd),
        vec![
            Some(auto.metrics.sim_runtime().as_secs_f64()),
            Some(auto.info.surviving_partitions as f64),
        ],
    );
    eprintln!();
    println!("{}", t2.render());
    t2.write_csv(&opts.out_dir, "ablation_ppd.csv")
        .expect("write CSV");

    // ---- Ablation 3: merge policy --------------------------------------
    let ds = dataset(Distribution::Anticorrelated, 6, card, opts.seed);
    let mut t3 = Table::new(
        format!("Ablation 3: group-merge policy (MR-GPMRS, 6-d, c={card}, anti-correlated)"),
        "reducers",
        vec![
            "computation-runtime".into(),
            "communication-runtime".into(),
            "computation-shuffle-KB".into(),
            "communication-shuffle-KB".into(),
        ],
    );
    for reducers in [2usize, 4, 8, 13] {
        let mut runtimes = Vec::new();
        let mut shuffles = Vec::new();
        for policy in [MergePolicy::ComputationCost, MergePolicy::CommunicationCost] {
            let config = SkylineConfig {
                reducers,
                merge_policy: policy,
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let run = mr_gpmrs(&ds, &config).expect("valid config");
            runtimes.push(Some(run.metrics.sim_runtime().as_secs_f64()));
            shuffles.push(Some(run.metrics.jobs[1].shuffle_bytes as f64 / 1024.0));
        }
        runtimes.extend(shuffles);
        t3.push_row(reducers.to_string(), runtimes);
        eprint!(".");
    }
    eprintln!();
    println!("{}", t3.render());
    t3.write_csv(&opts.out_dir, "ablation_merge_policy.csv")
        .expect("write CSV");

    // ---- Ablation 4: local-skyline kernel -------------------------------
    let mut t4 = Table::new(
        format!("Ablation 4: local-skyline kernel (MR-GPSRS, c={card}, anti-correlated)"),
        "dim",
        vec![
            "bnl-runtime".into(),
            "sfs-runtime".into(),
            "dnc-runtime".into(),
            "bnl-map-cmps".into(),
            "sfs-map-cmps".into(),
            "dnc-map-cmps".into(),
        ],
    );
    for dim in [3usize, 5, 7] {
        let ds = dataset(Distribution::Anticorrelated, dim, card, opts.seed);
        let mut runtimes = Vec::new();
        let mut cmps = Vec::new();
        for algo in [LocalAlgo::Bnl, LocalAlgo::Sfs, LocalAlgo::Dnc] {
            let config = SkylineConfig {
                local_algo: algo,
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let run = mr_gpsrs(&ds, &config).expect("valid config");
            runtimes.push(Some(run.metrics.sim_runtime().as_secs_f64()));
            cmps.push(Some(
                run.counters
                    .get("gpsrs.map.tuple_cmps")
                    .copied()
                    .unwrap_or(0) as f64,
            ));
        }
        runtimes.extend(cmps);
        t4.push_row(dim.to_string(), runtimes);
        eprint!(".");
    }
    eprintln!();
    println!("{}", t4.render());
    t4.write_csv(&opts.out_dir, "ablation_local_kernel.csv")
        .expect("write CSV");
}
