//! Figure 7: effect of dimensionality on **independent** data.
//!
//! Paper setup: independent distribution, cardinalities 1×10⁵ and 2×10⁶,
//! dimensionality 2..=10, runtime of MR-GPSRS / MR-GPMRS / MR-BNL /
//! MR-Angle. Expected shape: MR-GPSRS best overall; MR-GPMRS slightly
//! behind at low dimensionality (multi-reducer overhead with tiny
//! skylines) and converging to MR-GPSRS at high dimensionality, while
//! MR-BNL and MR-Angle deteriorate steeply from d ≈ 7.

use skymr_bench::{
    dataset, measure_cell_logged, Algo, DnfTracker, HarnessOptions, PhaseLog, Table,
};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (card_low, card_high) = opts.scale.cardinalities();
    for (label, card) in [
        ("low-cardinality", card_low),
        ("high-cardinality", card_high),
    ] {
        let mut table = Table::new(
            format!("Figure 7 ({label}, c={card}, independent)"),
            "dim",
            Algo::all().iter().map(|a| a.name().to_string()).collect(),
        );
        let mut tracker = DnfTracker::new();
        let mut phases = PhaseLog::new();
        for dim in 2..=10 {
            let ds = dataset(Distribution::Independent, dim, card, opts.seed);
            let cells = Algo::all()
                .iter()
                .map(|&algo| {
                    measure_cell_logged(
                        algo,
                        &ds,
                        13,
                        &mut tracker,
                        opts.scale.dnf_budget(),
                        &format!("{} dim={dim}", algo.name()),
                        Some(&mut phases),
                    )
                })
                .collect();
            table.push_row(dim.to_string(), cells);
            eprint!(".");
        }
        eprintln!();
        println!("{}", table.render());
        let file = format!("fig7_{label}.csv");
        let path = table.write_csv(&opts.out_dir, &file).expect("write CSV");
        let json = phases
            .write_json(&opts.out_dir, &format!("fig7_{label}_phases.json"))
            .expect("write phase JSON");
        println!("wrote {}\nwrote {}\n", path.display(), json.display());
    }
}
