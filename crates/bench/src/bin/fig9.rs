//! Figure 9: effect of cardinality.
//!
//! Paper setup: 3-dimensional and 8-dimensional data of both
//! distributions, cardinality swept 1×10⁵ … 3×10⁶. Expected shape:
//! (a) 3-d independent — MR-GPMRS slowest (overhead, tiny skyline),
//! MR-GPSRS best; (b) 8-d independent — MR-GPSRS and MR-GPMRS together in
//! front; (c) 3-d anti-correlated — grid algorithms ahead, MR-GPSRS
//! marginally better; (d) 8-d anti-correlated — MR-GPMRS clearly best,
//! MR-GPSRS degrading (DNF at the largest cardinalities in the paper).

use skymr_bench::{
    dataset, measure_cell_logged, Algo, DnfTracker, HarnessOptions, PhaseLog, Table,
};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let sweep = opts.scale.cardinality_sweep();
    for (dist, dist_label) in [
        (Distribution::Independent, "independent"),
        (Distribution::Anticorrelated, "anticorrelated"),
    ] {
        for dim in [3usize, 8] {
            let mut table = Table::new(
                format!("Figure 9 ({dim}-d {dist_label})"),
                "cardinality",
                Algo::all().iter().map(|a| a.name().to_string()).collect(),
            );
            let mut tracker = DnfTracker::new();
            let mut phases = PhaseLog::new();
            for &card in &sweep {
                let ds = dataset(dist, dim, card, opts.seed);
                let cells = Algo::all()
                    .iter()
                    .map(|&algo| {
                        measure_cell_logged(
                            algo,
                            &ds,
                            13,
                            &mut tracker,
                            opts.scale.dnf_budget(),
                            &format!("{} card={card}", algo.name()),
                            Some(&mut phases),
                        )
                    })
                    .collect();
                table.push_row(card.to_string(), cells);
                eprint!(".");
            }
            eprintln!();
            println!("{}", table.render());
            let file = format!("fig9_{dim}d_{dist_label}.csv");
            let path = table.write_csv(&opts.out_dir, &file).expect("write CSV");
            let json = phases
                .write_json(
                    &opts.out_dir,
                    &format!("fig9_{dim}d_{dist_label}_phases.json"),
                )
                .expect("write phase JSON");
            println!("wrote {}\nwrote {}\n", path.display(), json.display());
        }
    }
}
