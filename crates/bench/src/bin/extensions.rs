//! Beyond-the-paper comparison: the paper's algorithms against SKY-MR
//! (Park et al., the sample-based related-work competitor) and the hybrid
//! planner the paper's conclusion calls for.
//!
//! Two sweeps mirror Figures 7/8 (dimensionality at high cardinality, both
//! distributions); series are MR-GPSRS, MR-GPMRS, hybrid, SKY-MR. Expected
//! outcome: the hybrid tracks whichever grid algorithm wins each cell, and
//! SKY-MR sits close to MR-GPMRS (both are multi-reducer with up-front
//! region pruning; they differ in who pays for the pruning structure — a
//! serial sampling pass versus a parallel bitstring job).

use skymr::{mr_gpmrs, mr_gpsrs, mr_hybrid, PpdPolicy, SkylineConfig};
use skymr_baselines::{sky_mr, SkyMrConfig};
use skymr_bench::{dataset, HarnessOptions, Table};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (_, card_high) = opts.scale.cardinalities();
    for (dist, label) in [
        (Distribution::Independent, "independent"),
        (Distribution::Anticorrelated, "anticorrelated"),
    ] {
        let mut table = Table::new(
            format!("Extensions ({label}, c={card_high})"),
            "dim",
            vec![
                "MR-GPSRS".into(),
                "MR-GPMRS".into(),
                "hybrid".into(),
                "SKY-MR".into(),
            ],
        );
        for dim in [2usize, 4, 6, 8, 10] {
            let ds = dataset(dist, dim, card_high, opts.seed);
            let config = SkylineConfig {
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let gpsrs = mr_gpsrs(&ds, &config).expect("valid config");
            let gpmrs = mr_gpmrs(&ds, &config).expect("valid config");
            let hybrid = mr_hybrid(&ds, &config).expect("valid config");
            let skymr_run = sky_mr(&ds, &SkyMrConfig::default()).expect("fault-free run");
            assert_eq!(gpsrs.skyline_ids(), gpmrs.skyline_ids());
            assert_eq!(gpsrs.skyline_ids(), hybrid.skyline_ids());
            assert_eq!(gpsrs.skyline_ids(), skymr_run.skyline_ids());
            table.push_row(
                dim.to_string(),
                vec![
                    Some(gpsrs.metrics.sim_runtime().as_secs_f64()),
                    Some(gpmrs.metrics.sim_runtime().as_secs_f64()),
                    Some(hybrid.metrics.sim_runtime().as_secs_f64()),
                    Some(skymr_run.metrics.sim_runtime().as_secs_f64()),
                ],
            );
            eprint!(".");
        }
        eprintln!();
        println!("{}", table.render());
        table
            .write_csv(&opts.out_dir, &format!("extensions_{label}.csv"))
            .expect("write CSV");
    }
}
