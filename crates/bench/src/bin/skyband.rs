//! Extension benchmark: k-skyband scaling.
//!
//! Sweeps the band depth `k` on anti-correlated data and reports band
//! size, countstring pruning power, and the simulated runtimes of the
//! single-reducer and multi-reducer pipelines — showing (a) how pruning
//! weakens as `k` grows (a partition needs `k` dominating *tuples* to be
//! cut) and (b) that the multi-reducer topology keeps paying off as the
//! band, like a large skyline, outgrows one reducer.

use skymr::{mr_skyband, mr_skyband_multi, SkylineConfig};
use skymr_bench::{dataset, HarnessOptions, Table};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (card_low, _) = opts.scale.cardinalities();
    let card = card_low * 2;
    let dim = 5;
    let ds = dataset(Distribution::Anticorrelated, dim, card, opts.seed);
    let mut table = Table::new(
        format!("k-skyband ({dim}-d, c={card}, anti-correlated)"),
        "k",
        vec![
            "band-size".into(),
            "active-partitions".into(),
            "single-reducer-s".into(),
            "multi-reducer-s".into(),
        ],
    );
    for k in [1u32, 2, 4, 8, 16] {
        let config = SkylineConfig::default();
        let single = mr_skyband(&ds, k, &config).expect("valid config");
        let multi = mr_skyband_multi(&ds, k, &config).expect("valid config");
        assert_eq!(
            single.skyline_ids(),
            multi.skyline_ids(),
            "topologies disagree at k={k}"
        );
        table.push_row(
            k.to_string(),
            vec![
                Some(single.skyline.len() as f64),
                Some(single.info.surviving_partitions as f64),
                Some(single.metrics.sim_runtime().as_secs_f64()),
                Some(multi.metrics.sim_runtime().as_secs_f64()),
            ],
        );
        eprint!(".");
    }
    eprintln!();
    println!("{}", table.render());
    let path = table
        .write_csv(&opts.out_dir, "extension_skyband.csv")
        .expect("write CSV");
    println!("wrote {}", path.display());
}
