//! Figure 11: validation of the Section 6 cost estimates.
//!
//! Paper setup: cardinality 1×10⁶, dimensionality swept, MR-GPMRS
//! executed while recording the real number of partition-wise dominance
//! comparisons of the busiest mapper and the busiest reducer, compared
//! against the model's `κ_mapper(n, d)` and `κ_reducer(n, d)`. Expected
//! shape: estimates track the measured mapper counts closely on
//! independent data and upper-bound them everywhere (the model assumes a
//! worst case); reducer estimates are looser but still upper bounds.

use skymr::cost::{kappa_mapper, kappa_reducer};
use skymr::{mr_gpmrs, PpdPolicy, SkylineConfig};
use skymr_bench::{dataset, HarnessOptions, Table};
use skymr_datagen::Distribution;

fn main() {
    let opts = HarnessOptions::from_args();
    let (_, card_high) = opts.scale.cardinalities();
    for (dist, label) in [
        (Distribution::Independent, "independent"),
        (Distribution::Anticorrelated, "anticorrelated"),
    ] {
        let mut mapper_table = Table::new(
            format!("Figure 11a (mapper comparisons, c={card_high}, {label})"),
            "dim",
            vec!["measured-max".into(), "estimate".into(), "ppd".into()],
        );
        let mut reducer_table = Table::new(
            format!("Figure 11b (reducer comparisons, c={card_high}, {label})"),
            "dim",
            vec!["measured-max".into(), "estimate".into(), "ppd".into()],
        );
        for dim in 2..=10usize {
            let ds = dataset(dist, dim, card_high, opts.seed);
            let config = SkylineConfig {
                ppd: PpdPolicy::auto(),
                ..SkylineConfig::default()
            };
            let run = mr_gpmrs(&ds, &config).expect("valid config");
            let n = run.info.ppd as u64;
            let d = dim as u32;
            let map_measured = run
                .counters
                .get("gpmrs.map.partition_cmps.max")
                .copied()
                .unwrap_or(0);
            let red_measured = run
                .counters
                .get("gpmrs.reduce.partition_cmps.max")
                .copied()
                .unwrap_or(0);
            mapper_table.push_row(
                dim.to_string(),
                vec![
                    Some(map_measured as f64),
                    Some(kappa_mapper(n, d) as f64),
                    Some(n as f64),
                ],
            );
            reducer_table.push_row(
                dim.to_string(),
                vec![
                    Some(red_measured as f64),
                    Some(kappa_reducer(n, d) as f64),
                    Some(n as f64),
                ],
            );
            eprint!(".");
        }
        eprintln!();
        println!("{}", mapper_table.render());
        println!("{}", reducer_table.render());
        mapper_table
            .write_csv(&opts.out_dir, &format!("fig11_mapper_{label}.csv"))
            .expect("write CSV");
        reducer_table
            .write_csv(&opts.out_dir, &format!("fig11_reducer_{label}.csv"))
            .expect("write CSV");
    }
    println!("wrote fig11_*.csv to {}", opts.out_dir.display());
}
