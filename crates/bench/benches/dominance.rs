//! Dominance-kernel micro-benchmark with a machine-readable baseline.
//!
//! Times the two `skymr_common::dominance` primitives and the BNL
//! local-skyline kernel — the paper's §6 cost-model bottleneck — on
//! correlated, independent, and anti-correlated data, then writes the
//! per-distribution means to `BENCH_dominance.json` at the repo root. CI
//! smoke-runs this bench and checks the document parses, so the perf arc
//! started by `cargo xtask perf` has a committed timing baseline to
//! compare against.

use criterion::{black_box, BenchmarkId, Criterion};
use skymr::local::{local_skyline, CmpStats, LocalAlgo};
use skymr_bench::{render_kernel_bench_json, KernelTiming};
use skymr_common::dominance::{compare, dominates};
use skymr_datagen::{generate, Distribution};

/// Dataset size for the BNL kernel runs: large enough that window
/// scanning dominates, small enough for a CI smoke run.
const KERNEL_TUPLES: usize = 2_000;
const DIM: usize = 4;
const SEED: u64 = 41;

const DISTRIBUTIONS: [(Distribution, &str); 3] = [
    (Distribution::Correlated, "correlated"),
    (Distribution::Independent, "independent"),
    (Distribution::Anticorrelated, "anticorrelated"),
];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    for (dist, label) in DISTRIBUTIONS {
        let ds = generate(dist, DIM, KERNEL_TUPLES, SEED);
        let a = &ds.tuples()[0];
        let b = &ds.tuples()[1];
        group.bench_with_input(BenchmarkId::new("dominates", label), &dist, |bench, _| {
            bench.iter(|| dominates(black_box(a), black_box(b)));
        });
        group.bench_with_input(BenchmarkId::new("compare", label), &dist, |bench, _| {
            bench.iter(|| compare(black_box(a), black_box(b)));
        });
        group.bench_with_input(
            BenchmarkId::new("local_skyline_bnl", label),
            &dist,
            |bench, _| {
                bench.iter(|| {
                    let mut stats = CmpStats::default();
                    black_box(local_skyline(
                        ds.tuples().to_vec(),
                        LocalAlgo::Bnl,
                        &mut stats,
                    ))
                });
            },
        );
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);

    let rows: Vec<KernelTiming> = criterion::take_measurements()
        .into_iter()
        .map(|m| KernelTiming {
            label: m.label,
            mean_ns: m.mean_ns,
            iters: m.iters,
        })
        .collect();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dominance.json");
    std::fs::write(path, render_kernel_bench_json("dominance", &rows))
        .expect("write BENCH_dominance.json at the repo root");
    println!("wrote {path} ({} results)", rows.len());
}
