//! Dominance-kernel micro-benchmark with a machine-readable baseline.
//!
//! Times the two `skymr_common::dominance` primitives, the BNL
//! local-skyline kernel — the paper's §6 cost-model bottleneck — and the
//! grid/bitstring assignment kernels (§4's per-tuple partition mapping
//! and the `BitGrid` merge the MR-GPMRS reducers hammer) on correlated,
//! independent, and anti-correlated data, then writes the
//! per-distribution means to `BENCH_dominance.json` at the repo root
//! (override the destination with `SKYMR_BENCH_OUT`, which
//! `cargo xtask bench-gate` uses for its sample runs). CI smoke-runs
//! this bench and checks the document parses, and `bench-gate` compares
//! fresh medians against the committed baseline.

use criterion::{black_box, BenchmarkId, Criterion};
use skymr::grid::Grid;
use skymr::local::{local_skyline, CmpStats, LocalAlgo};
use skymr_bench::{render_kernel_bench_json, KernelTiming};
use skymr_common::bitgrid::BitGrid;
use skymr_common::dominance::{compare, dominates};
use skymr_datagen::{generate, Distribution};

/// Dataset size for the BNL kernel runs: large enough that window
/// scanning dominates, small enough for a CI smoke run.
const KERNEL_TUPLES: usize = 2_000;
const DIM: usize = 4;
const SEED: u64 = 41;

/// Partitions per dimension for the grid-assignment kernels — the
/// midpoint of the paper's recommended 2‥6 range, giving `4⁴ = 256`
/// partitions at `DIM = 4`.
const PPD: usize = 4;

const DISTRIBUTIONS: [(Distribution, &str); 3] = [
    (Distribution::Correlated, "correlated"),
    (Distribution::Independent, "independent"),
    (Distribution::Anticorrelated, "anticorrelated"),
];

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    for (dist, label) in DISTRIBUTIONS {
        let ds = generate(dist, DIM, KERNEL_TUPLES, SEED);
        let a = &ds.tuples()[0];
        let b = &ds.tuples()[1];
        group.bench_with_input(BenchmarkId::new("dominates", label), &dist, |bench, _| {
            bench.iter(|| dominates(black_box(a), black_box(b)));
        });
        group.bench_with_input(BenchmarkId::new("compare", label), &dist, |bench, _| {
            bench.iter(|| compare(black_box(a), black_box(b)));
        });
        group.bench_with_input(
            BenchmarkId::new("local_skyline_bnl", label),
            &dist,
            |bench, _| {
                bench.iter(|| {
                    let mut stats = CmpStats::default();
                    black_box(local_skyline(
                        ds.tuples().to_vec(),
                        LocalAlgo::Bnl,
                        &mut stats,
                    ))
                });
            },
        );
        // The MR-GPMRS map side: every tuple maps to its grid partition
        // (the paper's §4 bitstring-generation inner loop).
        let grid = Grid::new(DIM, PPD).expect("valid grid");
        group.bench_with_input(BenchmarkId::new("grid_assign", label), &dist, |bench, _| {
            bench.iter(|| {
                let mut acc = 0usize;
                for t in ds.tuples() {
                    acc ^= grid.partition_of(black_box(t));
                }
                acc
            });
        });
        // The reduce side of the same loop: fold the per-tuple partition
        // hits into a `BitGrid` bitstring.
        group.bench_with_input(
            BenchmarkId::new("bitgrid_assign", label),
            &dist,
            |bench, _| {
                bench.iter(|| {
                    let mut bits = BitGrid::zeros(grid.num_partitions());
                    for t in ds.tuples() {
                        bits.set(grid.partition_of(black_box(t)));
                    }
                    bits.count_ones()
                });
            },
        );
    }
    // The bitstring merge the MR-GPMRS reducers hammer: OR-fold of
    // per-mapper bitstrings. Data-independent, so a single series.
    let words = Grid::new(DIM, PPD).expect("valid grid").num_partitions();
    let mut lhs = BitGrid::zeros(words);
    let mut rhs = BitGrid::zeros(words);
    for i in (0..words).step_by(3) {
        lhs.set(i);
    }
    for i in (0..words).step_by(5) {
        rhs.set(i);
    }
    group.bench_function("bitgrid_or_assign/merge", |bench| {
        bench.iter(|| {
            let mut acc = black_box(&lhs).clone();
            acc.or_assign(black_box(&rhs));
            acc.count_ones()
        });
    });
    // The shuffle-frame integrity path every partition fetch now runs:
    // the CRC32C inner loop, framing a partition-sized payload, and the
    // verify-on-decode. Payload size mirrors one reducer's bucket for a
    // KERNEL_TUPLES split (id + DIM values per tuple).
    let payload: Vec<u8> = (0..KERNEL_TUPLES * (8 + DIM * 8))
        .map(|i| (i * 31 % 251) as u8)
        .collect();
    group.bench_function("crc32c/partition", |bench| {
        bench.iter(|| skymr_common::crc32c(black_box(&payload)));
    });
    group.bench_function("frame_encode/partition", |bench| {
        bench.iter(|| {
            let mut out = Vec::new();
            skymr_common::frame_encode(black_box(&payload), &mut out);
            out.len()
        });
    });
    let mut framed = Vec::new();
    skymr_common::frame_encode(&payload, &mut framed);
    group.bench_function("frame_decode/partition", |bench| {
        bench.iter(|| {
            let (body, rest) =
                skymr_common::frame_decode(black_box(&framed)).expect("frame verifies");
            body.len() + rest.len()
        });
    });
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default();
    bench_kernels(&mut criterion);

    let rows: Vec<KernelTiming> = criterion::take_measurements()
        .into_iter()
        .map(|m| KernelTiming {
            label: m.label,
            mean_ns: m.mean_ns,
            iters: m.iters,
        })
        .collect();
    // `cargo xtask bench-gate` points each sample run at a scratch file;
    // a plain `cargo bench` refreshes the committed baseline in place.
    let path = std::env::var("SKYMR_BENCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dominance.json").to_owned()
    });
    std::fs::write(&path, render_kernel_bench_json("dominance", &rows))
        .expect("write the kernel bench export");
    println!("wrote {path} ({} results)", rows.len());
}
