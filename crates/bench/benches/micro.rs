//! Criterion micro-benchmarks for the hot kernels: tuple dominance, BNL
//! window insertion, bitstring generation and pruning, independent-group
//! generation, and the end-to-end pipelines at small scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use skymr::bitstring::Bitstring;
use skymr::groups::{generate_independent_groups, plan_groups, MergePolicy};
use skymr::local::{insert_tuple, local_skyline, CmpStats, LocalAlgo};
use skymr::skyband::band_insert;
use skymr::{mr_gpmrs, mr_gpsrs, Countstring, Grid, SkylineConfig};
use skymr_baselines::{
    bnl_skyline, dnc_skyline, mr_bnl, sfs_skyline, BaselineConfig, SfsOrder, SkyQuadtree,
};
use skymr_common::dominance::{compare, dominates};
use skymr_datagen::{generate, Distribution};

fn bench_dominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    for dim in [2usize, 8, 16] {
        let ds = generate(Distribution::Independent, dim, 2, 7);
        let a = &ds.tuples()[0];
        let b = &ds.tuples()[1];
        group.bench_with_input(BenchmarkId::new("dominates", dim), &dim, |bench, _| {
            bench.iter(|| dominates(black_box(a), black_box(b)));
        });
        group.bench_with_input(BenchmarkId::new("compare", dim), &dim, |bench, _| {
            bench.iter(|| compare(black_box(a), black_box(b)));
        });
    }
    group.finish();
}

fn bench_bnl_window(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnl_insert");
    for (dist, label) in [
        (Distribution::Independent, "independent"),
        (Distribution::Anticorrelated, "anticorrelated"),
    ] {
        let ds = generate(dist, 5, 2_000, 11);
        group.bench_function(BenchmarkId::new("window_2000", label), |bench| {
            bench.iter(|| {
                let mut window = Vec::new();
                let mut stats = CmpStats::default();
                for t in ds.tuples() {
                    insert_tuple(&mut window, t.clone(), &mut stats);
                }
                black_box(window.len())
            });
        });
    }
    group.finish();
}

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized");
    let ds = generate(Distribution::Anticorrelated, 4, 2_000, 13);
    group.bench_function("bnl_2000x4d", |b| {
        b.iter(|| black_box(bnl_skyline(ds.tuples())));
    });
    group.bench_function("sfs_2000x4d", |b| {
        b.iter(|| black_box(sfs_skyline(ds.tuples(), SfsOrder::Entropy)));
    });
    group.bench_function("dnc_2000x4d", |b| {
        b.iter(|| black_box(dnc_skyline(ds.tuples())));
    });
    group.finish();
}

fn bench_local_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("local_kernels");
    let ds = generate(Distribution::Anticorrelated, 4, 3_000, 29);
    for algo in [LocalAlgo::Bnl, LocalAlgo::Sfs, LocalAlgo::Dnc] {
        group.bench_function(format!("{algo:?}_3000x4d"), |b| {
            b.iter(|| {
                let mut stats = CmpStats::default();
                black_box(local_skyline(ds.tuples().to_vec(), algo, &mut stats))
            });
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut group = c.benchmark_group("extensions");
    let ds = generate(Distribution::Anticorrelated, 4, 3_000, 31);
    group.bench_function("band_insert_k4_3000", |b| {
        b.iter(|| {
            let mut window = Vec::new();
            for t in ds.tuples() {
                band_insert(&mut window, t.clone(), 4);
            }
            black_box(window.len())
        });
    });
    let grid = Grid::new(4, 6).unwrap();
    group.bench_function("countstring_build_prune", |b| {
        b.iter(|| {
            let mut cs = Countstring::from_tuples(grid, ds.tuples());
            cs.prune_dominated(4);
            black_box(cs.active_count())
        });
    });
    group.bench_function("sky_quadtree_build_500", |b| {
        b.iter(|| black_box(SkyQuadtree::build(4, &ds.tuples()[..500], 16)));
    });
    group.finish();
}

fn bench_bitstring(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitstring");
    let ds = generate(Distribution::Independent, 4, 20_000, 17);
    let grid = Grid::new(4, 8).unwrap();
    group.bench_function("generate_20k_8ppd_4d", |b| {
        b.iter(|| black_box(Bitstring::from_tuples(grid, ds.tuples())));
    });
    let bs = Bitstring::from_tuples(grid, ds.tuples());
    group.bench_function("prune_prefix_or", |b| {
        b.iter_batched(
            || bs.clone(),
            |mut bs| {
                bs.prune_dominated();
                black_box(bs)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.bench_function("prune_naive", |b| {
        b.iter_batched(
            || bs.clone(),
            |mut bs| {
                bs.prune_dominated_naive();
                black_box(bs)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("groups");
    let ds = generate(Distribution::Anticorrelated, 4, 20_000, 19);
    let grid = Grid::new(4, 6).unwrap();
    let mut bs = Bitstring::from_tuples(grid, ds.tuples());
    bs.prune_dominated();
    group.bench_function("generate_independent_groups", |b| {
        b.iter(|| black_box(generate_independent_groups(&bs)));
    });
    group.bench_function("plan_groups_13r", |b| {
        b.iter(|| black_box(plan_groups(&bs, 13, MergePolicy::ComputationCost)));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let ds = generate(Distribution::Anticorrelated, 4, 3_000, 23);
    let config = SkylineConfig::test();
    group.bench_function("mr_gpsrs_3k", |b| {
        b.iter(|| black_box(mr_gpsrs(&ds, &config).unwrap()));
    });
    group.bench_function("mr_gpmrs_3k", |b| {
        b.iter(|| black_box(mr_gpmrs(&ds, &config).unwrap()));
    });
    let bconfig = BaselineConfig::test();
    group.bench_function("mr_bnl_3k", |b| b.iter(|| black_box(mr_bnl(&ds, &bconfig))));
    group.finish();
}

criterion_group!(
    benches,
    bench_dominance,
    bench_bnl_window,
    bench_centralized,
    bench_local_kernels,
    bench_bitstring,
    bench_groups,
    bench_extensions,
    bench_end_to_end
);
criterion_main!(benches);
