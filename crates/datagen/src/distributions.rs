//! The four synthetic distributions and their sampling routines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skymr_common::{Dataset, Tuple};

/// Upper bound used to keep generated values strictly below 1.0 after
/// clamping (the data space is half-open, `[0,1)`).
const MAX_VALUE: f64 = 1.0 - 1e-9;

/// A synthetic data distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Each dimension i.i.d. uniform on `[0,1)`.
    Independent,
    /// Dimensions positively correlated around a common base value.
    Correlated,
    /// Dimensions anti-correlated around the hyperplane `Σ x_k = d/2`
    /// (Börzsönyi et al.'s construction).
    Anticorrelated,
    /// Gaussian blobs around `clusters` random centers.
    Clustered {
        /// Number of blob centers.
        clusters: usize,
    },
}

impl Distribution {
    /// A short machine-friendly name (used in CSV outputs and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Distribution::Independent => "independent",
            Distribution::Correlated => "correlated",
            Distribution::Anticorrelated => "anticorrelated",
            Distribution::Clustered { .. } => "clustered",
        }
    }
}

/// Generates a dataset of `cardinality` tuples of dimensionality `dim`.
///
/// Deterministic: the same `(dist, dim, cardinality, seed)` always yields
/// the same dataset, so experiments are reproducible and algorithms can be
/// compared on identical inputs.
///
/// ```
/// use skymr_datagen::{generate, Distribution};
///
/// let data = generate(Distribution::Anticorrelated, 4, 1_000, 7);
/// assert_eq!(data.len(), 1_000);
/// assert_eq!(data.dim(), 4);
/// assert_eq!(data, generate(Distribution::Anticorrelated, 4, 1_000, 7));
/// ```
///
/// # Panics
///
/// Panics if `dim == 0` or (for [`Distribution::Clustered`]) if
/// `clusters == 0`.
pub fn generate(dist: Distribution, dim: usize, cardinality: usize, seed: u64) -> Dataset {
    let mut s = stream(dist, dim, cardinality, seed);
    let mut tuples = Vec::with_capacity(cardinality);
    tuples.extend(&mut s);
    Dataset::new_unchecked(dim, tuples)
}

/// Streaming variant of [`generate`]: yields the *same tuples in the same
/// order* as `generate(dist, dim, cardinality, seed)` without ever
/// materializing the full dataset — the producer for out-of-core runs
/// whose input would not fit the memory budget. Draws from the RNG in
/// exactly `generate`'s order (cluster centers up front, then one tuple
/// per `next`), so the two stay bit-identical by construction.
///
/// ```
/// use skymr_datagen::{generate, stream, Distribution};
///
/// let eager = generate(Distribution::Clustered { clusters: 3 }, 4, 100, 7);
/// let lazy: Vec<_> = stream(Distribution::Clustered { clusters: 3 }, 4, 100, 7).collect();
/// assert_eq!(eager.tuples(), &lazy[..]);
/// ```
///
/// # Panics
///
/// Panics if `dim == 0` or (for [`Distribution::Clustered`]) if
/// `clusters == 0`.
pub fn stream(dist: Distribution, dim: usize, cardinality: usize, seed: u64) -> TupleStream {
    assert!(dim >= 1, "dimensionality must be at least 1");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5f3759df);
    let centers = match dist {
        Distribution::Clustered { clusters } => {
            assert!(
                clusters >= 1,
                "clustered distribution needs at least one cluster"
            );
            (0..clusters)
                .map(|_| {
                    (0..dim)
                        .map(|_| rng.gen_range(0.1..0.9))
                        .collect::<Vec<f64>>()
                })
                .collect()
        }
        _ => Vec::new(),
    };
    TupleStream {
        rng,
        dist,
        dim,
        centers,
        next_id: 0,
        remaining: cardinality,
    }
}

/// Lazy tuple source created by [`stream`]. See there for the equivalence
/// guarantee with [`generate`].
#[derive(Debug)]
pub struct TupleStream {
    rng: StdRng,
    dist: Distribution,
    dim: usize,
    centers: Vec<Vec<f64>>,
    next_id: u64,
    remaining: usize,
}

impl TupleStream {
    /// Groups the stream into `chunk`-sized batches (the last may be
    /// shorter) — the unit a bounded-memory driver feeds to its splits.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(self, chunk: usize) -> impl Iterator<Item = Vec<Tuple>> {
        assert!(chunk >= 1, "chunk size must be at least 1");
        let mut inner = self;
        std::iter::from_fn(move || {
            let batch: Vec<Tuple> = inner.by_ref().take(chunk).collect();
            (!batch.is_empty()).then_some(batch)
        })
    }
}

impl Iterator for TupleStream {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let values = match self.dist {
            Distribution::Independent => independent(&mut self.rng, self.dim),
            Distribution::Correlated => correlated(&mut self.rng, self.dim),
            Distribution::Anticorrelated => anticorrelated(&mut self.rng, self.dim),
            Distribution::Clustered { .. } => clustered(&mut self.rng, self.dim, &self.centers),
        };
        let id = self.next_id;
        self.next_id += 1;
        Some(Tuple::new(id, values))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for TupleStream {}

fn clamp01(v: f64) -> f64 {
    v.clamp(0.0, MAX_VALUE)
}

/// Standard normal via Box–Muller (avoids a dependency on `rand_distr`).
fn normal(rng: &mut StdRng, mean: f64, std_dev: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std_dev * z
}

fn independent(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect()
}

fn correlated(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    // All dimensions follow a common base value with small jitter, so good
    // tuples are good everywhere: the skyline is tiny.
    let base = clamp01(normal(rng, 0.5, 0.18));
    (0..dim)
        .map(|_| clamp01(base + normal(rng, 0.0, 0.05)))
        .collect()
}

fn anticorrelated(rng: &mut StdRng, dim: usize) -> Vec<f64> {
    // Börzsönyi et al.: points scattered tightly around hyperplanes
    // Σ x_k = l (so that a tuple good in one dimension is bad in another),
    // with the plane offset `l/d` normally distributed around 0.5. The
    // planes must be *tight* (small σ) relative to the within-plane spread:
    // dominance then requires beating a tuple on every dimension across a
    // narrow sum gap, which almost never happens — the signature huge
    // skylines of anti-correlated data.
    if dim == 1 {
        return vec![clamp01(normal(rng, 0.5, 0.25))];
    }
    loop {
        let c = normal(rng, 0.5, 0.05).clamp(0.2, 0.8);
        let l = c * dim as f64;
        // Uniform point on the simplex {x ≥ 0 : Σ x_k = l} via normalized
        // exponential spacings.
        let spacings: Vec<f64> = (0..dim)
            .map(|_| -(rng.gen_range(f64::EPSILON..1.0f64)).ln())
            .collect();
        let total: f64 = spacings.iter().sum();
        let values: Vec<f64> = spacings.into_iter().map(|e| e / total * l).collect();
        // Reject points leaving the unit cube (only likely at low
        // dimensionality, where `l` approaches 1).
        if values.iter().all(|&v| v < MAX_VALUE) {
            return values;
        }
    }
}

fn clustered(rng: &mut StdRng, dim: usize, centers: &[Vec<f64>]) -> Vec<f64> {
    let center = &centers[rng.gen_range(0..centers.len())];
    (0..dim)
        .map(|k| clamp01(normal(rng, center[k], 0.05)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISTS: [Distribution; 4] = [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::Anticorrelated,
        Distribution::Clustered { clusters: 3 },
    ];

    #[test]
    fn values_stay_in_unit_interval() {
        for dist in DISTS {
            for dim in [1, 2, 5, 8] {
                let ds = generate(dist, dim, 500, 42);
                assert_eq!(ds.len(), 500);
                assert_eq!(ds.dim(), dim);
                for t in ds.tuples() {
                    for &v in t.values.iter() {
                        assert!(
                            (0.0..1.0).contains(&v),
                            "{dist:?} d={dim} value {v} out of range"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for dist in DISTS {
            let a = generate(dist, 4, 200, 7);
            let b = generate(dist, 4, 200, 7);
            assert_eq!(a, b, "{dist:?} not deterministic");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(Distribution::Independent, 3, 100, 1);
        let b = generate(Distribution::Independent, 3, 100, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_sequential() {
        let ds = generate(Distribution::Independent, 2, 10, 0);
        let ids: Vec<u64> = ds.tuples().iter().map(|t| t.id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u64>>());
    }

    /// Pearson correlation between the first two dimensions.
    fn pearson(ds: &Dataset) -> f64 {
        let n = ds.len() as f64;
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for t in ds.tuples() {
            let (x, y) = (t.values[0], t.values[1]);
            sx += x;
            sy += y;
            sxx += x * x;
            syy += y * y;
            sxy += x * y;
        }
        let cov = sxy / n - (sx / n) * (sy / n);
        let vx = sxx / n - (sx / n) * (sx / n);
        let vy = syy / n - (sy / n) * (sy / n);
        cov / (vx * vy).sqrt()
    }

    #[test]
    fn correlated_data_has_positive_correlation() {
        let ds = generate(Distribution::Correlated, 2, 5000, 11);
        assert!(pearson(&ds) > 0.5, "correlation {} too weak", pearson(&ds));
    }

    #[test]
    fn anticorrelated_data_has_negative_correlation() {
        let ds = generate(Distribution::Anticorrelated, 2, 5000, 11);
        assert!(
            pearson(&ds) < -0.2,
            "correlation {} not negative enough",
            pearson(&ds)
        );
    }

    #[test]
    fn independent_data_has_near_zero_correlation() {
        let ds = generate(Distribution::Independent, 2, 5000, 11);
        assert!(
            pearson(&ds).abs() < 0.1,
            "correlation {} too strong",
            pearson(&ds)
        );
    }

    #[test]
    fn independent_mean_is_centered() {
        let ds = generate(Distribution::Independent, 3, 5000, 3);
        let mean: f64 = ds.tuples().iter().map(|t| t.values[0]).sum::<f64>() / ds.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn anticorrelated_sum_is_concentrated() {
        // The per-tuple value sum should cluster near d/2 much tighter than
        // independent data does.
        let d = 4;
        let anti = generate(Distribution::Anticorrelated, d, 3000, 5);
        let indep = generate(Distribution::Independent, d, 3000, 5);
        let var_of_sum = |ds: &Dataset| {
            let sums: Vec<f64> = ds.tuples().iter().map(Tuple::score_sum).collect();
            let mean = sums.iter().sum::<f64>() / sums.len() as f64;
            sums.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / sums.len() as f64
        };
        assert!(
            var_of_sum(&anti) < var_of_sum(&indep) * 0.8,
            "anticorrelated sums not concentrated: {} vs {}",
            var_of_sum(&anti),
            var_of_sum(&indep)
        );
    }

    #[test]
    fn clustered_needs_at_least_one_cluster() {
        assert!(std::panic::catch_unwind(|| generate(
            Distribution::Clustered { clusters: 0 },
            2,
            10,
            0
        ))
        .is_err());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Distribution::Independent.name(), "independent");
        assert_eq!(Distribution::Anticorrelated.name(), "anticorrelated");
        assert_eq!(Distribution::Correlated.name(), "correlated");
        assert_eq!(Distribution::Clustered { clusters: 2 }.name(), "clustered");
    }

    #[test]
    fn zero_cardinality_is_fine() {
        let ds = generate(Distribution::Independent, 2, 0, 0);
        assert!(ds.is_empty());
        assert_eq!(stream(Distribution::Independent, 2, 0, 0).count(), 0);
    }

    #[test]
    fn stream_matches_generate_for_every_distribution() {
        for dist in DISTS {
            let eager = generate(dist, 3, 257, 13);
            let lazy: Vec<Tuple> = stream(dist, 3, 257, 13).collect();
            assert_eq!(eager.tuples(), &lazy[..], "{dist:?} stream diverged");
        }
    }

    #[test]
    fn chunked_stream_concatenates_to_generate() {
        let eager = generate(Distribution::Anticorrelated, 4, 100, 9);
        for chunk in [1, 7, 100, 1000] {
            let batches: Vec<Vec<Tuple>> = stream(Distribution::Anticorrelated, 4, 100, 9)
                .chunks(chunk)
                .collect();
            assert!(batches.iter().all(|b| b.len() <= chunk));
            assert!(
                batches[..batches.len() - 1]
                    .iter()
                    .all(|b| b.len() == chunk),
                "only the last batch may run short"
            );
            let flat: Vec<Tuple> = batches.into_iter().flatten().collect();
            assert_eq!(eager.tuples(), &flat[..], "chunk size {chunk} diverged");
        }
    }

    #[test]
    fn stream_reports_exact_length() {
        let mut s = stream(Distribution::Independent, 2, 5, 0);
        assert_eq!(s.len(), 5);
        s.next();
        assert_eq!(s.len(), 4);
    }
}
