//! Synthetic data generators for skyline benchmarks.
//!
//! The paper evaluates on "synthetic data sets of independent and
//! anti-correlated distributions … generated according to the existing
//! methods [4]" (Börzsönyi, Kossmann, Stocker: *The Skyline Operator*,
//! ICDE 2001). This crate implements those generators plus the correlated
//! and clustered distributions commonly used alongside them:
//!
//! * [`Distribution::Independent`] — every dimension i.i.d. uniform on
//!   `[0,1)`; skylines stay small and grow slowly with dimensionality.
//! * [`Distribution::Anticorrelated`] — points scattered around the
//!   hyperplane `Σ x_k = d/2`: a tuple good in one dimension tends to be bad
//!   in the others, so a large fraction of tuples enters the skyline. This
//!   is the regime where the paper's MR-GPMRS shines.
//! * [`Distribution::Correlated`] — all dimensions track a common base
//!   value; tiny skylines.
//! * [`Distribution::Clustered`] — Gaussian blobs around random centers
//!   (not used by the paper's plots; handy for examples and robustness
//!   tests).
//!
//! All generators are deterministic given `(distribution, dim, cardinality,
//! seed)` and produce values strictly inside `[0,1)` where **smaller is
//! better**.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod io;
pub mod normalize;

pub use distributions::{generate, stream, Distribution, TupleStream};
pub use normalize::{Direction, Normalizer};
