//! Dataset persistence: text and binary formats.
//!
//! * **CSV** — `id,v0,v1,…` per line, full round-trip precision; human
//!   inspectable and consumable by external tools.
//! * **Binary** — a compact little-endian block format (magic, dim,
//!   cardinality header, then fixed-width records), ~3× smaller and an
//!   order of magnitude faster to load; the right choice for the
//!   paper-scale benchmark datasets.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read as _, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use skymr_common::{Dataset, Tuple};

/// Magic bytes identifying the binary dataset format (`SKYMR` + version).
const BINARY_MAGIC: &[u8; 6] = b"SKYMR1";

/// Writes a dataset as one `id,v0,v1,…` line per tuple.
pub fn write_csv(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    for t in dataset.tuples() {
        write!(w, "{}", t.id)?;
        for v in t.values.iter() {
            // `{:?}` on f64 prints shortest round-trip representation.
            write!(w, ",{v:?}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Reads a dataset written by [`write_csv`].
///
/// Returns an error when a line is malformed, dimensions are inconsistent,
/// or values fall outside `[0,1)`.
pub fn read_csv(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let reader = BufReader::new(File::open(path)?);
    let mut tuples = Vec::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let id: u64 = parts
            .next()
            .ok_or_else(|| bad_line(lineno, "missing id"))?
            .trim()
            .parse()
            .map_err(|e| bad_line(lineno, &format!("bad id: {e}")))?;
        let values: Vec<f64> = parts
            .map(|p| p.trim().parse::<f64>())
            .collect::<Result<_, _>>()
            .map_err(|e| bad_line(lineno, &format!("bad value: {e}")))?;
        match dim {
            None => dim = Some(values.len()),
            Some(d) if d != values.len() => {
                return Err(bad_line(
                    lineno,
                    &format!("expected {d} values, got {}", values.len()),
                ));
            }
            _ => {}
        }
        tuples.push(Tuple::new(id, values));
    }
    let dim =
        dim.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty dataset file"))?;
    Dataset::new(dim, tuples).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn bad_line(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("line {}: {msg}", lineno + 1),
    )
}

/// Encodes a dataset into the binary format.
pub fn encode_binary(dataset: &Dataset) -> Bytes {
    let record = 8 + 8 * dataset.dim();
    let mut buf = BytesMut::with_capacity(BINARY_MAGIC.len() + 12 + record * dataset.len());
    buf.put_slice(BINARY_MAGIC);
    buf.put_u32_le(dataset.dim() as u32);
    buf.put_u64_le(dataset.len() as u64);
    for t in dataset.tuples() {
        buf.put_u64_le(t.id);
        for &v in t.values.iter() {
            buf.put_f64_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a dataset from the binary format, validating header, length,
/// and the `[0,1)` value invariant.
pub fn decode_binary(mut data: Bytes) -> io::Result<Dataset> {
    let invalid = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if data.remaining() < BINARY_MAGIC.len() + 12 {
        return Err(invalid("binary dataset truncated before header"));
    }
    let mut magic = [0u8; 6];
    data.copy_to_slice(&mut magic);
    if &magic != BINARY_MAGIC {
        return Err(invalid("not a skymr binary dataset (bad magic)"));
    }
    let dim = data.get_u32_le() as usize;
    let len = data.get_u64_le() as usize;
    if dim == 0 {
        return Err(invalid("binary dataset header declares zero dimensions"));
    }
    let record = 8 + 8 * dim;
    if data.remaining() != record * len {
        return Err(invalid("binary dataset body length disagrees with header"));
    }
    let mut tuples = Vec::with_capacity(len);
    for _ in 0..len {
        let id = data.get_u64_le();
        let values: Vec<f64> = (0..dim).map(|_| data.get_f64_le()).collect();
        tuples.push(Tuple::new(id, values));
    }
    Dataset::new(dim, tuples).map_err(|e| invalid(&e.to_string()))
}

/// Writes a dataset in the binary format.
pub fn write_binary(dataset: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&encode_binary(dataset))?;
    w.flush()
}

/// Reads a dataset written by [`write_binary`].
pub fn read_binary(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    decode_binary(Bytes::from(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{generate, Distribution};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skymr-datagen-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_dataset_exactly() {
        let ds = generate(Distribution::Anticorrelated, 3, 50, 9);
        let path = temp_path("roundtrip.csv");
        write_csv(&ds, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_rejects_inconsistent_dimensions() {
        let path = temp_path("baddim.csv");
        std::fs::write(&path, "0,0.1,0.2\n1,0.3\n").unwrap();
        let err = read_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_rejects_garbage() {
        let path = temp_path("garbage.csv");
        std::fs::write(&path, "0,zero.one\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_rejects_empty_file() {
        let path = temp_path("empty.csv");
        std::fs::write(&path, "").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_skips_blank_lines() {
        let path = temp_path("blank.csv");
        std::fs::write(&path, "0,0.1\n\n1,0.2\n").unwrap();
        let ds = read_csv(&path).unwrap();
        assert_eq!(ds.len(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn read_rejects_out_of_range_values() {
        let path = temp_path("range.csv");
        std::fs::write(&path, "0,1.5\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let ds = generate(Distribution::Anticorrelated, 5, 300, 19);
        let back = decode_binary(encode_binary(&ds)).unwrap();
        assert_eq!(ds, back);
        // And through the filesystem.
        let path = temp_path("roundtrip.bin");
        write_binary(&ds, &path).unwrap();
        assert_eq!(read_binary(&path).unwrap(), ds);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_garbage_and_truncation() {
        assert!(decode_binary(Bytes::from_static(b"nope")).is_err());
        assert!(decode_binary(Bytes::from_static(b"GARBAGEGARBAGEGARBAGE")).is_err());
        let ds = generate(Distribution::Independent, 2, 10, 3);
        let full = encode_binary(&ds);
        let truncated = full.slice(0..full.len() - 3);
        assert!(decode_binary(truncated).is_err());
    }

    #[test]
    fn binary_empty_dataset_roundtrips() {
        let ds = Dataset::new(3, vec![]).unwrap();
        assert_eq!(decode_binary(encode_binary(&ds)).unwrap(), ds);
    }

    #[test]
    fn binary_is_smaller_than_csv() {
        let ds = generate(Distribution::Independent, 4, 500, 21);
        let bin_len = encode_binary(&ds).len();
        let csv_path = temp_path("size.csv");
        write_csv(&ds, &csv_path).unwrap();
        let csv_len = std::fs::metadata(&csv_path).unwrap().len() as usize;
        std::fs::remove_file(csv_path).ok();
        assert!(
            bin_len < csv_len,
            "binary {bin_len} not smaller than CSV {csv_len}"
        );
    }
}
