//! Normalization of raw, real-world attributes into the skyline data
//! space.
//!
//! Every algorithm in this workspace works on `[0,1)^d` with
//! *smaller-is-better* semantics (the paper's convention). Real data has
//! arbitrary ranges and mixed optimization directions — hotel ratings are
//! maximized, prices minimized. [`Normalizer`] learns per-column ranges
//! from the raw rows and maps them into the canonical space, keeping
//! enough information to map skyline answers back to the original units.

use skymr_common::{Dataset, Error, Result, Tuple};

/// Which direction is "better" for a raw column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller raw values are better (price, distance, latency).
    Minimize,
    /// Larger raw values are better (rating, review count, throughput).
    Maximize,
}

/// Per-column normalization parameters.
#[derive(Debug, Clone)]
pub struct Column {
    /// Column name (for reports).
    pub name: String,
    /// Optimization direction.
    pub direction: Direction,
    min: f64,
    max: f64,
}

impl Column {
    /// Raw → canonical: min-max scale, flipping maximized columns so that
    /// smaller is better, clamped into `[0, 1)`.
    fn to_canonical(&self, raw: f64) -> f64 {
        let span = self.max - self.min;
        let scaled = if span <= 0.0 {
            0.0
        } else {
            (raw - self.min) / span
        };
        let oriented = match self.direction {
            Direction::Minimize => scaled,
            Direction::Maximize => 1.0 - scaled,
        };
        oriented.clamp(0.0, 1.0 - 1e-9)
    }

    /// Canonical → raw (inverse of [`Column::to_canonical`], up to the
    /// clamp).
    fn to_raw(&self, canonical: f64) -> f64 {
        let oriented = match self.direction {
            Direction::Minimize => canonical,
            Direction::Maximize => 1.0 - canonical,
        };
        self.min + oriented * (self.max - self.min)
    }
}

/// A fitted normalizer: maps raw rows to canonical tuples and back.
///
/// ```
/// use skymr_datagen::{Direction, Normalizer};
///
/// let rows = vec![vec![120.0, 4.5], vec![90.0, 3.0]]; // (price, rating)
/// let norm = Normalizer::fit(
///     &[("price", Direction::Minimize), ("rating", Direction::Maximize)],
///     &rows,
/// )
/// .unwrap();
/// let data = norm.to_dataset(&rows).unwrap();
/// // Cheaper is smaller; better-rated is smaller too (flipped).
/// assert!(data.tuples()[1].values[0] < data.tuples()[0].values[0]);
/// assert!(data.tuples()[0].values[1] < data.tuples()[1].values[1]);
/// ```
#[derive(Debug, Clone)]
pub struct Normalizer {
    columns: Vec<Column>,
}

impl Normalizer {
    /// Learns per-column ranges from raw rows.
    ///
    /// `spec` names every column and its direction; every row must have
    /// exactly one value per column and no NaNs.
    pub fn fit(spec: &[(&str, Direction)], rows: &[Vec<f64>]) -> Result<Self> {
        if spec.is_empty() {
            return Err(Error::InvalidDimension(0));
        }
        let dim = spec.len();
        let mut columns: Vec<Column> = spec
            .iter()
            .map(|(name, direction)| Column {
                name: (*name).to_owned(),
                direction: *direction,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })
            .collect();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    got: row.len(),
                    tuple_id: i as u64,
                });
            }
            for (col, &v) in columns.iter_mut().zip(row.iter()) {
                if v.is_nan() {
                    return Err(Error::ValueOutOfRange { tuple_id: i as u64 });
                }
                col.min = col.min.min(v);
                col.max = col.max.max(v);
            }
        }
        Ok(Self { columns })
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.columns.len()
    }

    /// The fitted columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Maps raw rows into a canonical [`Dataset`]; tuple ids are the row
    /// indexes, so answers can be joined back to the source records.
    pub fn to_dataset(&self, rows: &[Vec<f64>]) -> Result<Dataset> {
        let tuples: Vec<Tuple> = rows
            .iter()
            .enumerate()
            .map(|(i, row)| {
                let values: Vec<f64> = self
                    .columns
                    .iter()
                    .zip(row.iter())
                    .map(|(c, &v)| c.to_canonical(v))
                    .collect();
                Tuple::new(i as u64, values)
            })
            .collect();
        Dataset::new(self.dim(), tuples)
    }

    /// Maps a canonical tuple back to raw units (column order).
    pub fn to_raw_row(&self, t: &Tuple) -> Vec<f64> {
        self.columns
            .iter()
            .zip(t.values.iter())
            .map(|(c, &v)| c.to_raw(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_common::dominance::dominates;

    fn spec() -> Vec<(&'static str, Direction)> {
        vec![
            ("price", Direction::Minimize),
            ("rating", Direction::Maximize),
        ]
    }

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![100.0, 4.5],
            vec![300.0, 3.0],
            vec![50.0, 2.0],
            vec![500.0, 5.0],
        ]
    }

    #[test]
    fn fit_learns_ranges() {
        let n = Normalizer::fit(&spec(), &rows()).unwrap();
        assert_eq!(n.dim(), 2);
        assert_eq!(n.columns()[0].name, "price");
        assert_eq!(n.columns()[0].min, 50.0);
        assert_eq!(n.columns()[0].max, 500.0);
    }

    #[test]
    fn canonical_space_is_smaller_is_better() {
        let n = Normalizer::fit(&spec(), &rows()).unwrap();
        let ds = n.to_dataset(&rows()).unwrap();
        // Cheapest hotel -> dimension 0 value 0; best rated -> dim 1 value 0.
        assert!(ds.tuples()[2].values[0] < 1e-9);
        assert!(ds.tuples()[3].values[1] < 1e-9);
        // A cheaper AND better-rated hotel dominates in canonical space.
        let a = Tuple::new(
            10,
            vec![
                n.columns()[0].to_canonical(80.0),
                n.columns()[1].to_canonical(4.9),
            ],
        );
        let b = Tuple::new(
            11,
            vec![
                n.columns()[0].to_canonical(200.0),
                n.columns()[1].to_canonical(3.5),
            ],
        );
        assert!(dominates(&a, &b));
    }

    #[test]
    fn roundtrip_recovers_raw_values() {
        let n = Normalizer::fit(&spec(), &rows()).unwrap();
        let ds = n.to_dataset(&rows()).unwrap();
        for (row, t) in rows().iter().zip(ds.tuples()) {
            let back = n.to_raw_row(t);
            for (orig, rec) in row.iter().zip(back.iter()) {
                assert!(
                    (orig - rec).abs() < 1e-6,
                    "roundtrip drift: {orig} vs {rec}"
                );
            }
        }
    }

    #[test]
    fn constant_columns_collapse_to_zero() {
        let spec = vec![("x", Direction::Minimize)];
        let rows = vec![vec![7.0], vec![7.0]];
        let n = Normalizer::fit(&spec, &rows).unwrap();
        let ds = n.to_dataset(&rows).unwrap();
        assert_eq!(ds.tuples()[0].values[0], 0.0);
    }

    #[test]
    fn fit_validates_input() {
        assert!(Normalizer::fit(&[], &[]).is_err());
        let bad_row = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(Normalizer::fit(&spec(), &bad_row).is_err());
        let nan_row = vec![vec![1.0, f64::NAN]];
        assert!(Normalizer::fit(&spec(), &nan_row).is_err());
    }

    #[test]
    fn ids_are_row_indexes() {
        let n = Normalizer::fit(&spec(), &rows()).unwrap();
        let ds = n.to_dataset(&rows()).unwrap();
        let ids: Vec<u64> = ds.tuples().iter().map(|t| t.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}
