//! Shared configuration and result types for the baseline drivers.

use skymr_common::Tuple;
use skymr_mapreduce::{ClusterConfig, FaultTolerance, PipelineMetrics};

/// Configuration for the MapReduce baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Number of mappers (input splits).
    pub mappers: usize,
    /// Number of angular partitions for MR-Angle (ignored by MR-BNL /
    /// MR-SFS, whose cell count is fixed at `2^d` by construction).
    pub angular_partitions: usize,
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Fault injection, retry budget, and speculation for the pipeline's
    /// jobs (benign by default).
    pub fault_tolerance: FaultTolerance,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        let cluster = ClusterConfig::default();
        Self {
            mappers: cluster.map_slots,
            angular_partitions: cluster.nodes,
            cluster,
            fault_tolerance: FaultTolerance::none(),
        }
    }
}

impl BaselineConfig {
    /// Small, fast configuration for tests.
    pub fn test() -> Self {
        Self {
            mappers: 4,
            angular_partitions: 4,
            cluster: ClusterConfig::test(),
            fault_tolerance: FaultTolerance::none(),
        }
    }

    /// Sets the mapper count.
    pub fn with_mappers(mut self, mappers: usize) -> Self {
        self.mappers = mappers;
        self
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault_tolerance = ft;
        self
    }

    /// Sets (or clears) the per-slot memory budget; `Some` turns the
    /// out-of-core storage plane on for every job in the pipeline.
    pub fn with_memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.cluster.storage.memory_budget = bytes;
        self
    }

    /// Sets the directory spill files are created under.
    pub fn with_spill_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cluster.storage.spill_dir = Some(dir.into());
        self
    }
}

/// Result of one baseline MapReduce run.
#[derive(Debug)]
pub struct BaselineRun {
    /// The global skyline, sorted by tuple id.
    pub skyline: Vec<Tuple>,
    /// Per-job metrics (baselines are single-job pipelines).
    pub metrics: PipelineMetrics,
}

impl BaselineRun {
    /// The skyline tuple ids, sorted — the canonical comparison form.
    pub fn skyline_ids(&self) -> Vec<u64> {
        self.skyline.iter().map(|t| t.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_cluster_shape() {
        let c = BaselineConfig::default();
        assert_eq!(c.mappers, 13);
        assert_eq!(c.angular_partitions, 13);
        assert!(c.fault_tolerance.plan.is_empty());
    }

    #[test]
    fn builder_sets_mappers() {
        assert_eq!(BaselineConfig::test().with_mappers(7).mappers, 7);
    }

    #[test]
    fn builders_set_storage_plane() {
        let c = BaselineConfig::test()
            .with_memory_budget(Some(1 << 20))
            .with_spill_dir("/tmp/spills");
        assert_eq!(c.cluster.storage.memory_budget, Some(1 << 20));
        assert_eq!(
            c.cluster.storage.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/spills"))
        );
        assert!(BaselineConfig::test()
            .cluster
            .storage
            .memory_budget
            .is_none());
    }
}
