//! MR-Angle (Chen, Hwang, Wu — IPDPS workshops 2012), built on the angular
//! partitioning of Vlachou, Doulkeridis, Kotidis (SIGMOD 2008).
//!
//! The data space is mapped to hyperspherical coordinates around the
//! origin; the `d−1` angular coordinates are partitioned into a grid of
//! angular cells. Because skyline tuples concentrate near the origin, each
//! angular cell's local skyline is a good filter regardless of radius.
//!
//! Two MapReduce phases: mappers tag every tuple with its angular cell
//! (shuffling the whole dataset) and parallel reducers compute a BNL local
//! skyline per cell; then a second job's **single reducer** merges
//! everything with plain BNL — angular cells give no dominance ordering
//! between cells, so no cross-cell pruning is possible (the structural
//! weakness the paper's experiments expose at high dimensionality).
//!
//! Cells here are equi-angle (the original paper proposes equi-volume
//! splits; equi-angle is the common simplification and keeps the partition
//! function cheap — the difference only shifts load balance, not
//! correctness).

use std::f64::consts::FRAC_PI_2;

use skymr_common::{dataset::canonicalize, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, Emitter, JobConfig, MapFactory, MapTask, ModuloPartitioner, OutputCollector,
    PipelineMetrics, ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::config::{BaselineConfig, BaselineRun};
use crate::mr_bnl::{window_insert, CellEntry, ForwardMapFactory};

/// Per-angle split counts for a `dim`-dimensional space targeting roughly
/// `target` angular cells: a uniform `⌈target^(1/(d−1))⌉` splits per angle.
pub fn angle_splits(dim: usize, target: usize) -> Vec<usize> {
    assert!(dim >= 1);
    if dim == 1 {
        return Vec::new();
    }
    let angles = dim - 1;
    let per_angle = (target.max(1) as f64).powf(1.0 / angles as f64).ceil() as usize;
    vec![per_angle.max(1); angles]
}

/// The angular cell of a tuple.
///
/// Angle `φ_i = atan2(‖(x_{i+1}, …, x_d)‖, x_i) ∈ [0, π/2]` (all values are
/// non-negative); each is cut into `splits[i]` equal intervals.
pub fn angular_partition(t: &Tuple, splits: &[usize]) -> u32 {
    let d = t.dim();
    debug_assert_eq!(splits.len(), d.saturating_sub(1));
    let mut id = 0usize;
    let mut stride = 1usize;
    for (i, &k) in splits.iter().enumerate() {
        let tail: f64 = t.values[i + 1..].iter().map(|v| v * v).sum::<f64>().sqrt();
        let phi = tail.atan2(t.values[i]); // in [0, π/2]
        let cell = ((phi / FRAC_PI_2) * k as f64) as usize;
        id += cell.min(k - 1) * stride;
        stride *= k;
    }
    id as u32
}

/// Phase-1 mapper factory: tags tuples with their angular cell.
#[derive(Debug)]
pub struct AngleMapFactory {
    splits: Vec<usize>,
}

impl AngleMapFactory {
    /// A factory over the per-angle split counts.
    pub fn new(splits: Vec<usize>) -> Self {
        Self { splits }
    }
}

/// Phase-1 mapper.
#[derive(Debug)]
pub struct AngleMapTask {
    splits: Vec<usize>,
}

impl MapTask for AngleMapTask {
    type In = Tuple;
    type K = u32;
    type V = Tuple;

    fn map(&mut self, input: &Tuple, out: &mut Emitter<u32, Tuple>) {
        out.emit(angular_partition(input, &self.splits), input.clone());
    }
}

impl MapFactory for AngleMapFactory {
    type Task = AngleMapTask;
    fn create(&self, _ctx: &TaskContext) -> AngleMapTask {
        AngleMapTask {
            splits: self.splits.clone(),
        }
    }
}

/// Phase-1 reducer factory: BNL local skyline per angular cell.
#[derive(Debug)]
pub struct AngleLocalReduceFactory;

/// Phase-1 reducer.
#[derive(Debug)]
pub struct AngleLocalReduceTask;

impl ReduceTask for AngleLocalReduceTask {
    type K = u32;
    type V = Tuple;
    type Out = CellEntry;

    fn reduce(&mut self, key: u32, values: Vec<Tuple>, out: &mut OutputCollector<CellEntry>) {
        let mut window = Vec::new();
        for t in values {
            window_insert(&mut window, t);
        }
        out.collect((key, window));
    }
}

impl ReduceFactory for AngleLocalReduceFactory {
    type Task = AngleLocalReduceTask;
    fn create(&self, _ctx: &TaskContext) -> AngleLocalReduceTask {
        AngleLocalReduceTask
    }
}

/// Phase-2 reducer factory: plain BNL over all local skylines.
#[derive(Debug)]
pub struct AngleMergeReduceFactory;

/// Phase-2 reducer.
#[derive(Debug)]
pub struct AngleMergeReduceTask;

impl ReduceTask for AngleMergeReduceTask {
    type K = u8;
    type V = CellEntry;
    type Out = Tuple;

    fn reduce(&mut self, _key: u8, values: Vec<CellEntry>, out: &mut OutputCollector<Tuple>) {
        let mut window: Vec<Tuple> = Vec::new();
        for (_, tuples) in values {
            for t in tuples {
                window_insert(&mut window, t);
            }
        }
        for t in window {
            out.collect(t);
        }
    }
}

impl ReduceFactory for AngleMergeReduceFactory {
    type Task = AngleMergeReduceTask;
    fn create(&self, _ctx: &TaskContext) -> AngleMergeReduceTask {
        AngleMergeReduceTask
    }
}

/// Runs the two-phase MR-Angle pipeline with `config.angular_partitions`
/// target cells.
pub fn mr_angle(dataset: &Dataset, config: &BaselineConfig) -> skymr_common::Result<BaselineRun> {
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();
    let ft = &config.fault_tolerance;

    let angle_config = angle_splits(dataset.dim(), config.angular_partitions);
    let cells: usize = angle_config.iter().product::<usize>().max(1);
    let r1 = cells.min(config.cluster.reduce_slots).max(1);
    let job1 = JobConfig::new("mr-angle-local", r1).with_fault_tolerance(ft);
    let outcome1 = metrics.track(run_job(
        &config.cluster,
        &job1,
        &splits,
        &AngleMapFactory::new(angle_config),
        &AngleLocalReduceFactory,
        &ModuloPartitioner,
    ))?;

    let splits2: Vec<Vec<CellEntry>> = outcome1.outputs;
    let job2 = JobConfig::new("mr-angle-merge", 1).with_fault_tolerance(ft);
    let outcome2 = metrics.track(run_job(
        &config.cluster,
        &job2,
        &splits2,
        &ForwardMapFactory,
        &AngleMergeReduceFactory,
        &SingleReducerPartitioner,
    ))?;

    Ok(BaselineRun {
        skyline: canonicalize(outcome2.into_flat_output()),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn angle_splits_shape() {
        assert!(angle_splits(1, 8).is_empty());
        assert_eq!(angle_splits(2, 8), vec![8]);
        assert_eq!(angle_splits(3, 9), vec![3, 3]);
        assert_eq!(angle_splits(4, 8), vec![2, 2, 2]);
    }

    #[test]
    fn angular_partition_separates_axes() {
        // Near the x-axis: φ ≈ 0 (cell 0); near the y-axis: φ ≈ π/2 (last).
        let splits = vec![4];
        let near_x = Tuple::new(0, vec![0.9, 0.01]);
        let near_y = Tuple::new(1, vec![0.01, 0.9]);
        assert_eq!(angular_partition(&near_x, &splits), 0);
        assert_eq!(angular_partition(&near_y, &splits), 3);
        let diagonal = Tuple::new(2, vec![0.5, 0.5]);
        let c = angular_partition(&diagonal, &splits);
        assert!(c == 1 || c == 2, "diagonal lands mid-range, got {c}");
    }

    #[test]
    fn angular_partition_is_total_and_in_range() {
        let ds = generate(Distribution::Independent, 4, 500, 81);
        let splits = angle_splits(4, 27);
        let max: usize = splits.iter().product();
        for t in ds.tuples() {
            assert!((angular_partition(t, &splits) as usize) < max);
        }
    }

    #[test]
    fn matches_bnl_oracle() {
        for dist in [Distribution::Independent, Distribution::Anticorrelated] {
            for dim in [2, 3, 5] {
                let ds = generate(dist, dim, 400, 82);
                let run = mr_angle(&ds, &BaselineConfig::test()).unwrap();
                assert_eq!(
                    run.skyline,
                    bnl_skyline(ds.tuples()),
                    "MR-Angle wrong on {dist:?} d={dim}"
                );
            }
        }
    }

    #[test]
    fn runs_two_jobs_and_shuffles_whole_dataset() {
        let ds = generate(Distribution::Independent, 3, 300, 85);
        let run = mr_angle(&ds, &BaselineConfig::test()).unwrap();
        let names: Vec<&str> = run.metrics.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, vec!["mr-angle-local", "mr-angle-merge"]);
        assert_eq!(run.metrics.jobs[0].map_output_records, ds.len() as u64);
    }

    #[test]
    fn one_dimensional_data_works() {
        let ds = generate(Distribution::Independent, 1, 100, 83);
        let run = mr_angle(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(run.skyline, bnl_skyline(ds.tuples()));
        assert_eq!(run.skyline.len(), 1);
    }

    #[test]
    fn invariant_to_partition_target() {
        let ds = generate(Distribution::Anticorrelated, 3, 300, 84);
        let base = bnl_skyline(ds.tuples());
        for target in [1, 4, 16, 64] {
            let mut config = BaselineConfig::test();
            config.angular_partitions = target;
            assert_eq!(
                mr_angle(&ds, &config).unwrap().skyline,
                base,
                "target {target} broke MR-Angle"
            );
        }
    }
}
