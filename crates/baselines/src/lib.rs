//! Baseline skyline algorithms the paper compares against.
//!
//! * [`bnl`] — centralized Block-Nested-Loops (Börzsönyi et al., ICDE
//!   2001), both with an unbounded window and with the original bounded-
//!   window multi-pass behaviour. Also the *oracle* every MapReduce
//!   algorithm in this workspace is tested against.
//! * [`sfs`] — centralized Sort-Filter-Skyline (Chomicki et al., ICDE
//!   2003): presort by a monotone score, then a single filtering pass.
//! * [`dnc`] — centralized divide-and-conquer skyline (Börzsönyi et al.'s
//!   second algorithm), strong on large (anti-correlated) skylines.
//! * [`sky_mr`] — SKY-MR (Park et al., PVLDB 2013): a sample-built
//!   [`quadtree`] ("sky-quadtree") prunes dominated regions up front and
//!   its leaves drive multi-reducer parallelism; the sample-based
//!   competitor the paper's related-work section contrasts the bitstring
//!   against.
//! * [`mr_bnl`] — MR-BNL (Zhang et al., DASFAA 2011 workshops): each
//!   dimension split into two halves (2^d cells), BNL local skylines on the
//!   mappers, single merging reducer with cell-code pruning.
//! * [`mr_sfs`] — MR-SFS (same partitioning, SFS local skylines). The
//!   paper omits it from plots as strictly slower than MR-BNL; included for
//!   completeness.
//! * [`mr_angle`] — MR-Angle (Chen et al., IPDPS workshops 2012 /
//!   Vlachou et al., SIGMOD 2008): angular partitioning of the data space,
//!   BNL local skylines per angular partition, single merging reducer.
//!
//! The MapReduce baselines run on the same simulated cluster engine as
//! MR-GPSRS/MR-GPMRS, so their simulated runtimes are directly comparable.
//! Deliberately, none of them benefits from the paper's bitstring: that is
//! the contribution under evaluation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bnl;
pub mod config;
pub mod dnc;
pub mod mr_angle;
pub mod mr_bitmap;
pub mod mr_bnl;
pub mod mr_sfs;
pub mod quadtree;
pub mod sfs;
pub mod sky_mr;

pub use bnl::{bnl_skyline, bnl_skyline_windowed};
pub use config::{BaselineConfig, BaselineRun};
pub use dnc::dnc_skyline;
pub use mr_angle::mr_angle;
pub use mr_bitmap::{discretize, mr_bitmap};
pub use mr_bnl::{mr_bnl, mr_bnl_with_strategy, MergeStrategy};
pub use mr_sfs::mr_sfs;
pub use quadtree::SkyQuadtree;
pub use sfs::{sfs_skyline, SfsOrder};
pub use sky_mr::{sky_mr, SkyMrConfig};
