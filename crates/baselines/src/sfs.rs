//! Sort-Filter-Skyline (Chomicki, Godfrey, Gryz, Liang — ICDE 2003).
//!
//! SFS presorts the input by a *monotone scoring function* — if `a`
//! dominates `b` then `score(a) < score(b)` — so a tuple can only be
//! dominated by tuples *before* it in sorted order. One filtering pass
//! against the accumulated window then suffices, and window tuples are
//! never evicted (every inserted tuple is already confirmed skyline).

use skymr_common::dominance::dominates;
use skymr_common::Tuple;

/// The monotone presorting score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SfsOrder {
    /// Sum of dimension values (simple, fast).
    Sum,
    /// The entropy score `Σ ln(1 + v_k)` recommended by the SFS paper for
    /// better filtering selectivity.
    #[default]
    Entropy,
}

impl SfsOrder {
    fn score(&self, t: &Tuple) -> f64 {
        match self {
            SfsOrder::Sum => t.score_sum(),
            SfsOrder::Entropy => t.score_entropy(),
        }
    }
}

/// Computes the skyline with SFS, sorted by tuple id.
pub fn sfs_skyline(tuples: &[Tuple], order: SfsOrder) -> Vec<Tuple> {
    let mut sorted: Vec<&Tuple> = tuples.iter().collect();
    // Ties broken by id for determinism; score is NaN-free on valid data.
    sorted.sort_by(|a, b| {
        order
            .score(a)
            .total_cmp(&order.score(b))
            .then(a.id.cmp(&b.id))
    });
    let mut window: Vec<Tuple> = Vec::new();
    'next: for t in sorted {
        for w in &window {
            if dominates(w, t) {
                continue 'next;
            }
            debug_assert!(
                !dominates(t, w),
                "monotone order violated: later tuple dominates earlier window tuple"
            );
        }
        window.push(t.clone());
    }
    window.sort_by_key(|t| t.id);
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn trivial_cases() {
        assert!(sfs_skyline(&[], SfsOrder::Entropy).is_empty());
        let one = vec![Tuple::new(1, vec![0.4, 0.6])];
        assert_eq!(sfs_skyline(&one, SfsOrder::Sum), one);
    }

    #[test]
    fn matches_bnl_on_all_distributions_and_orders() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
            Distribution::Clustered { clusters: 2 },
        ] {
            for dim in [2, 4] {
                let ds = generate(dist, dim, 400, 55);
                let oracle = bnl_skyline(ds.tuples());
                for order in [SfsOrder::Sum, SfsOrder::Entropy] {
                    assert_eq!(
                        sfs_skyline(ds.tuples(), order),
                        oracle,
                        "SFS({order:?}) disagrees with BNL on {dist:?} d={dim}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_is_never_evicted() {
        // Structural property of SFS: output size equals window size, and
        // the presort guarantees no false insertions — verified indirectly
        // by the debug_assert in the implementation plus oracle agreement.
        let ds = generate(Distribution::Anticorrelated, 3, 300, 56);
        let sky = sfs_skyline(ds.tuples(), SfsOrder::Entropy);
        assert_eq!(sky, bnl_skyline(ds.tuples()));
    }

    #[test]
    fn duplicates_survive() {
        let input = vec![Tuple::new(0, vec![0.3, 0.3]), Tuple::new(1, vec![0.3, 0.3])];
        assert_eq!(sfs_skyline(&input, SfsOrder::Entropy).len(), 2);
    }
}
