//! MR-BNL (Zhang, Zhou, Guan — DASFAA 2011 workshops).
//!
//! Two MapReduce phases, as in the original:
//!
//! 1. **Partition + local skylines.** Each dimension is split into two
//!    halves at the midpoint, giving `2^d` cells identified by a bit code
//!    (bit `k` set ⇔ the tuple is in the upper half of dimension `k`).
//!    Mappers tag every tuple with its cell code — shuffling the *entire
//!    dataset* — and the reducers (one per cell, up to the slot count)
//!    compute a BNL local skyline per cell in parallel.
//! 2. **Global merge.** A second job with a **single reducer** merges all
//!    local skylines, skipping cell pairs whose codes rule out dominance
//!    (cell `A` can contain dominators of cell `B` only if `A`'s code is
//!    bitwise ≤ `B`'s).
//!
//! Unlike the paper's bitstring, the cell codes say nothing about which
//! cells are *occupied*, so no data is pruned before the shuffle — the
//! distinction the paper's related-work section draws ("merely codes for
//! data partitions but not for data contents"), and the reason MR-BNL
//! ships the whole dataset where MR-GPSRS ships only local skylines.

use std::collections::BTreeMap;

use skymr_common::dominance::{compare, dominates, DomOrdering};
use skymr_common::{dataset::canonicalize, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, Emitter, JobConfig, MapFactory, MapTask, ModuloPartitioner, OutputCollector,
    PipelineMetrics, ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::config::{BaselineConfig, BaselineRun};

/// Per-cell local skylines keyed by the `2^d` cell code.
pub type CellSkylines = BTreeMap<u32, Vec<Tuple>>;

/// A `(cell, local skyline)` pair as shuffled by the merge phase.
pub type CellEntry = (u32, Vec<Tuple>);

/// The 2-halves cell code of a tuple: bit `k` set iff `values[k] ≥ 0.5`.
pub fn cell_code(t: &Tuple) -> u32 {
    let mut code = 0u32;
    for (k, &v) in t.values.iter().enumerate() {
        if v >= 0.5 {
            code |= 1 << k;
        }
    }
    code
}

/// `true` iff cell `a` may contain tuples dominating tuples of cell `b`.
pub fn cell_may_dominate(a: u32, b: u32) -> bool {
    a != b && a & !b == 0
}

/// BNL window insert shared by the MapReduce baselines.
pub(crate) fn window_insert(window: &mut Vec<Tuple>, t: Tuple) {
    let mut i = 0;
    while i < window.len() {
        match compare(&window[i], &t) {
            DomOrdering::Dominates => return,
            DomOrdering::DominatedBy => {
                window.swap_remove(i);
            }
            DomOrdering::Incomparable => i += 1,
        }
    }
    window.push(t);
}

/// Cross-cell false-positive elimination with cell-code skipping: remove
/// from each cell every tuple dominated by another cell's skyline,
/// skipping pairs whose codes rule dominance out.
///
/// This is **not** what Zhang et al.'s MR-BNL does — their merge is a
/// plain BNL over all local skylines (the flags are "merely codes for data
/// partitions but not for data contents", as the paper's related-work
/// section puts it). It is kept as the [`MergeStrategy::CellCodePruning`]
/// ablation variant, quantifying how much a content-aware merge would have
/// helped the baseline.
pub fn eliminate_across_cells(cells: &mut CellSkylines) {
    let codes: Vec<u32> = cells.keys().copied().collect();
    for &b in &codes {
        let Some(mut sb) = cells.remove(&b) else {
            continue;
        };
        for (&a, sa) in cells.iter() {
            if !cell_may_dominate(a, b) {
                continue;
            }
            sb.retain(|t| !sa.iter().any(|ta| dominates(ta, t)));
            if sb.is_empty() {
                break;
            }
        }
        if !sb.is_empty() {
            cells.insert(b, sb);
        }
    }
}

// ---------------------------------------------------------------------
// Phase 1: partition every tuple to its cell, local skyline per cell.
// ---------------------------------------------------------------------

/// Phase-1 mapper factory: tags tuples with their cell code.
#[derive(Debug)]
pub struct PartitionMapFactory;

/// Phase-1 mapper.
#[derive(Debug)]
pub struct PartitionMapTask;

impl MapTask for PartitionMapTask {
    type In = Tuple;
    type K = u32;
    type V = Tuple;

    fn map(&mut self, input: &Tuple, out: &mut Emitter<u32, Tuple>) {
        out.emit(cell_code(input), input.clone());
    }
}

impl MapFactory for PartitionMapFactory {
    type Task = PartitionMapTask;
    fn create(&self, _ctx: &TaskContext) -> PartitionMapTask {
        PartitionMapTask
    }
}

/// Phase-1 reducer factory: BNL local skyline per cell.
#[derive(Debug)]
pub struct LocalSkylineReduceFactory;

/// Phase-1 reducer.
#[derive(Debug)]
pub struct LocalSkylineReduceTask;

impl ReduceTask for LocalSkylineReduceTask {
    type K = u32;
    type V = Tuple;
    type Out = CellEntry;

    fn reduce(&mut self, key: u32, values: Vec<Tuple>, out: &mut OutputCollector<CellEntry>) {
        let mut window = Vec::new();
        for t in values {
            window_insert(&mut window, t);
        }
        out.collect((key, window));
    }
}

impl ReduceFactory for LocalSkylineReduceFactory {
    type Task = LocalSkylineReduceTask;
    fn create(&self, _ctx: &TaskContext) -> LocalSkylineReduceTask {
        LocalSkylineReduceTask
    }
}

// ---------------------------------------------------------------------
// Phase 2: single-reducer global merge.
// ---------------------------------------------------------------------

/// Phase-2 mapper factory: forwards `(cell, local skyline)` entries.
#[derive(Debug)]
pub struct ForwardMapFactory;

/// Phase-2 mapper.
#[derive(Debug)]
pub struct ForwardMapTask;

impl MapTask for ForwardMapTask {
    type In = CellEntry;
    type K = u8;
    type V = CellEntry;

    fn map(&mut self, input: &CellEntry, out: &mut Emitter<u8, CellEntry>) {
        out.emit(0, input.clone());
    }
}

impl MapFactory for ForwardMapFactory {
    type Task = ForwardMapTask;
    fn create(&self, _ctx: &TaskContext) -> ForwardMapTask {
        ForwardMapTask
    }
}

/// How the single merge reducer combines the per-cell local skylines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeStrategy {
    /// Plain BNL over all local skylines — Zhang et al.'s MR-BNL. The
    /// merge cost grows with the square of the combined skyline size,
    /// which is what makes the baseline fail to terminate on
    /// high-dimensional anti-correlated data in the paper's experiments.
    #[default]
    PlainBnl,
    /// Cell-code-aware merge (ablation): per-cell windows, cross-cell
    /// elimination only between code-comparable cells.
    CellCodePruning,
}

/// Phase-2 reducer factory: single-reducer merge.
#[derive(Debug)]
pub struct MergeReduceFactory {
    strategy: MergeStrategy,
}

impl MergeReduceFactory {
    /// A factory using the given merge strategy.
    pub fn new(strategy: MergeStrategy) -> Self {
        Self { strategy }
    }
}

/// Phase-2 reducer.
#[derive(Debug)]
pub struct MergeReduceTask {
    strategy: MergeStrategy,
}

impl ReduceTask for MergeReduceTask {
    type K = u8;
    type V = CellEntry;
    type Out = Tuple;

    fn reduce(&mut self, _key: u8, values: Vec<CellEntry>, out: &mut OutputCollector<Tuple>) {
        match self.strategy {
            MergeStrategy::PlainBnl => {
                let mut window: Vec<Tuple> = Vec::new();
                for (_, tuples) in values {
                    for t in tuples {
                        window_insert(&mut window, t);
                    }
                }
                for t in window {
                    out.collect(t);
                }
            }
            MergeStrategy::CellCodePruning => {
                let mut cells = CellSkylines::new();
                for (code, tuples) in values {
                    let window = cells.entry(code).or_default();
                    for t in tuples {
                        window_insert(window, t);
                    }
                }
                eliminate_across_cells(&mut cells);
                for tuples in cells.into_values() {
                    for t in tuples {
                        out.collect(t);
                    }
                }
            }
        }
    }
}

impl ReduceFactory for MergeReduceFactory {
    type Task = MergeReduceTask;
    fn create(&self, _ctx: &TaskContext) -> MergeReduceTask {
        MergeReduceTask {
            strategy: self.strategy,
        }
    }
}

/// Number of phase-1 reducers: one per cell, capped by the cluster's
/// reduce slots.
pub(crate) fn phase1_reducers(dim: usize, reduce_slots: usize) -> usize {
    let cells = 1usize.checked_shl(dim as u32).unwrap_or(usize::MAX);
    cells.min(reduce_slots).max(1)
}

/// Runs the two-phase MR-BNL pipeline with the faithful plain-BNL merge.
pub fn mr_bnl(dataset: &Dataset, config: &BaselineConfig) -> skymr_common::Result<BaselineRun> {
    mr_bnl_with_strategy(dataset, config, MergeStrategy::PlainBnl)
}

/// Runs MR-BNL with an explicit merge strategy (ablations).
pub fn mr_bnl_with_strategy(
    dataset: &Dataset,
    config: &BaselineConfig,
    strategy: MergeStrategy,
) -> skymr_common::Result<BaselineRun> {
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();
    let ft = &config.fault_tolerance;

    // Phase 1: shuffle all tuples to per-cell reducers.
    let r1 = phase1_reducers(dataset.dim(), config.cluster.reduce_slots);
    let job1 = JobConfig::new("mr-bnl-local", r1).with_fault_tolerance(ft);
    let outcome1 = metrics.track(run_job(
        &config.cluster,
        &job1,
        &splits,
        &PartitionMapFactory,
        &LocalSkylineReduceFactory,
        &ModuloPartitioner,
    ))?;

    // Phase 2: single-reducer merge. Each phase-1 reducer's output plays
    // the role of one input split (one HDFS file per reducer).
    let splits2: Vec<Vec<CellEntry>> = outcome1.outputs;
    let job2 = JobConfig::new("mr-bnl-merge", 1).with_fault_tolerance(ft);
    let outcome2 = metrics.track(run_job(
        &config.cluster,
        &job2,
        &splits2,
        &ForwardMapFactory,
        &MergeReduceFactory::new(strategy),
        &SingleReducerPartitioner,
    ))?;

    Ok(BaselineRun {
        skyline: canonicalize(outcome2.into_flat_output()),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn cell_code_splits_at_midpoint() {
        assert_eq!(cell_code(&Tuple::new(0, vec![0.1, 0.1])), 0b00);
        assert_eq!(cell_code(&Tuple::new(0, vec![0.9, 0.1])), 0b01);
        assert_eq!(cell_code(&Tuple::new(0, vec![0.1, 0.9])), 0b10);
        assert_eq!(cell_code(&Tuple::new(0, vec![0.5, 0.5])), 0b11);
    }

    #[test]
    fn cell_dominance_codes() {
        assert!(cell_may_dominate(0b00, 0b11));
        assert!(cell_may_dominate(0b00, 0b01));
        assert!(cell_may_dominate(0b01, 0b11));
        assert!(
            !cell_may_dominate(0b01, 0b10),
            "disjoint halves cannot dominate"
        );
        assert!(!cell_may_dominate(0b11, 0b00));
        assert!(
            !cell_may_dominate(0b01, 0b01),
            "a cell does not dominate itself"
        );
    }

    #[test]
    fn phase1_reducer_count_is_capped() {
        assert_eq!(phase1_reducers(2, 13), 4);
        assert_eq!(phase1_reducers(6, 13), 13);
        assert_eq!(phase1_reducers(1, 13), 2);
    }

    #[test]
    fn matches_bnl_oracle() {
        for dist in [
            Distribution::Independent,
            Distribution::Anticorrelated,
            Distribution::Correlated,
        ] {
            for dim in [2, 3, 6] {
                let ds = generate(dist, dim, 400, 61);
                let run = mr_bnl(&ds, &BaselineConfig::test()).unwrap();
                assert_eq!(
                    run.skyline,
                    bnl_skyline(ds.tuples()),
                    "MR-BNL wrong on {dist:?} d={dim}"
                );
            }
        }
    }

    #[test]
    fn runs_two_jobs_and_shuffles_whole_dataset() {
        let ds = generate(Distribution::Independent, 3, 500, 65);
        let run = mr_bnl(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(run.metrics.jobs.len(), 2);
        assert_eq!(run.metrics.jobs[0].name, "mr-bnl-local");
        assert_eq!(run.metrics.jobs[1].name, "mr-bnl-merge");
        // Phase 1 ships every input tuple through the shuffle.
        assert_eq!(run.metrics.jobs[0].map_output_records, ds.len() as u64);
    }

    #[test]
    fn merge_strategies_agree() {
        for dist in [Distribution::Independent, Distribution::Anticorrelated] {
            let ds = generate(dist, 4, 400, 64);
            let plain = mr_bnl_with_strategy(&ds, &BaselineConfig::test(), MergeStrategy::PlainBnl)
                .unwrap();
            let pruned =
                mr_bnl_with_strategy(&ds, &BaselineConfig::test(), MergeStrategy::CellCodePruning)
                    .unwrap();
            assert_eq!(
                plain.skyline_ids(),
                pruned.skyline_ids(),
                "strategies differ on {dist:?}"
            );
        }
    }

    #[test]
    fn invariant_to_mapper_count() {
        let ds = generate(Distribution::Anticorrelated, 3, 300, 62);
        let base = mr_bnl(&ds, &BaselineConfig::test().with_mappers(1)).unwrap();
        for m in [2, 4, 7] {
            let run = mr_bnl(&ds, &BaselineConfig::test().with_mappers(m)).unwrap();
            assert_eq!(run.skyline_ids(), base.skyline_ids());
        }
    }

    #[test]
    fn empty_input() {
        let ds = Dataset::new(2, vec![]).unwrap();
        assert!(mr_bnl(&ds, &BaselineConfig::test())
            .unwrap()
            .skyline
            .is_empty());
    }

    #[test]
    fn survives_injected_failures() {
        let ds = generate(Distribution::Independent, 3, 200, 63);
        let clean = mr_bnl(&ds, &BaselineConfig::test()).unwrap();
        let mut config = BaselineConfig::test();
        config.fault_tolerance =
            skymr_mapreduce::FaultTolerance::with_plan(skymr_mapreduce::FaultPlan::fail_maps([0]));
        let failed = mr_bnl(&ds, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
        assert_eq!(failed.metrics.jobs[0].map_retries, 1);
    }
}
