//! Divide-and-conquer skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).
//!
//! The second algorithm of the original skyline paper: split the input at
//! the median of one dimension, compute both halves' skylines recursively,
//! then *merge* — remove from the worse half every tuple dominated by the
//! better half, recursing on a different dimension. Asymptotically
//! `O(n · log^{d−2} n)` for `d ≥ 3`; in practice it shines when skylines
//! are large (anti-correlated data), exactly the regime where the window
//! algorithms degrade — which is why it is a useful *local* skyline
//! routine for the paper's mappers ("it is still interesting to optimize
//! the local skyline computations", Section 8).

use skymr_common::dominance::dominates;
use skymr_common::Tuple;

/// Below this size, plain BNL beats the recursion overhead.
const BASE_CASE: usize = 64;

/// Computes the skyline with divide and conquer, sorted by id.
///
/// ```
/// use skymr_baselines::{bnl_skyline, dnc_skyline};
/// use skymr_common::Tuple;
///
/// let tuples: Vec<Tuple> = (0..200)
///     .map(|i| Tuple::new(i, vec![(i as f64) / 200.0, ((199 - i) as f64) / 200.0]))
///     .collect();
/// assert_eq!(dnc_skyline(&tuples), bnl_skyline(&tuples));
/// ```
pub fn dnc_skyline(tuples: &[Tuple]) -> Vec<Tuple> {
    if tuples.is_empty() {
        return Vec::new();
    }
    let dim = tuples[0].dim();
    let mut work: Vec<Tuple> = tuples.to_vec();
    let mut skyline = skyline_rec(&mut work, dim, 0);
    skyline.sort_by_key(|t| t.id);
    skyline
}

/// BNL for the recursion base case (no counters needed here).
fn bnl_base(tuples: &mut Vec<Tuple>) -> Vec<Tuple> {
    let mut window: Vec<Tuple> = Vec::new();
    'next: for t in tuples.drain(..) {
        let mut i = 0;
        while i < window.len() {
            if dominates(&window[i], &t) {
                continue 'next;
            }
            if dominates(&t, &window[i]) {
                window.swap_remove(i);
            } else {
                i += 1;
            }
        }
        window.push(t);
    }
    window
}

/// Recursive skyline: split at the median of dimension `split_dim`.
fn skyline_rec(tuples: &mut Vec<Tuple>, dim: usize, depth: usize) -> Vec<Tuple> {
    if tuples.len() <= BASE_CASE || depth >= 2 * dim {
        return bnl_base(tuples);
    }
    let split_dim = depth % dim; // xtask: allow(panic-reachability) — dim == 0 takes the depth >= 2*dim base case above

    // Median split by the current dimension (ties broken by id so the
    // split is deterministic and both halves are strictly smaller).
    let mid = tuples.len() / 2;
    tuples.select_nth_unstable_by(mid, |a, b| {
        a.values[split_dim]
            .total_cmp(&b.values[split_dim])
            .then(a.id.cmp(&b.id))
    });
    let mut upper: Vec<Tuple> = tuples.split_off(mid);
    let lower = tuples;

    let mut sky_lower = skyline_rec(lower, dim, depth + 1);
    let sky_upper = skyline_rec(&mut upper, dim, depth + 1);

    // Merge: tuples of the upper half (worse on split_dim) survive only if
    // not dominated by the lower half's skyline. Lower-half skyline tuples
    // can never be dominated by upper-half tuples on a median split only
    // when values differ; with ties broken by id a lower tuple may still
    // be dominated by an equal-valued upper one is impossible (equal
    // vectors do not dominate). A dominator of a lower tuple in the upper
    // half would need split-dim value <= the lower tuple's, which the
    // median split permits only for equal split-dim values; handle that
    // exactly by checking both directions on equal-boundary values.
    let boundary = sky_lower
        .iter()
        .map(|t| t.values[split_dim])
        .fold(f64::NEG_INFINITY, f64::max);
    let survivors: Vec<Tuple> = sky_upper
        .into_iter()
        .filter(|u| !sky_lower.iter().any(|l| dominates(l, u)))
        .collect();
    // Symmetric sweep for lower tuples on the equal-value boundary.
    sky_lower
        .retain(|l| l.values[split_dim] < boundary || !survivors.iter().any(|u| dominates(u, l)));
    sky_lower.extend(survivors);
    sky_lower
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn trivial_cases() {
        assert!(dnc_skyline(&[]).is_empty());
        let one = vec![Tuple::new(0, vec![0.5, 0.5])];
        assert_eq!(dnc_skyline(&one), one);
    }

    #[test]
    fn matches_bnl_on_all_distributions() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
            Distribution::Clustered { clusters: 3 },
        ] {
            for dim in [1usize, 2, 3, 5, 8] {
                let ds = generate(dist, dim, 700, 91);
                assert_eq!(
                    dnc_skyline(ds.tuples()),
                    bnl_skyline(ds.tuples()),
                    "D&C disagrees with BNL on {dist:?} d={dim}"
                );
            }
        }
    }

    #[test]
    fn handles_duplicate_values_on_split_dimension() {
        // Many tuples sharing the same value on dimension 0 stress the
        // median-split boundary handling.
        let mut tuples = Vec::new();
        for i in 0..300u64 {
            tuples.push(Tuple::new(i, vec![0.5, (i as f64 % 97.0) / 100.0, 0.3]));
        }
        tuples.push(Tuple::new(300, vec![0.5, 0.0, 0.29]));
        assert_eq!(dnc_skyline(&tuples), bnl_skyline(&tuples));
    }

    #[test]
    fn handles_all_identical_tuples() {
        let tuples: Vec<Tuple> = (0..200).map(|i| Tuple::new(i, vec![0.4, 0.4])).collect();
        let sky = dnc_skyline(&tuples);
        assert_eq!(sky.len(), 200, "identical tuples never dominate each other");
    }

    #[test]
    fn large_anticorrelated_input() {
        let ds = generate(Distribution::Anticorrelated, 4, 5_000, 92);
        assert_eq!(dnc_skyline(ds.tuples()), bnl_skyline(ds.tuples()));
    }

    #[test]
    fn base_case_boundary() {
        for n in [BASE_CASE - 1, BASE_CASE, BASE_CASE + 1, 2 * BASE_CASE + 1] {
            let ds = generate(Distribution::Independent, 3, n, 93);
            assert_eq!(
                dnc_skyline(ds.tuples()),
                bnl_skyline(ds.tuples()),
                "failed at n={n}"
            );
        }
    }
}
