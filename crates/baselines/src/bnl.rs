//! Block-Nested-Loops skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).
//!
//! BNL streams the input past a *window* of incomparable tuples: an
//! incoming tuple dominated by the window is dropped, window tuples it
//! dominates are evicted, and otherwise it joins the window. With an
//! unbounded window one pass suffices; the original algorithm bounds the
//! window and spills to an overflow file, confirming a window tuple as
//! skyline once it has been compared against every tuple after it —
//! [`bnl_skyline_windowed`] reproduces that multi-pass behaviour in memory.

use skymr_common::dominance::{compare, DomOrdering};
use skymr_common::Tuple;

/// Single joint dominance check for the window update. Returns what to do
/// with the incoming tuple relative to one window entry.
#[inline]
fn window_step(window: &mut Vec<(usize, Tuple)>, i: &mut usize, t: &Tuple) -> bool {
    match compare(&window[*i].1, t) {
        DomOrdering::Dominates => false,
        DomOrdering::DominatedBy => {
            window.swap_remove(*i);
            true
        }
        DomOrdering::Incomparable => {
            *i += 1;
            true
        }
    }
}

/// BNL with an unbounded window: the skyline in one pass, sorted by id.
///
/// ```
/// use skymr_baselines::bnl_skyline;
/// use skymr_common::Tuple;
///
/// let tuples = vec![
///     Tuple::new(0, vec![0.2, 0.8]),
///     Tuple::new(1, vec![0.8, 0.2]),
///     Tuple::new(2, vec![0.9, 0.9]), // dominated by both
/// ];
/// let ids: Vec<u64> = bnl_skyline(&tuples).iter().map(|t| t.id).collect();
/// assert_eq!(ids, vec![0, 1]);
/// ```
pub fn bnl_skyline(tuples: &[Tuple]) -> Vec<Tuple> {
    let mut window: Vec<(usize, Tuple)> = Vec::with_capacity(tuples.len().min(64));
    'next: for t in tuples {
        let mut i = 0;
        while i < window.len() {
            if !window_step(&mut window, &mut i, t) {
                continue 'next;
            }
        }
        window.push((0, t.clone())); // xtask: allow(hot-path-alloc) — the window owns its tuples; cloning each survivor out of the borrowed input is BNL's contract
    }
    let mut skyline: Vec<Tuple> = window.into_iter().map(|(_, t)| t).collect();
    skyline.sort_by_key(|t| t.id);
    skyline
}

/// The original bounded-window BNL: at most `window_capacity` tuples are
/// held; the rest spill to an overflow buffer processed in further passes.
///
/// A window tuple is *confirmed* (emitted as skyline) at the end of a pass
/// only if it entered the window before the first overflow spill of that
/// pass — only then has it been compared against every remaining tuple.
/// Unconfirmed window tuples rejoin the overflow for the next pass.
///
/// # Panics
///
/// Panics if `window_capacity == 0`.
pub fn bnl_skyline_windowed(tuples: &[Tuple], window_capacity: usize) -> Vec<Tuple> {
    assert!(window_capacity > 0, "window capacity must be at least 1");
    let mut skyline: Vec<Tuple> = Vec::new();
    let mut input: Vec<Tuple> = tuples.to_vec();
    while !input.is_empty() {
        let mut window: Vec<(usize, Tuple)> = Vec::new();
        let mut overflow: Vec<Tuple> = Vec::new();
        let mut first_spill: Option<usize> = None;
        'next: for (pos, t) in input.iter().enumerate() {
            let mut i = 0;
            while i < window.len() {
                if !window_step(&mut window, &mut i, t) {
                    continue 'next;
                }
            }
            if window.len() < window_capacity {
                window.push((pos, t.clone()));
            } else {
                first_spill.get_or_insert(pos);
                overflow.push(t.clone());
            }
        }
        let confirm_before = first_spill.unwrap_or(usize::MAX);
        let mut carried: Vec<Tuple> = Vec::new();
        for (pos, t) in window {
            if pos < confirm_before {
                skyline.push(t);
            } else {
                carried.push(t);
            }
        }
        // Unconfirmed window tuples go first: they have already survived
        // this pass's comparisons and tend to be strong dominators.
        carried.extend(overflow);
        input = carried;
    }
    skyline.sort_by_key(|t| t.id);
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_datagen::{generate, Distribution};

    fn t(id: u64, vals: &[f64]) -> Tuple {
        Tuple::new(id, vals.to_vec())
    }

    #[test]
    fn trivial_cases() {
        assert!(bnl_skyline(&[]).is_empty());
        let one = vec![t(3, &[0.5, 0.5])];
        assert_eq!(bnl_skyline(&one), one);
    }

    #[test]
    fn drops_dominated_and_evicts() {
        let input = vec![t(0, &[0.5, 0.5]), t(1, &[0.1, 0.1]), t(2, &[0.6, 0.6])];
        let sky = bnl_skyline(&input);
        assert_eq!(sky.iter().map(|x| x.id).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn keeps_incomparable_chain() {
        let input: Vec<Tuple> = (0..10)
            .map(|i| t(i, &[i as f64 / 10.0, (9 - i) as f64 / 10.0]))
            .collect();
        assert_eq!(bnl_skyline(&input).len(), 10);
    }

    #[test]
    fn windowed_matches_unbounded_on_random_data() {
        for dist in [Distribution::Independent, Distribution::Anticorrelated] {
            let ds = generate(dist, 3, 500, 77);
            let full = bnl_skyline(ds.tuples());
            for cap in [1, 2, 7, 32, 1000] {
                assert_eq!(
                    bnl_skyline_windowed(ds.tuples(), cap),
                    full,
                    "window {cap} broke BNL on {dist:?}"
                );
            }
        }
    }

    #[test]
    fn windowed_handles_all_dominated_by_first() {
        let mut input = vec![t(0, &[0.01, 0.01])];
        for i in 1..100 {
            input.push(t(i, &[0.5 + (i as f64 % 7.0) / 100.0, 0.5]));
        }
        assert_eq!(bnl_skyline_windowed(&input, 3).len(), 1);
    }

    #[test]
    fn duplicates_survive_in_both_variants() {
        let input = vec![t(0, &[0.2, 0.2]), t(1, &[0.2, 0.2])];
        assert_eq!(bnl_skyline(&input).len(), 2);
        assert_eq!(bnl_skyline_windowed(&input, 1).len(), 2);
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn zero_window_rejected() {
        bnl_skyline_windowed(&[], 0);
    }
}
