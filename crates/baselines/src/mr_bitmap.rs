//! MR-Bitmap (Zhang, Zhou, Guan — DASFAA 2011 workshops), built on the
//! bitmap skyline algorithm of Tan, Eng, Ooi (VLDB 2001).
//!
//! The bitmap algorithm decides dominance with bit-slice arithmetic: with
//! tuples numbered `0..n`, keep for every dimension `i` and every distinct
//! value rank `r` the bitmap `LE_i[r]` of tuples whose dimension-`i` value
//! ranks ≤ `r`. A tuple `p` with ranks `(r_1, …, r_d)` is dominated iff
//!
//! ```text
//! (⋂_i LE_i[r_i])  ∩  (⋃_i LE_i[r_i − 1])  ≠ ∅
//! ```
//!
//! — the left side is "every tuple ≤ p on all dimensions", the right side
//! "strictly better somewhere"; their intersection is exactly the set of
//! dominators. The structure only fits dimensions with a **limited number
//! of distinct values**, which is why the paper excludes MR-Bitmap from
//! its experiments on continuous domains ("we skip MR-Bitmap because it
//! cannot apply to the continuous numeric data domains"). This module
//! implements it anyway, together with a [`discretize`] substrate, so the
//! excluded comparison can be reproduced on its own terms.
//!
//! Two MapReduce phases: per-dimension reducers build the bit slices in
//! parallel; a second job evaluates every tuple against the broadcast
//! slices, using **multiple reducers** (the capability the paper credits
//! MR-Bitmap with).

use std::collections::BTreeMap;
use std::sync::Arc;

use skymr_common::{dataset::canonicalize, BitGrid, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, ByteSized, Emitter, JobConfig, MapFactory, MapTask, ModuloPartitioner,
    OutputCollector, PipelineMetrics, ReduceFactory, ReduceTask, TaskContext,
};

use crate::config::{BaselineConfig, BaselineRun};

/// Snaps every value onto a `k`-value grid per dimension
/// (`v ↦ (⌊v·k⌋ + ½)/k`), producing the limited-distinct-value datasets
/// MR-Bitmap requires. Note the result is a *different* dataset: its
/// skyline is the skyline of the discretized tuples.
///
/// ```
/// use skymr_baselines::discretize;
/// use skymr_common::{Dataset, Tuple};
///
/// let ds = Dataset::new(1, vec![Tuple::new(0, vec![0.13]), Tuple::new(1, vec![0.11])]).unwrap();
/// let d = discretize(&ds, 4);
/// // Both values land on the same of the 4 grid points: 0.125.
/// assert_eq!(d.tuples()[0].values[0], d.tuples()[1].values[0]);
/// ```
pub fn discretize(dataset: &Dataset, k: usize) -> Dataset {
    assert!(k >= 1, "need at least one distinct value per dimension");
    let tuples = dataset
        .tuples()
        .iter()
        .map(|t| {
            let values: Vec<f64> = t
                .values
                .iter()
                .map(|&v| (((v * k as f64).floor()).min(k as f64 - 1.0) + 0.5) / k as f64)
                .collect();
            Tuple::new(t.id, values)
        })
        .collect();
    Dataset::new_unchecked(dataset.dim(), tuples)
}

/// The bit slices of one dimension.
#[derive(Debug, Clone)]
pub struct DimSlices {
    /// Sorted distinct values of the dimension.
    pub values: Vec<f64>,
    /// `le[r]` = bitmap of tuples whose value ranks ≤ `r`.
    pub le: Vec<BitGrid>,
}

impl DimSlices {
    /// The rank of `v` in this dimension.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not one of the dimension's distinct values (every
    /// phase-2 tuple went through phase 1, so this indicates corruption).
    pub fn rank_of(&self, v: f64) -> usize {
        self.values
            .binary_search_by(|probe| probe.total_cmp(&v))
            .expect("value seen in phase 2 but not in phase 1")
    }
}

impl ByteSized for DimSlices {
    fn byte_size(&self) -> u64 {
        self.values.byte_size() + self.le.iter().map(ByteSized::byte_size).sum::<u64>()
    }
}

/// The full bitmap index over all dimensions.
#[derive(Debug)]
pub struct BitmapIndex {
    /// Number of indexed tuples.
    pub num_tuples: usize,
    /// Per-dimension slices.
    pub dims: Vec<DimSlices>,
}

impl BitmapIndex {
    /// `true` iff tuple number `index` with the given (discretized) values
    /// is dominated by some other indexed tuple.
    pub fn is_dominated(&self, values: &[f64]) -> bool {
        debug_assert_eq!(values.len(), self.dims.len());
        let mut all_le: Option<BitGrid> = None;
        let mut any_lt = BitGrid::zeros(self.num_tuples);
        for (dim, &v) in self.dims.iter().zip(values.iter()) {
            let r = dim.rank_of(v);
            match &mut all_le {
                None => all_le = Some(dim.le[r].clone()),
                Some(acc) => acc.and_assign(&dim.le[r]),
            }
            if r > 0 {
                any_lt.or_assign(&dim.le[r - 1]);
            }
        }
        all_le.is_some_and(|a| a.intersects(&any_lt))
    }

    /// Total broadcast size of the index.
    pub fn byte_size(&self) -> u64 {
        self.dims.iter().map(ByteSized::byte_size).sum()
    }
}

// ---------------------------------------------------------------------
// Phase 1: build the per-dimension slices.
// ---------------------------------------------------------------------

/// Phase-1 mapper factory: emits `(dimension, (tuple index, value))`.
#[derive(Debug)]
pub struct SliceMapFactory;

/// Phase-1 mapper.
#[derive(Debug)]
pub struct SliceMapTask;

impl MapTask for SliceMapTask {
    type In = (u32, Tuple);
    type K = u32;
    type V = (u32, f64);

    fn map(&mut self, input: &(u32, Tuple), out: &mut Emitter<u32, (u32, f64)>) {
        for (dim, &v) in input.1.values.iter().enumerate() {
            out.emit(dim as u32, (input.0, v));
        }
    }
}

impl MapFactory for SliceMapFactory {
    type Task = SliceMapTask;
    fn create(&self, _ctx: &TaskContext) -> SliceMapTask {
        SliceMapTask
    }
}

/// Phase-1 reducer factory: builds one dimension's slices.
#[derive(Debug)]
pub struct SliceReduceFactory {
    num_tuples: usize,
}

/// Phase-1 reducer.
#[derive(Debug)]
pub struct SliceReduceTask {
    num_tuples: usize,
}

impl ReduceTask for SliceReduceTask {
    type K = u32;
    type V = (u32, f64);
    type Out = (u32, DimSlices);

    fn reduce(
        &mut self,
        key: u32,
        values: Vec<(u32, f64)>,
        out: &mut OutputCollector<(u32, DimSlices)>,
    ) {
        let mut distinct: Vec<f64> = values.iter().map(|&(_, v)| v).collect();
        distinct.sort_by(f64::total_cmp);
        distinct.dedup();
        // One bitmap per rank: tuples with value rank <= r.
        let mut le: Vec<BitGrid> = (0..distinct.len())
            .map(|_| BitGrid::zeros(self.num_tuples))
            .collect();
        for &(index, v) in &values {
            let r = distinct
                .binary_search_by(|probe| probe.total_cmp(&v))
                .expect("distinct list covers all values");
            le[r].set(index as usize);
        }
        // Make the slices cumulative.
        for r in 1..le.len() {
            let (head, tail) = le.split_at_mut(r);
            tail[0].or_assign(&head[r - 1]);
        }
        out.collect((
            key,
            DimSlices {
                values: distinct,
                le,
            },
        ));
    }
}

impl ReduceFactory for SliceReduceFactory {
    type Task = SliceReduceTask;
    fn create(&self, _ctx: &TaskContext) -> SliceReduceTask {
        SliceReduceTask {
            num_tuples: self.num_tuples,
        }
    }
}

// ---------------------------------------------------------------------
// Phase 2: evaluate every tuple against the broadcast index.
// ---------------------------------------------------------------------

/// Phase-2 mapper factory: routes tuples to evaluation reducers.
#[derive(Debug)]
pub struct EvalMapFactory;

/// Phase-2 mapper.
#[derive(Debug)]
pub struct EvalMapTask;

impl MapTask for EvalMapTask {
    type In = (u32, Tuple);
    type K = u32;
    type V = Tuple;

    fn map(&mut self, input: &(u32, Tuple), out: &mut Emitter<u32, Tuple>) {
        out.emit(input.0, input.1.clone());
    }
}

impl MapFactory for EvalMapFactory {
    type Task = EvalMapTask;
    fn create(&self, _ctx: &TaskContext) -> EvalMapTask {
        EvalMapTask
    }
}

/// Phase-2 reducer factory: holds the broadcast index.
#[derive(Debug)]
pub struct EvalReduceFactory {
    index: Arc<BitmapIndex>,
}

/// Phase-2 reducer.
#[derive(Debug)]
pub struct EvalReduceTask {
    index: Arc<BitmapIndex>,
}

impl ReduceTask for EvalReduceTask {
    type K = u32;
    type V = Tuple;
    type Out = Tuple;

    fn reduce(&mut self, _key: u32, values: Vec<Tuple>, out: &mut OutputCollector<Tuple>) {
        for t in values {
            if !self.index.is_dominated(&t.values) {
                out.collect(t);
            }
        }
    }
}

impl ReduceFactory for EvalReduceFactory {
    type Task = EvalReduceTask;
    fn create(&self, _ctx: &TaskContext) -> EvalReduceTask {
        EvalReduceTask {
            index: Arc::clone(&self.index),
        }
    }
}

/// Runs the two-phase MR-Bitmap pipeline on a limited-distinct-value
/// dataset (pass continuous data through [`discretize`] first; the result
/// is the skyline of the *discretized* tuples).
pub fn mr_bitmap(dataset: &Dataset, config: &BaselineConfig) -> skymr_common::Result<BaselineRun> {
    let indexed: Vec<(u32, Tuple)> = dataset
        .tuples()
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u32, t.clone()))
        .collect();
    let splits: Vec<Vec<(u32, Tuple)>> = {
        let mut s: Vec<Vec<(u32, Tuple)>> = (0..config.mappers).map(|_| Vec::new()).collect();
        for (i, item) in indexed.into_iter().enumerate() {
            s[i % config.mappers].push(item); // xtask: allow(panic-reachability) — mappers > 0 validated by JobConfig; i % mappers < s.len()
        }
        s
    };
    let mut metrics = PipelineMetrics::new();
    let ft = &config.fault_tolerance;

    // Phase 1: per-dimension slice construction.
    let r1 = dataset.dim().min(config.cluster.reduce_slots).max(1);
    let job1 = JobConfig::new("mr-bitmap-slices", r1).with_fault_tolerance(ft);
    let outcome1 = metrics.track(run_job(
        &config.cluster,
        &job1,
        &splits,
        &SliceMapFactory,
        &SliceReduceFactory {
            num_tuples: dataset.len(),
        },
        &ModuloPartitioner,
    ))?;

    let mut dims: BTreeMap<u32, DimSlices> = BTreeMap::new();
    for (dim, slices) in outcome1.into_flat_output() {
        dims.insert(dim, slices);
    }
    let index = Arc::new(BitmapIndex {
        num_tuples: dataset.len(),
        dims: dims.into_values().collect(),
    });

    // Phase 2: parallel evaluation with the broadcast index.
    let r2 = config.cluster.reduce_slots.max(1);
    let job2 = JobConfig::new("mr-bitmap-eval", r2)
        .with_cache_bytes(index.byte_size())
        .with_fault_tolerance(ft);
    let outcome2 = metrics.track(run_job(
        &config.cluster,
        &job2,
        &splits,
        &EvalMapFactory,
        &EvalReduceFactory { index },
        &ModuloPartitioner,
    ))?;

    Ok(BaselineRun {
        skyline: canonicalize(outcome2.into_flat_output()),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    fn discretized(dist: Distribution, dim: usize, card: usize, k: usize, seed: u64) -> Dataset {
        discretize(&generate(dist, dim, card, seed), k)
    }

    #[test]
    fn discretize_limits_distinct_values() {
        let ds = discretized(Distribution::Independent, 3, 500, 8, 141);
        for d in 0..3 {
            let mut vals: Vec<u64> = ds
                .tuples()
                .iter()
                .map(|t| (t.values[d] * 1e9) as u64)
                .collect();
            vals.sort_unstable();
            vals.dedup();
            assert!(
                vals.len() <= 8,
                "dimension {d} has {} distinct values",
                vals.len()
            );
        }
        // Values stay inside [0,1).
        for t in ds.tuples() {
            assert!(t.values.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn matches_bnl_oracle_on_discretized_data() {
        for dist in [Distribution::Independent, Distribution::Anticorrelated] {
            for (dim, k) in [(2usize, 4usize), (3, 8), (5, 6)] {
                let ds = discretized(dist, dim, 400, k, 142);
                let run = mr_bitmap(&ds, &BaselineConfig::test()).unwrap();
                assert_eq!(
                    run.skyline,
                    bnl_skyline(ds.tuples()),
                    "MR-Bitmap wrong on {dist:?} d={dim} k={k}"
                );
            }
        }
    }

    #[test]
    fn index_classifies_simple_cases() {
        let ds = Dataset::new(
            2,
            vec![
                Tuple::new(0, vec![0.1, 0.1]),
                Tuple::new(1, vec![0.3, 0.3]),  // dominated by 0
                Tuple::new(2, vec![0.1, 0.1]),  // duplicate of 0: not dominated
                Tuple::new(3, vec![0.05, 0.9]), // incomparable
            ],
        )
        .unwrap();
        let run = mr_bitmap(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(run.skyline_ids(), vec![0, 2, 3]);
    }

    #[test]
    fn duplicates_are_kept() {
        let ds = Dataset::new(
            1,
            vec![
                Tuple::new(0, vec![0.25]),
                Tuple::new(1, vec![0.25]),
                Tuple::new(2, vec![0.75]),
            ],
        )
        .unwrap();
        let run = mr_bitmap(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(run.skyline_ids(), vec![0, 1]);
    }

    #[test]
    fn runs_two_jobs_and_charges_index_broadcast() {
        let ds = discretized(Distribution::Independent, 3, 300, 8, 143);
        let run = mr_bitmap(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(run.metrics.jobs.len(), 2);
        assert_eq!(run.metrics.jobs[0].name, "mr-bitmap-slices");
        assert_eq!(run.metrics.jobs[1].name, "mr-bitmap-eval");
        assert!(
            run.metrics.jobs[1].cache_bytes > 0,
            "the bitmap index must be broadcast"
        );
    }

    #[test]
    fn invariant_to_job_shape() {
        let ds = discretized(Distribution::Anticorrelated, 3, 400, 6, 144);
        let oracle = bnl_skyline(ds.tuples());
        for mappers in [1usize, 3, 8] {
            let config = BaselineConfig::test().with_mappers(mappers);
            assert_eq!(mr_bitmap(&ds, &config).unwrap().skyline, oracle);
        }
    }

    #[test]
    fn empty_input() {
        let ds = Dataset::new(2, vec![]).unwrap();
        assert!(mr_bitmap(&ds, &BaselineConfig::test())
            .unwrap()
            .skyline
            .is_empty());
    }

    #[test]
    fn survives_injected_failures() {
        let ds = discretized(Distribution::Independent, 3, 250, 8, 145);
        let clean = mr_bitmap(&ds, &BaselineConfig::test()).unwrap();
        let mut config = BaselineConfig::test();
        config.fault_tolerance =
            skymr_mapreduce::FaultTolerance::with_plan(skymr_mapreduce::FaultPlan::fail_maps([0]));
        let failed = mr_bitmap(&ds, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
        // Both jobs share the plan, so each charges one map retry.
        assert_eq!(failed.metrics.jobs[0].map_retries, 1);
        assert_eq!(failed.metrics.jobs[1].map_retries, 1);
    }
}
