//! SKY-MR (Park, Min, Shim — PVLDB 2013), the sample-based competitor the
//! paper's related-work section discusses.
//!
//! Before MapReduce starts, SKY-MR draws a random **sample** of the
//! dataset and builds a [`SkyQuadtree`] whose dominated leaves are marked
//! pruned ("to identify dominated sampled regions"). The tree — like the
//! paper's bitstring — is broadcast to every mapper, which then
//!
//! 1. discards tuples falling in pruned leaves (they are dominated by a
//!    sample tuple, which is itself part of the dataset),
//! 2. maintains a BNL local skyline per surviving leaf, and
//! 3. routes each leaf's local skyline to the reducer owning the leaf,
//!    replicating it additionally to the reducers owning leaves whose
//!    region it may dominate.
//!
//! Reducers then finalize their leaves **in parallel** — SKY-MR is, like
//! MR-GPMRS, a multi-reducer algorithm; the contrast the paper draws is
//! that its pruning structure needs an up-front sampling pass over the
//! data, where the bitstring is computed *by* MapReduce.

use std::sync::Arc;

use skymr_common::dominance::dominates;
use skymr_common::{dataset::canonicalize, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, ClusterConfig, Emitter, FaultTolerance, JobConfig, MapFactory, MapTask,
    ModuloPartitioner, OutputCollector, PipelineMetrics, ReduceFactory, ReduceTask, TaskContext,
};

use crate::config::BaselineRun;
use crate::mr_bnl::window_insert;
use crate::quadtree::SkyQuadtree;

/// Configuration for SKY-MR.
#[derive(Debug, Clone)]
pub struct SkyMrConfig {
    /// Number of mappers (input splits).
    pub mappers: usize,
    /// Number of reducers (leaf owners).
    pub reducers: usize,
    /// Sample size for the sky-quadtree (drawn deterministically from the
    /// dataset).
    pub sample_size: usize,
    /// Maximum sample tuples per quadtree leaf before splitting.
    pub split_threshold: usize,
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Fault injection, retry budget, and speculation for both jobs.
    pub fault_tolerance: FaultTolerance,
}

impl Default for SkyMrConfig {
    fn default() -> Self {
        let cluster = ClusterConfig::default();
        Self {
            mappers: cluster.map_slots,
            reducers: cluster.reduce_slots,
            sample_size: 1_000,
            split_threshold: 24,
            cluster,
            fault_tolerance: FaultTolerance::none(),
        }
    }
}

impl SkyMrConfig {
    /// Small, fast configuration for tests.
    pub fn test() -> Self {
        Self {
            mappers: 4,
            reducers: 4,
            sample_size: 100,
            split_threshold: 8,
            cluster: ClusterConfig::test(),
            fault_tolerance: FaultTolerance::none(),
        }
    }
}

/// The shared, broadcast planning state derived from the sample.
#[derive(Debug)]
pub struct SkyMrPlan {
    /// The sky-quadtree.
    pub tree: SkyQuadtree,
    /// For every leaf: the reducer that owns (finalizes) it.
    owners: Vec<usize>,
    /// For every leaf `l`: the reducers that need `l`'s local skyline as a
    /// comparison source or target (owner of `l` plus owners of every leaf
    /// `b` with `l ∈ ADR(b)`), deduplicated and sorted.
    destinations: Vec<Vec<usize>>,
    /// ADR leaf lists per leaf.
    adr: Vec<Vec<usize>>,
}

impl SkyMrPlan {
    /// Derives the plan from a sample.
    pub fn build(dim: usize, sample: &[Tuple], split_threshold: usize, reducers: usize) -> Self {
        assert!(reducers > 0, "a plan needs at least one reducer");
        let tree = SkyQuadtree::build(dim, sample, split_threshold);
        let n = tree.num_leaves();
        let owners: Vec<usize> = (0..n).map(|l| l % reducers).collect(); // xtask: allow(panic-reachability) — reducers > 0 asserted at entry
        let adr: Vec<Vec<usize>> = (0..n).map(|l| tree.adr_leaves(l)).collect();
        let mut destinations: Vec<Vec<usize>> = (0..n).map(|l| vec![owners[l]]).collect();
        for (b, sources) in adr.iter().enumerate() {
            for &l in sources {
                destinations[l].push(owners[b]);
            }
        }
        for d in &mut destinations {
            d.sort_unstable();
            d.dedup();
        }
        Self {
            tree,
            owners,
            destinations,
            adr,
        }
    }

    /// The reducer owning leaf `l`.
    pub fn owner(&self, leaf: usize) -> usize {
        self.owners[leaf]
    }

    /// Approximate broadcast size of the plan (tree boxes + tables).
    pub fn cache_bytes(&self) -> u64 {
        let per_leaf = (2 * self.tree.dim() * 8 + 16) as u64;
        self.tree.num_leaves() as u64 * per_leaf
    }
}

/// A mapper's emitted value: `(leaf, local skyline)` pairs.
pub type LeafPayload = Vec<(u32, Vec<Tuple>)>;

/// Map side: quadtree filter + per-leaf local skylines.
#[derive(Debug)]
pub struct SkyMrMapFactory {
    plan: Arc<SkyMrPlan>,
}

/// Per-split mapper state.
#[derive(Debug)]
pub struct SkyMrMapTask {
    plan: Arc<SkyMrPlan>,
    leaves: std::collections::BTreeMap<u32, Vec<Tuple>>,
}

impl MapTask for SkyMrMapTask {
    type In = Tuple;
    type K = u32;
    type V = LeafPayload;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u32, LeafPayload>) {
        if let Some(leaf) = self.plan.tree.locate(input) {
            window_insert(self.leaves.entry(leaf as u32).or_default(), input.clone());
        }
    }

    fn finish(&mut self, out: &mut Emitter<u32, LeafPayload>) {
        // Group the local skylines by destination reducer.
        let mut per_reducer: std::collections::BTreeMap<usize, LeafPayload> =
            std::collections::BTreeMap::new();
        for (&leaf, skyline) in &self.leaves {
            for &dest in &self.plan.destinations[leaf as usize] {
                per_reducer
                    .entry(dest)
                    .or_default()
                    .push((leaf, skyline.clone()));
            }
        }
        for (dest, payload) in per_reducer {
            out.emit(dest as u32, payload);
        }
    }
}

impl MapFactory for SkyMrMapFactory {
    type Task = SkyMrMapTask;
    fn create(&self, _ctx: &TaskContext) -> SkyMrMapTask {
        SkyMrMapTask {
            plan: Arc::clone(&self.plan),
            leaves: Default::default(),
        }
    }
}

/// Reduce side: finalize owned leaves against their ADR sources.
#[derive(Debug)]
pub struct SkyMrReduceFactory {
    plan: Arc<SkyMrPlan>,
}

/// Per-reducer state.
#[derive(Debug)]
pub struct SkyMrReduceTask {
    plan: Arc<SkyMrPlan>,
}

impl ReduceTask for SkyMrReduceTask {
    type K = u32;
    type V = LeafPayload;
    type Out = Tuple;

    fn reduce(&mut self, key: u32, values: Vec<LeafPayload>, out: &mut OutputCollector<Tuple>) {
        let me = key as usize;
        // Collect per-leaf unions; merge (BNL) only the leaves this
        // reducer owns, concatenate the rest (sources).
        let mut owned: std::collections::BTreeMap<u32, Vec<Tuple>> = Default::default();
        let mut sources: std::collections::BTreeMap<u32, Vec<Tuple>> = Default::default();
        for payload in values {
            for (leaf, tuples) in payload {
                if self.plan.owner(leaf as usize) == me {
                    let window = owned.entry(leaf).or_default();
                    for t in tuples {
                        window_insert(window, t);
                    }
                } else {
                    sources.entry(leaf).or_default().extend(tuples);
                }
            }
        }
        // Finalize each owned leaf against its ADR leaves (owned ones use
        // their merged windows; foreign ones their concatenations).
        let leaf_ids: Vec<u32> = owned.keys().copied().collect();
        for leaf in leaf_ids {
            let mut window = owned.remove(&leaf).expect("listed leaf present");
            for &a in &self.plan.adr[leaf as usize] {
                let a = a as u32;
                let dominators: Option<&[Tuple]> = owned
                    .get(&a)
                    .map(Vec::as_slice)
                    .or_else(|| sources.get(&a).map(Vec::as_slice));
                if let Some(dominators) = dominators {
                    window.retain(|t| !dominators.iter().any(|d| dominates(d, t)));
                    if window.is_empty() {
                        break;
                    }
                }
            }
            for t in &window {
                out.collect(t.clone());
            }
            owned.insert(leaf, window);
        }
    }
}

impl ReduceFactory for SkyMrReduceFactory {
    type Task = SkyMrReduceTask;
    fn create(&self, _ctx: &TaskContext) -> SkyMrReduceTask {
        SkyMrReduceTask {
            plan: Arc::clone(&self.plan),
        }
    }
}

/// Draws a deterministic sample of `size` tuples (evenly strided — the
/// datasets in this workspace are generated in random order, so a stride
/// is an unbiased sample, and determinism keeps runs reproducible).
pub fn stride_sample(dataset: &Dataset, size: usize) -> Vec<Tuple> {
    if size == 0 || dataset.is_empty() {
        return Vec::new();
    }
    let stride = (dataset.len() / size.min(dataset.len())).max(1);
    dataset
        .tuples()
        .iter()
        .step_by(stride)
        .take(size)
        .cloned()
        .collect()
}

/// Sampling-job mapper: emits every `stride`-th tuple of its split.
#[derive(Debug)]
pub struct SampleMapFactory {
    stride: usize,
}

/// Per-split sampling state.
#[derive(Debug)]
pub struct SampleMapTask {
    stride: usize,
    seen: usize,
}

impl MapTask for SampleMapTask {
    type In = Tuple;
    type K = u8;
    type V = Tuple;

    fn map(&mut self, input: &Tuple, out: &mut Emitter<u8, Tuple>) {
        if self.seen % self.stride == 0 {
            out.emit(0, input.clone());
        }
        self.seen += 1;
    }
}

impl MapFactory for SampleMapFactory {
    type Task = SampleMapTask;
    fn create(&self, _ctx: &TaskContext) -> SampleMapTask {
        SampleMapTask {
            stride: self.stride.max(1),
            seen: 0,
        }
    }
}

/// Sampling-job reducer: builds the sky-quadtree plan from the collected
/// sample.
#[derive(Debug)]
pub struct SampleReduceFactory {
    dim: usize,
    split_threshold: usize,
    reducers: usize,
}

/// The single plan-building reducer.
#[derive(Debug)]
pub struct SampleReduceTask {
    dim: usize,
    split_threshold: usize,
    reducers: usize,
}

impl ReduceTask for SampleReduceTask {
    type K = u8;
    type V = Tuple;
    type Out = SkyMrPlan;

    fn reduce(&mut self, _key: u8, values: Vec<Tuple>, out: &mut OutputCollector<SkyMrPlan>) {
        out.collect(SkyMrPlan::build(
            self.dim,
            &values,
            self.split_threshold,
            self.reducers,
        ));
    }
}

impl ReduceFactory for SampleReduceFactory {
    type Task = SampleReduceTask;
    fn create(&self, _ctx: &TaskContext) -> SampleReduceTask {
        SampleReduceTask {
            dim: self.dim,
            split_threshold: self.split_threshold,
            reducers: self.reducers,
        }
    }
}

/// Runs SKY-MR end to end as a two-job pipeline: a sampling job that draws
/// the sample and builds the sky-quadtree plan (so the pruning structure's
/// cost is on the clock, comparable to the paper's bitstring job), then
/// the skyline job. The plan is broadcast like a distributed-cache file.
pub fn sky_mr(dataset: &Dataset, config: &SkyMrConfig) -> skymr_common::Result<BaselineRun> {
    let mut metrics = PipelineMetrics::new();
    let ft = &config.fault_tolerance;
    let splits = dataset.split(config.mappers);
    let dim = dataset.dim().max(1);
    let reducers = config.reducers.max(1);

    // Job 1: sample + plan construction.
    let stride = if config.sample_size == 0 {
        usize::MAX
    } else {
        (dataset.len() / config.sample_size.min(dataset.len().max(1))).max(1) // xtask: allow(panic-reachability) — sample_size != 0 in this branch and .min(len.max(1)) keeps it >= 1
    };
    let sample_job = JobConfig::new("sky-mr-sample", 1).with_fault_tolerance(ft);
    let outcome1 = metrics.track(run_job(
        &config.cluster,
        &sample_job,
        &splits,
        &SampleMapFactory { stride },
        &SampleReduceFactory {
            dim,
            split_threshold: config.split_threshold.max(1),
            reducers,
        },
        &skymr_mapreduce::SingleReducerPartitioner,
    ))?;
    let plan = Arc::new(
        outcome1
            .into_flat_output()
            .into_iter()
            .next()
            .unwrap_or_else(|| SkyMrPlan::build(dim, &[], config.split_threshold.max(1), reducers)),
    );

    // Job 2: the skyline computation.
    let job = JobConfig::new("sky-mr", reducers)
        .with_cache_bytes(plan.cache_bytes())
        .with_fault_tolerance(ft);
    let outcome = metrics.track(run_job(
        &config.cluster,
        &job,
        &splits,
        &SkyMrMapFactory {
            plan: Arc::clone(&plan),
        },
        &SkyMrReduceFactory {
            plan: Arc::clone(&plan),
        },
        &ModuloPartitioner,
    ))?;
    metrics.push(outcome.metrics.clone());
    Ok(BaselineRun {
        skyline: canonicalize(outcome.into_flat_output()),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn matches_bnl_oracle_across_distributions() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
            Distribution::Clustered { clusters: 3 },
        ] {
            for dim in [2usize, 3, 5] {
                let ds = generate(dist, dim, 600, 131);
                let run = sky_mr(&ds, &SkyMrConfig::test()).unwrap();
                assert_eq!(
                    run.skyline,
                    bnl_skyline(ds.tuples()),
                    "SKY-MR wrong on {dist:?} d={dim}"
                );
            }
        }
    }

    #[test]
    fn invariant_to_job_shape() {
        let ds = generate(Distribution::Anticorrelated, 3, 500, 132);
        let oracle = bnl_skyline(ds.tuples());
        for mappers in [1usize, 3, 8] {
            for reducers in [1usize, 2, 5] {
                let config = SkyMrConfig {
                    mappers,
                    reducers,
                    ..SkyMrConfig::test()
                };
                assert_eq!(
                    sky_mr(&ds, &config).unwrap().skyline,
                    oracle,
                    "m={mappers} r={reducers} broke SKY-MR"
                );
            }
        }
    }

    #[test]
    fn invariant_to_sample_size() {
        let ds = generate(Distribution::Independent, 3, 700, 133);
        let oracle = bnl_skyline(ds.tuples());
        for sample_size in [0usize, 1, 10, 100, 700] {
            let config = SkyMrConfig {
                sample_size,
                ..SkyMrConfig::test()
            };
            assert_eq!(
                sky_mr(&ds, &config).unwrap().skyline,
                oracle,
                "sample_size={sample_size} broke SKY-MR"
            );
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty = Dataset::new(2, vec![]).unwrap();
        assert!(sky_mr(&empty, &SkyMrConfig::test())
            .unwrap()
            .skyline
            .is_empty());
        let one = Dataset::new(2, vec![Tuple::new(5, vec![0.2, 0.8])]).unwrap();
        assert_eq!(
            sky_mr(&one, &SkyMrConfig::test()).unwrap().skyline_ids(),
            vec![5]
        );
    }

    #[test]
    fn survives_injected_failures() {
        let ds = generate(Distribution::Anticorrelated, 3, 400, 134);
        let clean = sky_mr(&ds, &SkyMrConfig::test()).unwrap();
        let mut config = SkyMrConfig::test();
        config.fault_tolerance = FaultTolerance::with_plan(
            skymr_mapreduce::FaultPlan::fail_maps([0])
                .with_reduce_fault(1, skymr_mapreduce::TaskFault::lost(1))
                .for_job("sky-mr"),
        );
        let failed = sky_mr(&ds, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
        assert_eq!(failed.metrics.jobs[1].map_retries, 1);
        assert_eq!(failed.metrics.jobs[1].reduce_retries, 1);
    }

    #[test]
    fn stride_sample_is_deterministic_subset() {
        let ds = generate(Distribution::Independent, 2, 1_000, 135);
        let a = stride_sample(&ds, 100);
        let b = stride_sample(&ds, 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        let ids: std::collections::BTreeSet<u64> = ds.tuples().iter().map(|t| t.id).collect();
        assert!(
            a.iter().all(|t| ids.contains(&t.id)),
            "sample must be a subset of the data"
        );
    }
}
