//! The sky-quadtree substrate for SKY-MR (Park, Min, Shim — PVLDB 2013).
//!
//! A *sky-quadtree* is a quadtree built over a small random **sample** of
//! the dataset: each node covers an axis-aligned box and splits at its
//! midpoint into `2^d` children until a leaf holds at most `split_threshold`
//! sample tuples. After building, leaves wholly dominated by a sample
//! skyline tuple are marked *pruned* — any real tuple falling there is
//! dominated by that sample tuple and can be discarded by the mappers
//! before any comparison, the same early-pruning idea as the paper's
//! bitstring but driven by a sample instead of a full pre-job.
//!
//! Leaves play the role the grid partitions play for MR-GPMRS: each
//! surviving leaf is a unit of reducer parallelism, and a leaf's
//! *anti-dominating* leaves (those whose region may contain dominators)
//! determine which candidate tuples must be replicated to finalize it.

use skymr_common::dominance::dominates;
use skymr_common::Tuple;

/// Maximum tree depth; beyond this, leaves simply keep their samples
/// (guards against degenerate duplicate-heavy samples).
const MAX_DEPTH: usize = 12;

/// One node of the sky-quadtree.
#[derive(Debug, Clone)]
struct Node {
    /// Lower corner of the region.
    lo: Vec<f64>,
    /// Upper corner of the region (exclusive).
    hi: Vec<f64>,
    /// Child node indexes (`2^d` of them) or empty for a leaf.
    children: Vec<usize>,
    /// For leaves: the stable leaf id; `usize::MAX` for internal nodes.
    leaf_id: usize,
    /// For leaves: whether the whole region is dominated by a sample
    /// skyline tuple.
    pruned: bool,
}

/// A sky-quadtree over `[0,1)^d`.
#[derive(Debug, Clone)]
pub struct SkyQuadtree {
    dim: usize,
    nodes: Vec<Node>,
    /// Leaf-id → node index.
    leaves: Vec<usize>,
}

impl SkyQuadtree {
    /// Builds the tree from a sample: split until ≤ `split_threshold`
    /// sample tuples per leaf, then prune leaves dominated by the sample's
    /// skyline.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `split_threshold == 0`.
    pub fn build(dim: usize, sample: &[Tuple], split_threshold: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(split_threshold > 0, "split threshold must be positive");
        let mut tree = Self {
            dim,
            nodes: Vec::new(),
            leaves: Vec::new(),
        };
        let root_items: Vec<&Tuple> = sample.iter().collect();
        tree.subdivide(
            vec![0.0; dim],
            vec![1.0; dim],
            &root_items,
            split_threshold,
            0,
        );
        // Prune leaves dominated by the sample skyline: a leaf is pruned
        // iff some sample skyline tuple dominates its lower corner (then
        // every point of the region is dominated).
        let sample_skyline: Vec<&Tuple> = sample
            .iter()
            .filter(|t| !sample.iter().any(|o| dominates(o, t)))
            .collect();
        for &node_idx in &tree.leaves {
            let corner = Tuple::new(u64::MAX, tree.nodes[node_idx].lo.clone());
            if sample_skyline.iter().any(|s| dominates(s, &corner)) {
                tree.nodes[node_idx].pruned = true;
            }
        }
        tree
    }

    fn subdivide(
        &mut self,
        lo: Vec<f64>,
        hi: Vec<f64>,
        items: &[&Tuple],
        split_threshold: usize,
        depth: usize,
    ) -> usize {
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            lo: lo.clone(),
            hi: hi.clone(),
            children: Vec::new(),
            leaf_id: usize::MAX,
            pruned: false,
        });
        if items.len() <= split_threshold || depth >= MAX_DEPTH {
            let leaf_id = self.leaves.len();
            self.nodes[node_idx].leaf_id = leaf_id;
            self.leaves.push(node_idx);
            return node_idx;
        }
        let mid: Vec<f64> = lo
            .iter()
            .zip(hi.iter())
            .map(|(&a, &b)| (a + b) / 2.0)
            .collect();
        let mut buckets: Vec<Vec<&Tuple>> = vec![Vec::new(); 1 << self.dim];
        for &t in items {
            let mut code = 0usize;
            for (k, (&v, &m)) in t.values.iter().zip(mid.iter()).enumerate() {
                if v >= m {
                    code |= 1 << k;
                }
            }
            buckets[code].push(t);
        }
        let mut children = Vec::with_capacity(1 << self.dim);
        for (code, bucket) in buckets.iter().enumerate() {
            let mut clo = lo.clone();
            let mut chi = hi.clone();
            for k in 0..self.dim {
                if code & (1 << k) != 0 {
                    clo[k] = mid[k];
                } else {
                    chi[k] = mid[k];
                }
            }
            children.push(self.subdivide(clo, chi, bucket, split_threshold, depth + 1));
        }
        self.nodes[node_idx].children = children;
        node_idx
    }

    /// Dimensionality of the tree's space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of leaves (pruned and surviving).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of leaves that survived sample-skyline pruning.
    pub fn surviving_leaves(&self) -> usize {
        self.leaves
            .iter()
            .filter(|&&n| !self.nodes[n].pruned)
            .count()
    }

    /// The leaf id containing `t`, or `None` if the leaf is pruned (the
    /// tuple is provably dominated and can be discarded).
    pub fn locate(&self, t: &Tuple) -> Option<usize> {
        debug_assert_eq!(t.dim(), self.dim);
        let mut node = 0usize;
        loop {
            let n = &self.nodes[node];
            if n.children.is_empty() {
                return if n.pruned { None } else { Some(n.leaf_id) };
            }
            let mut code = 0usize;
            for k in 0..self.dim {
                let mid = (n.lo[k] + n.hi[k]) / 2.0;
                if t.values[k] >= mid {
                    code |= 1 << k;
                }
            }
            node = n.children[code];
        }
    }

    /// `true` iff leaf `a`'s region may contain a tuple dominating a tuple
    /// of leaf `b`'s region: `a.lo` must dominate-or-equal `b.hi` on no
    /// dimension reversed — i.e. `a.lo < b.hi` on every dimension and the
    /// two leaves differ.
    pub fn leaf_may_dominate(&self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let na = &self.nodes[self.leaves[a]];
        let nb = &self.nodes[self.leaves[b]];
        na.lo.iter().zip(nb.hi.iter()).all(|(&alo, &bhi)| alo < bhi)
    }

    /// The anti-dominating leaf set of leaf `b`: every surviving leaf that
    /// may contain dominators of `b`'s tuples.
    pub fn adr_leaves(&self, b: usize) -> Vec<usize> {
        (0..self.leaves.len())
            .filter(|&a| !self.nodes[self.leaves[a]].pruned && self.leaf_may_dominate(a, b))
            .collect()
    }

    /// Iterates over surviving leaf ids.
    pub fn surviving_leaf_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.leaves
            .iter()
            .enumerate()
            .filter(|(_, &n)| !self.nodes[n].pruned)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_datagen::{generate, Distribution};

    fn sample(dist: Distribution, dim: usize, n: usize) -> Vec<Tuple> {
        generate(dist, dim, n, 99).into_tuples()
    }

    #[test]
    fn single_leaf_for_tiny_samples() {
        let tree = SkyQuadtree::build(2, &sample(Distribution::Independent, 2, 3), 10);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.surviving_leaves(), 1);
    }

    #[test]
    fn splits_until_threshold() {
        let s = sample(Distribution::Independent, 2, 200);
        let tree = SkyQuadtree::build(2, &s, 10);
        assert!(
            tree.num_leaves() > 4,
            "200 samples at threshold 10 must split"
        );
    }

    #[test]
    fn locate_is_total_over_surviving_space() {
        let s = sample(Distribution::Independent, 3, 150);
        let tree = SkyQuadtree::build(3, &s, 8);
        let data = generate(Distribution::Independent, 3, 1_000, 7);
        for t in data.tuples() {
            if let Some(leaf) = tree.locate(t) {
                assert!(leaf < tree.num_leaves());
            }
        }
    }

    #[test]
    fn pruned_leaves_only_contain_dominated_tuples() {
        let s = sample(Distribution::Independent, 2, 300);
        let tree = SkyQuadtree::build(2, &s, 8);
        let sample_skyline: Vec<&Tuple> = s
            .iter()
            .filter(|t| !s.iter().any(|o| dominates(o, t)))
            .collect();
        let data = generate(Distribution::Independent, 2, 2_000, 13);
        for t in data.tuples() {
            if tree.locate(t).is_none() {
                assert!(
                    sample_skyline.iter().any(|sky| dominates(sky, t)),
                    "tuple {t:?} discarded by a pruned leaf but not dominated by the sample"
                );
            }
        }
    }

    #[test]
    fn prunes_something_on_clustered_far_data() {
        // A sample with an origin point and mass in the far corner must
        // prune the far leaves.
        let mut s = vec![Tuple::new(0, vec![0.01, 0.01])];
        for i in 1..200u64 {
            let f = 0.7 + ((i * 7) % 29) as f64 / 100.0;
            s.push(Tuple::new(i, vec![f, f]));
        }
        let tree = SkyQuadtree::build(2, &s, 8);
        assert!(
            tree.surviving_leaves() < tree.num_leaves(),
            "no leaf pruned despite an origin dominator"
        );
    }

    #[test]
    fn leaf_dominance_is_irreflexive_and_geometric() {
        let s = sample(Distribution::Independent, 2, 300);
        let tree = SkyQuadtree::build(2, &s, 8);
        for b in 0..tree.num_leaves() {
            assert!(!tree.leaf_may_dominate(b, b));
        }
        // The leaf containing the origin may dominate every other leaf.
        let origin_leaf = tree.locate(&Tuple::new(0, vec![1e-6, 1e-6]));
        if let Some(a) = origin_leaf {
            for b in 0..tree.num_leaves() {
                if a != b {
                    assert!(
                        tree.leaf_may_dominate(a, b),
                        "origin leaf must threaten every leaf"
                    );
                }
            }
        }
    }

    #[test]
    fn adr_leaves_cover_actual_dominators() {
        // If a tuple in leaf A dominates a tuple in leaf B, then A must be
        // in B's ADR leaf set.
        let s = sample(Distribution::Anticorrelated, 2, 200);
        let tree = SkyQuadtree::build(2, &s, 8);
        let data = generate(Distribution::Anticorrelated, 2, 800, 17);
        let located: Vec<(usize, &Tuple)> = data
            .tuples()
            .iter()
            .filter_map(|t| tree.locate(t).map(|l| (l, t)))
            .collect();
        for &(la, ta) in &located {
            for &(lb, tb) in &located {
                if la != lb && dominates(ta, tb) {
                    assert!(
                        tree.adr_leaves(lb).contains(&la),
                        "dominator leaf {la} missing from ADR({lb})"
                    );
                }
            }
        }
    }

    #[test]
    fn duplicate_heavy_sample_terminates() {
        let s: Vec<Tuple> = (0..500).map(|i| Tuple::new(i, vec![0.3, 0.7])).collect();
        let tree = SkyQuadtree::build(2, &s, 4);
        assert!(tree.num_leaves() >= 1);
        assert!(tree.locate(&Tuple::new(0, vec![0.3, 0.7])).is_some());
    }
}
