//! MR-SFS (Zhang, Zhou, Guan — DASFAA 2011 workshops).
//!
//! The same two-phase pipeline as [`crate::mr_bnl`] — shuffle every tuple
//! to its `2^d` midpoint cell, local skylines in parallel reducers, then a
//! single-reducer merge — but the phase-1 reducers compute their local
//! skylines with Sort-Filter-Skyline: buffer, presort by the entropy
//! score, filter in one pass. The buffering and sorting make it strictly
//! more expensive than MR-BNL on the same inputs, which is why the paper
//! drops it from the comparison plots; it is included here for
//! completeness.

use skymr_common::{dataset::canonicalize, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, JobConfig, ModuloPartitioner, OutputCollector, PipelineMetrics, ReduceFactory,
    ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::config::{BaselineConfig, BaselineRun};
use crate::mr_bnl::{
    phase1_reducers, CellEntry, ForwardMapFactory, MergeReduceFactory, MergeStrategy,
    PartitionMapFactory,
};
use crate::sfs::{sfs_skyline, SfsOrder};

/// Phase-1 reducer factory: SFS local skyline per cell.
#[derive(Debug)]
pub struct SfsLocalReduceFactory {
    order: SfsOrder,
}

impl SfsLocalReduceFactory {
    /// A factory computing local skylines with the given presort order.
    pub fn new(order: SfsOrder) -> Self {
        Self { order }
    }
}

/// Phase-1 reducer.
#[derive(Debug)]
pub struct SfsLocalReduceTask {
    order: SfsOrder,
}

impl ReduceTask for SfsLocalReduceTask {
    type K = u32;
    type V = Tuple;
    type Out = CellEntry;

    fn reduce(&mut self, key: u32, values: Vec<Tuple>, out: &mut OutputCollector<CellEntry>) {
        out.collect((key, sfs_skyline(&values, self.order)));
    }
}

impl ReduceFactory for SfsLocalReduceFactory {
    type Task = SfsLocalReduceTask;
    fn create(&self, _ctx: &TaskContext) -> SfsLocalReduceTask {
        SfsLocalReduceTask { order: self.order }
    }
}

/// Runs the two-phase MR-SFS pipeline.
pub fn mr_sfs(dataset: &Dataset, config: &BaselineConfig) -> skymr_common::Result<BaselineRun> {
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();
    let ft = &config.fault_tolerance;

    let r1 = phase1_reducers(dataset.dim(), config.cluster.reduce_slots);
    let job1 = JobConfig::new("mr-sfs-local", r1).with_fault_tolerance(ft);
    let outcome1 = metrics.track(run_job(
        &config.cluster,
        &job1,
        &splits,
        &PartitionMapFactory,
        &SfsLocalReduceFactory::new(SfsOrder::Entropy),
        &ModuloPartitioner,
    ))?;

    let splits2: Vec<Vec<CellEntry>> = outcome1.outputs;
    let job2 = JobConfig::new("mr-sfs-merge", 1).with_fault_tolerance(ft);
    let outcome2 = metrics.track(run_job(
        &config.cluster,
        &job2,
        &splits2,
        &ForwardMapFactory,
        &MergeReduceFactory::new(MergeStrategy::PlainBnl),
        &SingleReducerPartitioner,
    ))?;

    Ok(BaselineRun {
        skyline: canonicalize(outcome2.into_flat_output()),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnl::bnl_skyline;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn matches_bnl_oracle() {
        for dist in [Distribution::Independent, Distribution::Anticorrelated] {
            for dim in [2, 4] {
                let ds = generate(dist, dim, 350, 71);
                let run = mr_sfs(&ds, &BaselineConfig::test()).unwrap();
                assert_eq!(
                    run.skyline,
                    bnl_skyline(ds.tuples()),
                    "MR-SFS wrong on {dist:?} d={dim}"
                );
            }
        }
    }

    #[test]
    fn agrees_with_mr_bnl() {
        let ds = generate(Distribution::Clustered { clusters: 3 }, 3, 400, 72);
        let a = mr_sfs(&ds, &BaselineConfig::test()).unwrap();
        let b = crate::mr_bnl::mr_bnl(&ds, &BaselineConfig::test()).unwrap();
        assert_eq!(a.skyline_ids(), b.skyline_ids());
    }

    #[test]
    fn runs_two_jobs() {
        let ds = generate(Distribution::Independent, 3, 300, 73);
        let run = mr_sfs(&ds, &BaselineConfig::test()).unwrap();
        let names: Vec<&str> = run.metrics.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, vec!["mr-sfs-local", "mr-sfs-merge"]);
    }

    #[test]
    fn empty_input() {
        let ds = Dataset::new(3, vec![]).unwrap();
        assert!(mr_sfs(&ds, &BaselineConfig::test())
            .unwrap()
            .skyline
            .is_empty());
    }
}
