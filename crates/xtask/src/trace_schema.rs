//! The `trace-schema` task: validate a trace file written by
//! `skymr-cli run --trace` against the shape the exporters document.
//!
//! CI runs an example with `--trace` and feeds the output through this
//! checker, so a drive-by change to the exporters that breaks Perfetto
//! compatibility (or the bench harness's JSONL consumer) fails the build
//! instead of silently producing unloadable files. Both formats are
//! accepted, keyed on the `.jsonl` extension, and every violation is
//! reported (not just the first).

use std::process::ExitCode;

use skymr_telemetry::json::{self, Value};

/// Entry point for `cargo xtask trace-schema <file>`.
pub fn run(args: &[String]) -> ExitCode {
    let [path] = args else {
        eprintln!("xtask trace-schema: expected exactly one trace file argument");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask trace-schema: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let report = if path.ends_with(".jsonl") {
        check_jsonl(&text)
    } else {
        check_chrome(&text)
    };
    match report {
        Ok((events, registries)) => {
            println!("trace-schema: {path} OK ({events} events, {registries} registries)");
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("trace-schema: {path}: {e}");
            }
            eprintln!("trace-schema: {} violation(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

/// Validates a Chrome `trace_event` JSON document. Returns the event and
/// registry counts on success.
fn check_chrome(text: &str) -> Result<(usize, usize), Vec<String>> {
    let doc = json::parse(text).map_err(|e| vec![e.to_string()])?;
    let mut errors = Vec::new();
    if doc.get("displayTimeUnit").and_then(Value::as_str) != Some("ms") {
        errors.push("displayTimeUnit must be the string \"ms\"".to_owned());
    }
    let events = doc.get("traceEvents").and_then(Value::as_array);
    match events {
        Some(events) => {
            if events.is_empty() {
                errors.push("traceEvents is empty — a run always emits spans".to_owned());
            }
            for (i, event) in events.iter().enumerate() {
                check_event(event, &format!("traceEvents[{i}]"), &mut errors);
            }
        }
        None => errors.push("missing traceEvents array".to_owned()),
    }
    let registries = doc.get("registries").and_then(Value::as_array);
    match registries {
        Some(regs) => {
            for (i, reg) in regs.iter().enumerate() {
                check_registry(reg, &format!("registries[{i}]"), &mut errors);
            }
        }
        None => errors.push("missing registries array".to_owned()),
    }
    if errors.is_empty() {
        Ok((
            events.map_or(0, <[Value]>::len),
            registries.map_or(0, <[Value]>::len),
        ))
    } else {
        Err(errors)
    }
}

/// Validates a JSONL export: one tagged object per line.
fn check_jsonl(text: &str) -> Result<(usize, usize), Vec<String>> {
    let mut errors = Vec::new();
    let (mut events, mut registries) = (0usize, 0usize);
    for (lineno, line) in text.lines().enumerate() {
        let at = format!("line {}", lineno + 1);
        let value = match json::parse(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(format!("{at}: {e}"));
                continue;
            }
        };
        match value.get("type").and_then(Value::as_str) {
            Some("event") => {
                events += 1;
                match value.get("event") {
                    Some(event) => check_event(event, &at, &mut errors),
                    None => errors.push(format!("{at}: event record without an event object")),
                }
            }
            Some("registry") => {
                registries += 1;
                check_registry(&value, &at, &mut errors);
            }
            Some(other) => errors.push(format!("{at}: unknown record type {other:?}")),
            None => errors.push(format!("{at}: record without a type tag")),
        }
    }
    if events == 0 {
        errors.push("no event records — a run always emits spans".to_owned());
    }
    if errors.is_empty() {
        Ok((events, registries))
    } else {
        Err(errors)
    }
}

fn require_u64(v: &Value, key: &str, at: &str, errors: &mut Vec<String>) {
    if v.get(key).and_then(Value::as_u64).is_none() {
        errors.push(format!("{at}: missing or non-integer {key:?}"));
    }
}

/// Checks one trace event against the exporter's fixed key set.
fn check_event(event: &Value, at: &str, errors: &mut Vec<String>) {
    if event.as_object().is_none() {
        errors.push(format!("{at}: event is not an object"));
        return;
    }
    for key in ["name", "cat"] {
        if event.get(key).and_then(Value::as_str).is_none() {
            errors.push(format!("{at}: missing or non-string {key:?}"));
        }
    }
    for key in ["ts", "pid", "tid"] {
        require_u64(event, key, at, errors);
    }
    if event.get("args").and_then(Value::as_object).is_none() {
        errors.push(format!("{at}: missing or non-object \"args\""));
    }
    match event.get("ph").and_then(Value::as_str) {
        Some("X") => require_u64(event, "dur", at, errors),
        Some("i") => {
            if event.get("s").and_then(Value::as_str) != Some("t") {
                errors.push(format!("{at}: instant event without thread scope s=\"t\""));
            }
        }
        Some("M" | "C") => {}
        Some(other) => errors.push(format!("{at}: unexpected phase {other:?}")),
        None => errors.push(format!("{at}: missing or non-string \"ph\"")),
    }
    check_fault_domain_event(event, at, errors);
    check_storage_event(event, at, errors);
    check_sched_event(event, at, errors);
}

/// Pins the multi-tenant scheduler's event shapes: every admitted job's
/// queue wait surfaces as a complete `queued` span naming its job and
/// tenant, and every preemption as a `preempt` instant naming the killed
/// attempt — both under cat "sched", so a fairness dashboard summing
/// per-tenant queue waits (or the CI grep for preemptions) never loses
/// them to a rename.
fn check_sched_event(event: &Value, at: &str, errors: &mut Vec<String>) {
    let name = event.get("name").and_then(Value::as_str).unwrap_or("");
    match name {
        "queued" => {
            if event.get("cat").and_then(Value::as_str) != Some("sched") {
                errors.push(format!("{at}: queued must use cat \"sched\""));
            }
            if event.get("ph").and_then(Value::as_str) != Some("X") {
                errors.push(format!("{at}: queued must be a complete span (ph \"X\")"));
            }
            let args = event.get("args");
            for key in ["job", "tenant"] {
                if args
                    .and_then(|a| a.get(key))
                    .and_then(Value::as_str)
                    .is_none()
                {
                    errors.push(format!("{at}: queued span without string args.{key}"));
                }
            }
        }
        "preempt" => {
            if event.get("cat").and_then(Value::as_str) != Some("sched") {
                errors.push(format!("{at}: preempt must use cat \"sched\""));
            }
            if event.get("ph").and_then(Value::as_str) != Some("i") {
                errors.push(format!("{at}: preempt must be an instant event (ph \"i\")"));
            }
            let args = event.get("args");
            if args
                .and_then(|a| a.get("job"))
                .and_then(Value::as_str)
                .is_none()
            {
                errors.push(format!("{at}: preempt instant without string args.job"));
            }
            for key in ["task", "attempt"] {
                if args
                    .and_then(|a| a.get(key))
                    .and_then(Value::as_u64)
                    .is_none()
                {
                    errors.push(format!("{at}: preempt instant without integer args.{key}"));
                }
            }
        }
        _ => {}
    }
}

/// Pins the out-of-core storage-plane span shapes: spill files and the
/// external-merge cascade must always surface as complete spans under cat
/// "storage" with their byte accounting intact, so tooling that sums
/// `args.bytes` across a budget sweep never silently reads zeros.
fn check_storage_event(event: &Value, at: &str, errors: &mut Vec<String>) {
    let name = event.get("name").and_then(Value::as_str).unwrap_or("");
    let keys: &[&str] = if name.starts_with("spill[") && name.ends_with(']') {
        &["bytes"]
    } else if name == "merge" {
        &["runs", "passes", "bytes_read", "bytes_written"]
    } else {
        return;
    };
    if event.get("cat").and_then(Value::as_str) != Some("storage") {
        errors.push(format!("{at}: {name} must use cat \"storage\""));
    }
    if event.get("ph").and_then(Value::as_str) != Some("X") {
        errors.push(format!("{at}: {name} must be a complete span (ph \"X\")"));
    }
    let args = event.get("args");
    for key in keys {
        if args
            .and_then(|a| a.get(key))
            .and_then(Value::as_u64)
            .is_none()
        {
            errors.push(format!("{at}: {name} span without integer args.{key}"));
        }
    }
}

/// Pins the shape of the node failure-domain events the engine emits so a
/// consumer filtering on them (the chaos CI step greps the trace, the
/// summarizer groups by category) never silently loses them to a rename.
fn check_fault_domain_event(event: &Value, at: &str, errors: &mut Vec<String>) {
    let name = event.get("name").and_then(Value::as_str).unwrap_or("");
    if name == "node-loss" {
        if event.get("ph").and_then(Value::as_str) != Some("i") {
            errors.push(format!(
                "{at}: node-loss must be an instant event (ph \"i\")"
            ));
        }
        if event.get("cat").and_then(Value::as_str) != Some("fault") {
            errors.push(format!("{at}: node-loss must use cat \"fault\""));
        }
        let args = event.get("args");
        for key in ["node", "at_tick"] {
            if args
                .and_then(|a| a.get(key))
                .and_then(Value::as_u64)
                .is_none()
            {
                errors.push(format!(
                    "{at}: node-loss instant without integer args.{key}"
                ));
            }
        }
    }
    // Data-plane integrity instants: corruption detections, skip-bad-record
    // outcomes, and progress-timeout kills all carry fixed integer args.
    let instant_args: Option<&[&str]> = match name {
        "fault:corrupt" => Some(&["map", "reducer", "fetches"]),
        "skip-record" => Some(&["task", "record"]),
        "hang-kill" => Some(&["task", "attempt", "timeout_ticks"]),
        _ => None,
    };
    if let Some(keys) = instant_args {
        if event.get("ph").and_then(Value::as_str) != Some("i") {
            errors.push(format!("{at}: {name} must be an instant event (ph \"i\")"));
        }
        if event.get("cat").and_then(Value::as_str) != Some("fault") {
            errors.push(format!("{at}: {name} must use cat \"fault\""));
        }
        let args = event.get("args");
        for key in keys {
            if args
                .and_then(|a| a.get(key))
                .and_then(Value::as_u64)
                .is_none()
            {
                errors.push(format!("{at}: {name} instant without integer args.{key}"));
            }
        }
    }
    if name.contains("(re-exec)") {
        if event.get("cat").and_then(Value::as_str) != Some("reexec") {
            errors.push(format!(
                "{at}: re-execution span {name:?} must use cat \"reexec\""
            ));
        }
        if event.get("ph").and_then(Value::as_str) != Some("X") {
            errors.push(format!(
                "{at}: re-execution span {name:?} must be a complete span (ph \"X\")"
            ));
        }
    }
}

/// Checks one per-job registry object: counters/gauges are integer maps,
/// histograms are cumulative bucket lists whose counts sum to `count`.
fn check_registry(reg: &Value, at: &str, errors: &mut Vec<String>) {
    if reg.get("job").and_then(Value::as_str).is_none() {
        errors.push(format!("{at}: missing or non-string \"job\""));
    }
    for section in ["counters", "gauges"] {
        match reg.get(section).and_then(Value::as_object) {
            Some(members) => {
                for (name, value) in members {
                    if value.as_u64().is_none() {
                        errors.push(format!("{at}: {section}.{name} is not a u64"));
                    }
                }
            }
            None => errors.push(format!("{at}: missing or non-object {section:?}")),
        }
    }
    let Some(histograms) = reg.get("histograms").and_then(Value::as_object) else {
        errors.push(format!("{at}: missing or non-object \"histograms\""));
        return;
    };
    for (name, hist) in histograms {
        let here = format!("{at}: histograms.{name}");
        let count = hist.get("count").and_then(Value::as_u64);
        if count.is_none() {
            errors.push(format!("{here}: missing or non-integer count"));
        }
        if hist.get("sum").and_then(Value::as_u64).is_none() {
            errors.push(format!("{here}: missing or non-integer sum"));
        }
        let Some(buckets) = hist.get("buckets").and_then(Value::as_array) else {
            errors.push(format!("{here}: missing or non-array buckets"));
            continue;
        };
        let mut total = 0u64;
        let mut saw_overflow = false;
        for (i, bucket) in buckets.iter().enumerate() {
            let le = bucket.get("le");
            match le {
                Some(Value::Null) => saw_overflow = true,
                Some(v) if v.as_u64().is_some() => {}
                _ => errors.push(format!("{here}: buckets[{i}].le is neither u64 nor null")),
            }
            match bucket.get("count").and_then(Value::as_u64) {
                Some(c) => total += c,
                None => errors.push(format!("{here}: buckets[{i}].count is not a u64")),
            }
        }
        if !saw_overflow {
            errors.push(format!("{here}: no overflow bucket (le:null)"));
        }
        if let Some(count) = count {
            if total != count {
                errors.push(format!(
                    "{here}: bucket counts sum to {total} but count is {count}"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_telemetry::export::{chrome_trace, jsonl};
    use skymr_telemetry::span::Span;
    use skymr_telemetry::{Collector, JobTrace, TraceDocument};

    fn sample_doc() -> TraceDocument {
        let c = Collector::new();
        let mut job = JobTrace::new("wc");
        job.name_lane(1, "map slot 0");
        job.span(Span::new(&["wc", "map", "0"], "map[0]", "map", 1, 0, 40));
        job.counter("map running", 0, "tasks", 1);
        job.registry_mut().add("map.records_out", 12);
        job.registry_mut().record("map.task_ticks", &[100], 40);
        job.set_total(50);
        c.commit(job);
        c.finish()
    }

    #[test]
    fn accepts_both_export_formats() {
        let doc = sample_doc();
        let (events, regs) = check_chrome(&chrome_trace(&doc)).expect("chrome export validates");
        assert!(events > 0);
        assert_eq!(regs, 1);
        let (events, regs) = check_jsonl(&jsonl(&doc)).expect("jsonl export validates");
        assert!(events > 0);
        assert_eq!(regs, 1);
    }

    #[test]
    fn rejects_malformed_and_incomplete_documents() {
        assert!(check_chrome("not json").is_err());
        assert!(check_chrome("{}").is_err());
        // A complete span without a duration is a violation.
        let doc = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"x\",\"cat\":\"map\",\"ph\":\"X\",\"ts\":0,\
                   \"pid\":1,\"tid\":1,\"args\":{}}],\"registries\":[]}";
        let errors = check_chrome(doc).expect_err("missing dur rejected");
        assert!(errors.iter().any(|e| e.contains("dur")), "{errors:?}");
    }

    #[test]
    fn rejects_histograms_whose_buckets_disagree_with_count() {
        let doc = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"x\",\"cat\":\"map\",\"ph\":\"M\",\"ts\":0,\
                   \"pid\":1,\"tid\":1,\"args\":{}}],\"registries\":[\
                   {\"job\":\"wc\",\"counters\":{},\"gauges\":{},\
                   \"histograms\":{\"h\":{\"count\":3,\"sum\":9,\"buckets\":[\
                   {\"le\":10,\"count\":1},{\"le\":null,\"count\":1}]}}}]}";
        let errors = check_chrome(doc).expect_err("count mismatch rejected");
        assert!(
            errors.iter().any(|e| e.contains("sum to 2 but count is 3")),
            "{errors:?}"
        );
    }

    #[test]
    fn pins_the_node_failure_domain_event_shapes() {
        // A well-formed loss instant and re-execution span pass.
        let good = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                    {\"name\":\"node-loss\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                    \"ts\":5,\"pid\":1,\"tid\":0,\"args\":{\"node\":2,\"at_tick\":5}},\
                    {\"name\":\"map[3] (re-exec)\",\"cat\":\"reexec\",\"ph\":\"X\",\
                    \"ts\":9,\"dur\":4,\"pid\":1,\"tid\":1,\"args\":{}}],\
                    \"registries\":[]}";
        check_chrome(good).expect("failure-domain events validate");

        // A loss demoted to a span, or stripped of its node, is a violation.
        let bad = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"node-loss\",\"cat\":\"fault\",\"ph\":\"X\",\
                   \"ts\":5,\"dur\":1,\"pid\":1,\"tid\":0,\"args\":{\"at_tick\":5}},\
                   {\"name\":\"map[3] (re-exec)\",\"cat\":\"map\",\"ph\":\"X\",\
                   \"ts\":9,\"dur\":4,\"pid\":1,\"tid\":1,\"args\":{}}],\
                   \"registries\":[]}";
        let errors = check_chrome(bad).expect_err("malformed fault events rejected");
        assert!(
            errors
                .iter()
                .any(|e| e.contains("instant event (ph \"i\")")),
            "{errors:?}"
        );
        assert!(errors.iter().any(|e| e.contains("args.node")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("cat \"reexec\"")),
            "{errors:?}"
        );
    }

    #[test]
    fn pins_the_data_integrity_instant_shapes() {
        let good = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                    {\"name\":\"fault:corrupt\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                    \"ts\":5,\"pid\":1,\"tid\":0,\"args\":{\"map\":1,\"reducer\":0,\"fetches\":2}},\
                    {\"name\":\"skip-record\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                    \"ts\":5,\"pid\":1,\"tid\":0,\"args\":{\"task\":1,\"record\":3}},\
                    {\"name\":\"hang-kill\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                    \"ts\":5,\"pid\":1,\"tid\":2,\
                    \"args\":{\"task\":0,\"attempt\":0,\"timeout_ticks\":5000}}],\
                    \"registries\":[]}";
        check_chrome(good).expect("data-integrity instants validate");

        // Stripping the fetch count or demoting the kill to a span fails.
        let bad = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"fault:corrupt\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                   \"ts\":5,\"pid\":1,\"tid\":0,\"args\":{\"map\":1,\"reducer\":0}},\
                   {\"name\":\"hang-kill\",\"cat\":\"fault\",\"ph\":\"X\",\"dur\":1,\
                   \"ts\":5,\"pid\":1,\"tid\":2,\
                   \"args\":{\"task\":0,\"attempt\":0,\"timeout_ticks\":5000}}],\
                   \"registries\":[]}";
        let errors = check_chrome(bad).expect_err("malformed integrity events rejected");
        assert!(
            errors.iter().any(|e| e.contains("args.fetches")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("hang-kill must be an instant event")),
            "{errors:?}"
        );
    }

    #[test]
    fn pins_the_storage_plane_span_shapes() {
        let good = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                    {\"name\":\"spill[0]\",\"cat\":\"storage\",\"ph\":\"X\",\
                    \"ts\":5,\"dur\":16,\"pid\":1,\"tid\":1,\"args\":{\"bytes\":4096}},\
                    {\"name\":\"merge\",\"cat\":\"storage\",\"ph\":\"X\",\
                    \"ts\":30,\"dur\":24,\"pid\":1,\"tid\":2,\"args\":\
                    {\"runs\":3,\"passes\":1,\"bytes_read\":6144,\"bytes_written\":0}}],\
                    \"registries\":[]}";
        check_chrome(good).expect("storage spans validate");

        // A spill demoted out of its category, or a merge missing its byte
        // accounting, is a violation.
        let bad = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"spill[0]\",\"cat\":\"map\",\"ph\":\"X\",\
                   \"ts\":5,\"dur\":16,\"pid\":1,\"tid\":1,\"args\":{}},\
                   {\"name\":\"merge\",\"cat\":\"storage\",\"ph\":\"X\",\
                   \"ts\":30,\"dur\":24,\"pid\":1,\"tid\":2,\"args\":\
                   {\"runs\":3,\"passes\":1}}],\
                   \"registries\":[]}";
        let errors = check_chrome(bad).expect_err("malformed storage spans rejected");
        assert!(
            errors.iter().any(|e| e.contains("cat \"storage\"")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("args.bytes")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("args.bytes_read")),
            "{errors:?}"
        );
    }

    #[test]
    fn pins_the_scheduler_event_shapes() {
        let good = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                    {\"name\":\"queued\",\"cat\":\"sched\",\"ph\":\"X\",\
                    \"ts\":0,\"dur\":12,\"pid\":1,\"tid\":0,\
                    \"args\":{\"job\":\"gpsrs\",\"tenant\":\"team-a\"}},\
                    {\"name\":\"preempt\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\
                    \"ts\":7,\"pid\":1,\"tid\":0,\
                    \"args\":{\"job\":\"bnl\",\"task\":2,\"attempt\":0}}],\
                    \"registries\":[]}";
        check_chrome(good).expect("scheduler events validate");

        // A queued span stripped of its tenant, demoted out of its
        // category, or a preempt missing its attempt, is a violation.
        let bad = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\
                   {\"name\":\"queued\",\"cat\":\"map\",\"ph\":\"X\",\
                   \"ts\":0,\"dur\":12,\"pid\":1,\"tid\":0,\"args\":{\"job\":\"gpsrs\"}},\
                   {\"name\":\"preempt\",\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\
                   \"ts\":7,\"pid\":1,\"tid\":0,\"args\":{\"job\":\"bnl\",\"task\":2}}],\
                   \"registries\":[]}";
        let errors = check_chrome(bad).expect_err("malformed sched events rejected");
        assert!(
            errors.iter().any(|e| e.contains("cat \"sched\"")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("args.tenant")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("args.attempt")),
            "{errors:?}"
        );
    }

    #[test]
    fn jsonl_reports_per_line_violations() {
        let errors = check_jsonl("{\"type\":\"mystery\"}\nnot json\n").expect_err("rejected");
        assert!(errors.iter().any(|e| e.contains("line 1")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("line 2")), "{errors:?}");
    }
}
