//! `cargo xtask bench-gate` — a perf-regression gate over the committed
//! kernel benchmark baselines.
//!
//! The bench binaries (e.g. `crates/bench/benches/dominance.rs`) export
//! machine-readable timings as `BENCH_*.json` at the repo root; those
//! files are committed, so the tree always carries the last blessed
//! numbers. This task re-runs each registered bench `RUNS` times, takes
//! the **median** per label (robust to a single noisy run), and compares
//! it against the committed mean with a noise-aware threshold:
//!
//! ```text
//! regressed  ⇔  median − baseline > max(REL_SLACK · baseline,
//!                                        NOISE_K · 1.4826 · MAD(samples),
//!                                        ABS_FLOOR_NS)
//! ```
//!
//! The relative slack absorbs machine-to-machine drift, the MAD term
//! widens the gate exactly when this machine's own samples scatter (a
//! noisy kernel cannot produce a confident verdict), and the absolute
//! floor keeps single-digit-nanosecond kernels from failing on timer
//! granularity. Regressions are reported as `file:line` diagnostics
//! pointing into the baseline document and fail the task; CI runs this
//! advisory on PRs and enforced on `main`. `--update-baseline` rewrites
//! the baselines from the same median-of-runs instead of gating.

use std::path::Path;
use std::process::{Command, ExitCode};

/// Bench targets under the gate: bench name → committed baseline file at
/// the repo root. All targets live in the `skymr-bench` package.
const BENCHES: &[(&str, &str)] = &[("dominance", "BENCH_dominance.json")];

/// Repeated runs per bench; the median is compared, so one outlier run
/// cannot fail (or sneak past) the gate.
const RUNS: usize = 3;
/// Relative slack: a kernel may drift this fraction over its baseline
/// before the gate considers it regressed (absorbs host differences).
const REL_SLACK: f64 = 0.5;
/// Noise multiplier on the MAD-estimated standard deviation of this
/// machine's own samples.
const NOISE_K: f64 = 4.0;
/// MAD → standard-deviation scale factor for normal noise.
const MAD_SCALE: f64 = 1.4826;
/// Absolute floor in nanoseconds: below this, timer granularity owns the
/// signal and no verdict is meaningful.
const ABS_FLOOR_NS: f64 = 30.0;

// ---------------------------------------------------------------------
// Baseline document parsing.
// ---------------------------------------------------------------------

/// One `{label, mean_ns, iters}` row of a `BENCH_*.json` document, with
/// the 1-based line it was parsed from (for `file:line` diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub label: String,
    pub mean_ns: f64,
    pub iters: u64,
    pub line: usize,
}

/// Pulls the JSON string value for `key` out of a single-row line. The
/// documents are rendered one row per line by `render_kernel_bench_json`,
/// so per-line field extraction is exact for this schema.
fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Pulls the JSON numeric value for `key` out of a single-row line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_*.json` document into rows. Errors name the offending
/// line so a corrupted baseline is itself a `file:line` diagnostic.
pub fn parse_baseline(text: &str) -> Result<Vec<Row>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if !line.contains("\"label\"") {
            continue;
        }
        let label =
            field_str(line, "label").ok_or_else(|| format!("line {}: bad `label`", i + 1))?;
        let mean_ns =
            field_num(line, "mean_ns").ok_or_else(|| format!("line {}: bad `mean_ns`", i + 1))?;
        let iters =
            field_num(line, "iters").ok_or_else(|| format!("line {}: bad `iters`", i + 1))?;
        rows.push(Row {
            label,
            mean_ns,
            iters: iters as u64,
            line: i + 1,
        });
    }
    if rows.is_empty() {
        return Err("no benchmark rows found".into());
    }
    Ok(rows)
}

/// Renders rows back into the committed document shape (same as the bench
/// binaries' `render_kernel_bench_json`, so `--update-baseline` output is
/// byte-compatible with a fresh bench export).
pub fn render_baseline(bench: &str, rows: &[Row]) -> String {
    let mut out = format!("{{\"bench\":\"{bench}\",\"results\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let label = r.label.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "\n{{\"label\":\"{label}\",\"mean_ns\":{:.1},\"iters\":{}}}",
            r.mean_ns, r.iters
        ));
    }
    out.push_str("\n]}\n");
    out
}

// ---------------------------------------------------------------------
// The gate rule.
// ---------------------------------------------------------------------

/// Median of a non-empty sample set.
fn median(samples: &[f64]) -> f64 {
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Median absolute deviation from the median.
fn mad(samples: &[f64], med: f64) -> f64 {
    let devs: Vec<f64> = samples.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// One label's gate verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    pub label: String,
    /// Committed baseline mean (ns).
    pub baseline_ns: f64,
    /// Median of this gate's sample runs (ns).
    pub observed_ns: f64,
    /// Allowed excess over the baseline (ns).
    pub threshold_ns: f64,
    /// Baseline document line for `file:line` diagnostics.
    pub line: usize,
    pub regressed: bool,
}

/// Compares `runs` (one row set per repeated bench run) against the
/// committed `baseline`. Errors when the label sets disagree — a renamed
/// or added kernel means the baseline must be re-blessed, not gated.
pub fn gate(baseline: &[Row], runs: &[Vec<Row>]) -> Result<Vec<Verdict>, String> {
    if runs.is_empty() {
        return Err("no sample runs".into());
    }
    for b in baseline {
        if runs.iter().any(|r| !r.iter().any(|s| s.label == b.label)) {
            return Err(format!(
                "baseline label `{}` missing from a sample run — \
                 re-bless with `cargo xtask bench-gate --update-baseline`",
                b.label
            ));
        }
    }
    for r in runs.iter().flatten() {
        if !baseline.iter().any(|b| b.label == r.label) {
            return Err(format!(
                "new benchmark `{}` has no committed baseline — \
                 re-bless with `cargo xtask bench-gate --update-baseline`",
                r.label
            ));
        }
    }
    let mut out = Vec::with_capacity(baseline.len());
    for b in baseline {
        let samples: Vec<f64> = runs
            .iter()
            .flat_map(|r| r.iter().filter(|s| s.label == b.label))
            .map(|s| s.mean_ns)
            .collect();
        let observed = median(&samples);
        let noise = NOISE_K * MAD_SCALE * mad(&samples, observed);
        let threshold = (REL_SLACK * b.mean_ns).max(noise).max(ABS_FLOOR_NS);
        out.push(Verdict {
            label: b.label.clone(),
            baseline_ns: b.mean_ns,
            observed_ns: observed,
            threshold_ns: threshold,
            line: b.line,
            regressed: observed - b.mean_ns > threshold,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

/// Runs one bench target once, exporting its rows via `SKYMR_BENCH_OUT`.
fn run_bench_once(root: &Path, bench: &str, run_idx: usize) -> Result<Vec<Row>, String> {
    let out_path = std::env::temp_dir().join(format!(
        "skymr-bench-gate-{}-{bench}-{run_idx}.json",
        std::process::id()
    ));
    let status = Command::new("cargo")
        .args(["bench", "-p", "skymr-bench", "--bench", bench])
        .env("SKYMR_BENCH_OUT", &out_path)
        .current_dir(root)
        .status()
        .map_err(|e| format!("cannot spawn cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("`cargo bench --bench {bench}` failed: {status}"));
    }
    let text = std::fs::read_to_string(&out_path)
        .map_err(|e| format!("bench wrote no export at {}: {e}", out_path.display()))?;
    std::fs::remove_file(&out_path).ok();
    parse_baseline(&text).map_err(|e| format!("bench export: {e}"))
}

/// Entry point for `cargo xtask bench-gate`.
pub fn run(args: &[String]) -> ExitCode {
    let mut update = false;
    let mut only: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--update-baseline" => update = true,
            "--bench" => match it.next() {
                Some(v) => only = Some(v.clone()),
                None => {
                    eprintln!("xtask bench-gate: --bench needs a value");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("xtask bench-gate: unknown option `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(root) = crate::analyze::workspace_root() else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::from(2);
    };

    let mut failed = false;
    let mut gated = 0usize;
    for &(bench, baseline_file) in BENCHES {
        if only.as_deref().is_some_and(|o| o != bench) {
            continue;
        }
        gated += 1;
        println!("bench-gate: running `{bench}` ×{RUNS}…");
        let mut runs = Vec::with_capacity(RUNS);
        for i in 0..RUNS {
            match run_bench_once(&root, bench, i) {
                Ok(rows) => runs.push(rows),
                Err(e) => {
                    eprintln!("bench-gate: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        if update {
            // Median-of-runs becomes the new blessed baseline, in the
            // first run's row order (= bench execution order).
            let rows: Vec<Row> = runs[0]
                .iter()
                .map(|r| {
                    let samples: Vec<f64> = runs
                        .iter()
                        .flat_map(|run| run.iter().filter(|s| s.label == r.label))
                        .map(|s| s.mean_ns)
                        .collect();
                    Row {
                        mean_ns: median(&samples),
                        ..r.clone()
                    }
                })
                .collect();
            let path = root.join(baseline_file);
            if let Err(e) = std::fs::write(&path, render_baseline(bench, &rows)) {
                eprintln!("bench-gate: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!(
                "bench-gate: blessed {baseline_file} ({} labels, median of {RUNS} runs)",
                rows.len()
            );
            continue;
        }

        let path = root.join(baseline_file);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "bench-gate: cannot read {baseline_file}: {e} \
                     (bless one with --update-baseline)"
                );
                return ExitCode::FAILURE;
            }
        };
        let baseline = match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{baseline_file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let verdicts = match gate(&baseline, &runs) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench-gate: {e}");
                return ExitCode::FAILURE;
            }
        };
        for v in &verdicts {
            if v.regressed {
                failed = true;
                println!(
                    "{baseline_file}:{}: [bench-gate] `{}` regressed: {:.1}ns vs \
                     baseline {:.1}ns (allowed +{:.1}ns)",
                    v.line, v.label, v.observed_ns, v.baseline_ns, v.threshold_ns
                );
            } else {
                println!(
                    "bench-gate: ok `{}` {:.1}ns vs {:.1}ns (+{:.1}ns allowed)",
                    v.label, v.observed_ns, v.baseline_ns, v.threshold_ns
                );
            }
        }
    }
    if gated == 0 {
        eprintln!("bench-gate: no bench matched");
        return ExitCode::from(2);
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("bench-gate: OK");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(label: &str, mean_ns: f64, line: usize) -> Row {
        Row {
            label: label.into(),
            mean_ns,
            iters: 20,
            line,
        }
    }

    #[test]
    fn parse_and_render_round_trip() {
        let text = render_baseline(
            "dominance",
            &[row("dominance/dominates/correlated", 12.0, 2)],
        );
        let rows = parse_baseline(&text).expect("parses");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].label, "dominance/dominates/correlated");
        assert_eq!(rows[0].mean_ns, 12.0);
        assert_eq!(rows[0].iters, 20);
        assert_eq!(rows[0].line, 2, "rows start on line 2 of the document");
        assert_eq!(text, render_baseline("dominance", &rows));
    }

    #[test]
    fn committed_baseline_parses() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dominance.json");
        let text = std::fs::read_to_string(path).expect("committed baseline exists");
        let rows = parse_baseline(&text).expect("committed baseline parses");
        assert!(rows.len() >= 9, "expected all kernel series, got {rows:?}");
        let mut labels: Vec<&str> = rows.iter().map(|r| r.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), rows.len(), "labels are unique");
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(mad(&[1.0, 2.0, 9.0], 2.0), 1.0);
    }

    #[test]
    fn stable_timings_pass() {
        let baseline = vec![row("k/a", 1000.0, 2), row("k/b", 50_000.0, 3)];
        let runs = vec![
            vec![row("k/a", 1040.0, 0), row("k/b", 51_000.0, 0)],
            vec![row("k/a", 980.0, 0), row("k/b", 49_500.0, 0)],
            vec![row("k/a", 1010.0, 0), row("k/b", 50_200.0, 0)],
        ];
        let verdicts = gate(&baseline, &runs).expect("gates");
        assert!(verdicts.iter().all(|v| !v.regressed), "{verdicts:?}");
    }

    #[test]
    fn injected_2x_slowdown_fails_with_baseline_line() {
        let baseline = vec![row("k/a", 1000.0, 2), row("k/b", 50_000.0, 3)];
        // `k/b` runs ≥2× its baseline, consistently (tight samples keep
        // the MAD term from widening the gate).
        let runs = vec![
            vec![row("k/a", 1000.0, 0), row("k/b", 104_000.0, 0)],
            vec![row("k/a", 990.0, 0), row("k/b", 103_000.0, 0)],
            vec![row("k/a", 1010.0, 0), row("k/b", 104_500.0, 0)],
        ];
        let verdicts = gate(&baseline, &runs).expect("gates");
        let bad: Vec<&Verdict> = verdicts.iter().filter(|v| v.regressed).collect();
        assert_eq!(bad.len(), 1, "{verdicts:?}");
        assert_eq!(bad[0].label, "k/b");
        assert_eq!(bad[0].line, 3, "diagnostic points into the baseline file");
    }

    #[test]
    fn tampered_baseline_fails() {
        // Someone edits the committed mean down to make a kernel look
        // fast; honest re-runs now exceed it and the gate trips.
        let tampered = vec![row("k/a", 100.0, 2)];
        let runs = vec![
            vec![row("k/a", 1000.0, 0)],
            vec![row("k/a", 1005.0, 0)],
            vec![row("k/a", 995.0, 0)],
        ];
        let verdicts = gate(&tampered, &runs).expect("gates");
        assert!(verdicts[0].regressed);
        assert_eq!(verdicts[0].line, 2);
    }

    #[test]
    fn noisy_samples_widen_the_gate() {
        let baseline = vec![row("k/a", 1000.0, 2)];
        // Median 1400 is +40% (within REL_SLACK anyway), but with huge
        // scatter even a larger excursion is absorbed by the MAD term.
        let runs = vec![
            vec![row("k/a", 400.0, 0)],
            vec![row("k/a", 1400.0, 0)],
            vec![row("k/a", 2400.0, 0)],
        ];
        let verdicts = gate(&baseline, &runs).expect("gates");
        assert!(!verdicts[0].regressed, "{verdicts:?}");
        assert!(verdicts[0].threshold_ns > 5000.0, "{verdicts:?}");
    }

    #[test]
    fn timer_granularity_floor_protects_tiny_kernels() {
        let baseline = vec![row("k/tiny", 5.0, 2)];
        let runs = vec![
            vec![row("k/tiny", 25.0, 0)],
            vec![row("k/tiny", 25.0, 0)],
            vec![row("k/tiny", 25.0, 0)],
        ];
        // 5× the baseline, but under the absolute floor: no verdict.
        let verdicts = gate(&baseline, &runs).expect("gates");
        assert!(!verdicts[0].regressed, "{verdicts:?}");
    }

    #[test]
    fn label_set_mismatch_is_an_error() {
        let baseline = vec![row("k/a", 1000.0, 2)];
        let runs = vec![vec![row("k/a", 1000.0, 0), row("k/new", 5.0, 0)]];
        let err = gate(&baseline, &runs).expect_err("new label must error");
        assert!(err.contains("k/new"), "{err}");
        let baseline = vec![row("k/a", 1000.0, 2), row("k/gone", 1.0, 3)];
        let runs = vec![vec![row("k/a", 1000.0, 0)]];
        let err = gate(&baseline, &runs).expect_err("missing label must error");
        assert!(err.contains("k/gone"), "{err}");
    }
}
