//! A lightweight item/impl parser over the token stream.
//!
//! This is not a full Rust parser: it recovers exactly the structure the
//! analysis passes need and skips everything else token-by-token:
//!
//! * a per-file **symbol table** of `fn` items — name, line, signature and
//!   body token ranges, whether the fn sits in `#[cfg(test)]`/`#[test]`
//!   code, and the `impl` context it belongs to;
//! * **impl blocks** with the trait's last path segment (`impl MapTask for
//!   X` → `MapTask`) so passes can scope themselves to UDF bodies;
//! * **call sites** inside each fn body (`callee(…)`, `Qual::callee(…)`,
//!   `.method(…)`, `macro!(…)`) for the intra-crate call graph;
//! * **loop regions** inside each fn body (`for`/`while`/`loop` bodies as
//!   significant-token ranges with their nesting depth), so the perf pass
//!   can rank a call site by how deeply it sits inside loops;
//! * **test regions** as byte ranges, tracked by token-level brace depth —
//!   the successor to PR 1's line-based `#[cfg(test)]` heuristics.
//!
//! Known approximations, chosen deliberately: `#[cfg(not(test))]` is never
//! treated as test code (any `cfg` attribute containing `not` is ignored);
//! nested fns inside bodies are folded into the outer fn's call list;
//! macro-generated items are invisible (macros are recorded as calls, not
//! expanded); and iterator adapters (`.map`, `.any`, …) are not loop
//! regions — only the three loop keywords open one.

use crate::lexer::{Token, TokenKind};

/// The parsed shape of one source file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Every `fn` item found, in source order.
    pub fns: Vec<FnInfo>,
    /// Every `impl` block found, in source order.
    pub impls: Vec<ImplInfo>,
    /// Byte ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Every `use` declaration, flattened (groups expanded).
    pub uses: Vec<UseDecl>,
    /// Every `struct` definition with its named fields.
    pub structs: Vec<StructInfo>,
    /// Names of inline `mod name { … }` and `mod name;` declarations at
    /// any nesting level, paired with the enclosing inline-module path.
    pub mods: Vec<(Vec<String>, String)>,
}

impl FileModel {
    /// `true` if byte offset `at` lies inside test-only code.
    pub fn in_test_region(&self, at: usize) -> bool {
        self.test_regions.iter().any(|&(s, e)| at >= s && at < e)
    }
}

/// One flattened `use` declaration (`use a::{b, c as d};` yields two).
#[derive(Debug, Clone)]
pub struct UseDecl {
    /// Path segments as written, including leading `crate`/`self`/`super`.
    pub path: Vec<String>,
    /// The name the import binds locally: the `as` alias when present,
    /// otherwise the last path segment.
    pub alias: String,
    /// `true` for `use path::*;`.
    pub is_glob: bool,
    /// Inline-module path of the enclosing `mod` blocks within the file.
    pub module: Vec<String>,
}

/// One `struct` definition.
#[derive(Debug, Clone)]
pub struct StructInfo {
    /// The struct's name.
    pub name: String,
    /// Inline-module path of the enclosing `mod` blocks within the file.
    pub module: Vec<String>,
    /// Named fields as `(name, type-last-segment)`; tuple/unit structs
    /// have none, and fields of non-path types record an empty segment.
    pub fields: Vec<(String, String)>,
}

/// One `impl` block.
#[derive(Debug, Clone)]
pub struct ImplInfo {
    /// Last path segment of the implemented trait, if a trait impl.
    pub trait_name: Option<String>,
    /// Last path segment of the self type. Part of the model surface for
    /// passes that need it; currently exercised by tests only.
    #[allow(dead_code)]
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    #[allow(dead_code)]
    pub line: usize,
    /// Inline-module path of the enclosing `mod` blocks within the file.
    /// Model surface; exercised by tests only (fn-level modules carry the
    /// scope the resolver needs).
    #[allow(dead_code)]
    pub module: Vec<String>,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword. Model surface; exercised by
    /// tests only so far.
    #[allow(dead_code)]
    pub line: usize,
    /// Index into [`FileModel::impls`] when defined inside an impl block.
    pub impl_idx: Option<usize>,
    /// Raw token-index range of the body `{ … }` (inclusive of braces),
    /// `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Byte span of the whole item (fn keyword through body end).
    #[allow(dead_code)]
    pub span: (usize, usize),
    /// `true` when inside `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// The parameter list contains an explicit seed parameter
    /// (an ident named `seed` or `*_seed`).
    pub has_seed_param: bool,
    /// Parameters as `(name, type-last-segment)`. `self` receivers are
    /// omitted (the impl context carries the type); parameters with
    /// non-path types (slices, tuples, `impl Trait`, …) record an empty
    /// type segment.
    pub params: Vec<(String, String)>,
    /// Inline-module path of the enclosing `mod` blocks within the file.
    pub module: Vec<String>,
    /// Call sites found in the body.
    pub calls: Vec<Call>,
    /// Loop bodies found in the body, in source order.
    pub loops: Vec<LoopRegion>,
}

impl FnInfo {
    /// How many loop bodies enclose significant-token index `sig_idx`
    /// (0 = straight-line code, 1 = inside one loop, …). Enclosing
    /// regions form a nesting chain, so the innermost one's recorded
    /// depth is exactly that count.
    pub fn loop_depth_at(&self, sig_idx: usize) -> u32 {
        self.loops
            .iter()
            .filter(|r| r.sig_start < sig_idx && sig_idx < r.sig_end)
            .map(|r| r.depth)
            .max()
            .unwrap_or(0)
    }
}

/// One `for`/`while`/`loop` body inside a fn.
#[derive(Debug, Clone)]
pub struct LoopRegion {
    /// Significant-token index of the body's opening `{`.
    pub sig_start: usize,
    /// Significant-token index one past the body's closing `}`.
    pub sig_end: usize,
    /// Nesting depth of this loop (outermost loop in the fn = 1).
    pub depth: u32,
    /// 1-based line of the loop keyword.
    #[allow(dead_code)]
    pub line: usize,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name (last path segment, or macro name for `name!(…)`).
    pub name: String,
    /// The path segment immediately before the callee, if any
    /// (`StdRng::seed_from_u64` → `Some("StdRng")`).
    pub qualifier: Option<String>,
    /// 1-based line of the callee token.
    pub line: usize,
    /// Index of the callee token into the file's significant-token list
    /// (as built by [`crate::analyze::AnalyzedFile`]); the argument list
    /// opens at `sig_idx + 1` (`(`) or `sig_idx + 2` (macros).
    pub sig_idx: usize,
    /// `true` for `.name(…)` method calls.
    pub is_method: bool,
    /// `true` for `name!(…)` macro invocations.
    pub is_macro: bool,
}

/// Parses `tokens` (as produced by [`crate::lexer::lex`] on `src`).
pub fn parse(src: &str, tokens: &[Token]) -> FileModel {
    let sig: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_trivia())
        .collect();
    let mut p = Parser {
        src,
        tokens,
        sig,
        pos: 0,
        mod_stack: Vec::new(),
        model: FileModel::default(),
    };
    p.items(None, false);
    p.model
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    /// Indices of significant (non-trivia) tokens.
    sig: Vec<usize>,
    /// Cursor into `sig`.
    pos: usize,
    /// Names of the inline `mod` blocks enclosing the cursor.
    mod_stack: Vec<String>,
    model: FileModel,
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "ref", "mut", "move", "box", "dyn", "impl", "where", "use", "pub", "crate", "self",
    "Self", "super", "fn", "struct", "enum", "union", "trait", "type", "const", "static", "extern",
    "mod", "unsafe", "async", "await", "yield", "true", "false",
];

impl<'a> Parser<'a> {
    fn peek_tok(&self, ahead: usize) -> Option<&Token> {
        self.sig.get(self.pos + ahead).map(|&i| &self.tokens[i])
    }

    fn text(&self, ahead: usize) -> &str {
        self.peek_tok(ahead).map_or("", |t| t.text(self.src))
    }

    fn kind(&self, ahead: usize) -> Option<TokenKind> {
        self.peek_tok(ahead).map(|t| t.kind)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.sig.len()
    }

    /// Parses items until a closing `}` (consumed) or EOF.
    fn items(&mut self, impl_idx: Option<usize>, in_test: bool) {
        let mut pending_test = false;
        while !self.at_end() {
            match (self.kind(0), self.text(0)) {
                (Some(TokenKind::Punct), "}") => {
                    self.bump();
                    return;
                }
                (Some(TokenKind::Punct), "#") => {
                    pending_test |= self.attribute();
                }
                (Some(TokenKind::Ident), "fn") => {
                    self.fn_item(impl_idx, in_test || pending_test);
                    pending_test = false;
                }
                (Some(TokenKind::Ident), "impl") => {
                    self.impl_item(in_test || pending_test);
                    pending_test = false;
                }
                (Some(TokenKind::Ident), "mod" | "trait") => {
                    self.mod_or_trait(impl_idx, in_test || pending_test);
                    pending_test = false;
                }
                (Some(TokenKind::Ident), "use") => {
                    self.use_item();
                    pending_test = false;
                }
                (Some(TokenKind::Ident), "struct") => {
                    self.struct_item();
                    pending_test = false;
                }
                // Modifiers: attributes seen so far still apply to the item.
                (Some(TokenKind::Ident), "pub" | "unsafe" | "async" | "const" | "extern")
                    if self.is_item_modifier() =>
                {
                    self.bump();
                }
                (Some(TokenKind::Punct), "{") => {
                    // An unexpected block (macro output, unsafe block at
                    // item level): skip it wholesale.
                    self.skip_balanced("{", "}");
                    pending_test = false;
                }
                _ => {
                    // Anything else (struct/use/static bodies, macro
                    // invocations, stray tokens): advance, descending into
                    // braces so nested `}` doesn't end our scope early.
                    if self.text(0) == "{" {
                        self.skip_balanced("{", "}");
                    } else {
                        let ended_item = self.text(0) == ";";
                        self.bump();
                        if ended_item {
                            pending_test = false;
                        }
                    }
                }
            }
        }
    }

    /// `const` may start `const fn` (modifier) or a `const ITEM: … = …;`.
    /// Similarly `extern "C" fn` vs `extern crate`. Treat as a modifier
    /// only when a `fn` follows within the next couple of tokens.
    fn is_item_modifier(&self) -> bool {
        match self.text(0) {
            "const" => self.text(1) == "fn",
            "extern" => self.text(1) == "fn" || self.text(2) == "fn",
            _ => true,
        }
    }

    /// Consumes `#[…]` / `#![…]`; returns `true` if it marks test code.
    fn attribute(&mut self) -> bool {
        self.bump(); // `#`
        if self.text(0) == "!" {
            self.bump();
        }
        if self.text(0) != "[" {
            return false;
        }
        let start = self.pos;
        self.skip_balanced("[", "]");
        let mut saw_cfg = false;
        let mut saw_test = false;
        let mut saw_not = false;
        let mut count = 0usize;
        for i in start..self.pos {
            let t = &self.tokens[self.sig[i]];
            if t.kind == TokenKind::Ident {
                count += 1;
                match t.text(self.src) {
                    "cfg" => saw_cfg = true,
                    "test" => saw_test = true,
                    "not" => saw_not = true,
                    _ => {}
                }
            }
        }
        // `#[test]` (sole ident) or `#[cfg(test)]` without negation.
        (saw_test && count == 1) || (saw_cfg && saw_test && !saw_not)
    }

    /// Skips a balanced `open … close` region, including nested pairs.
    /// The cursor must be on `open`; ends past the matching `close`.
    fn skip_balanced(&mut self, open: &str, close: &str) {
        debug_assert_eq!(self.text(0), open);
        let mut depth = 0i64;
        while !self.at_end() {
            let t = self.text(0);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    fn mod_or_trait(&mut self, impl_idx: Option<usize>, in_test: bool) {
        let is_mod = self.text(0) == "mod";
        self.bump(); // `mod` / `trait`
        let region_start = self.peek_tok(0).map(|t| t.start);
        let name = if self.kind(0) == Some(TokenKind::Ident) {
            self.text(0).to_owned()
        } else {
            String::new()
        };
        // Scan to `{` (body) or `;` (declaration); traits may carry
        // supertrait bounds and generics before the brace.
        while !self.at_end() && self.text(0) != "{" && self.text(0) != ";" {
            self.bump();
        }
        if is_mod && !name.is_empty() {
            self.model.mods.push((self.mod_stack.clone(), name.clone()));
        }
        if self.text(0) == ";" {
            self.bump();
            return;
        }
        if self.at_end() {
            return;
        }
        self.bump(); // `{`
        let body_start = self.peek_tok(0).map_or(self.src.len(), |t| t.start);
        if is_mod {
            self.mod_stack.push(name);
        }
        self.items(impl_idx, in_test);
        if is_mod {
            self.mod_stack.pop();
        }
        let body_end = self.peek_tok(0).map_or(self.src.len(), |t| t.start);
        if in_test {
            let s = region_start.unwrap_or(body_start);
            self.model.test_regions.push((s, body_end));
        }
    }

    /// Parses `use …;`, flattening groups into one [`UseDecl`] per leaf.
    fn use_item(&mut self) {
        self.bump(); // `use`
        let mut prefix = Vec::new();
        self.use_tree(&mut prefix);
        if self.text(0) == ";" {
            self.bump();
        }
    }

    /// Parses one use-tree with `prefix` already collected; the cursor
    /// ends on the terminator (`;`, `,`, or past the tree's `}`).
    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let entry_len = prefix.len();
        loop {
            match (self.kind(0), self.text(0)) {
                (Some(TokenKind::Ident | TokenKind::RawIdent), "as") => {
                    self.bump();
                    let alias = if self.kind(0) == Some(TokenKind::Ident) {
                        self.text(0).to_owned()
                    } else {
                        String::new()
                    };
                    if !alias.is_empty() {
                        self.bump();
                    }
                    self.record_use(prefix, alias);
                    return;
                }
                (Some(TokenKind::Ident | TokenKind::RawIdent), txt) => {
                    prefix.push(txt.trim_start_matches("r#").to_owned());
                    self.bump();
                }
                (Some(TokenKind::Punct), ":") => self.bump(),
                (Some(TokenKind::Punct), "*") => {
                    self.bump();
                    self.model.uses.push(UseDecl {
                        path: prefix.clone(),
                        alias: String::new(),
                        is_glob: true,
                        module: self.mod_stack.clone(),
                    });
                    return;
                }
                (Some(TokenKind::Punct), "{") => {
                    self.bump();
                    while !self.at_end() && self.text(0) != "}" {
                        if self.text(0) == "," {
                            self.bump();
                            continue;
                        }
                        let saved = prefix.len();
                        self.use_tree(prefix);
                        prefix.truncate(saved);
                    }
                    if self.text(0) == "}" {
                        self.bump();
                    }
                    return;
                }
                _ => {
                    // `;`, `,`, `}` or EOF: a simple leaf ends here.
                    if prefix.len() > entry_len {
                        self.record_use(prefix, String::new());
                    }
                    return;
                }
            }
        }
    }

    /// Records a non-glob use leaf. An empty `alias` means "bind the last
    /// segment"; a trailing `self` segment (`use foo::bar::{self}`) binds
    /// the parent module's name instead.
    fn record_use(&mut self, prefix: &[String], alias: String) {
        let mut path = prefix.to_vec();
        if path.last().is_some_and(|s| s == "self") && path.len() > 1 {
            path.pop();
        }
        let alias = if alias.is_empty() {
            match path.last() {
                Some(last) => last.clone(),
                None => return,
            }
        } else {
            alias
        };
        self.model.uses.push(UseDecl {
            path,
            alias,
            is_glob: false,
            module: self.mod_stack.clone(),
        });
    }

    /// Parses `struct Name … ;` / `struct Name(…);` / `struct Name { … }`,
    /// recording named fields as `(name, type-last-segment)`.
    fn struct_item(&mut self) {
        self.bump(); // `struct`
        let name = if self.kind(0) == Some(TokenKind::Ident) {
            self.text(0).to_owned()
        } else {
            String::new()
        };
        if name.is_empty() {
            return;
        }
        self.bump();
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Tuple struct or where clause: scan to `{`, `(`, or `;`.
        while !self.at_end() && !matches!(self.text(0), "{" | "(" | ";") {
            self.bump();
        }
        let mut fields = Vec::new();
        match self.text(0) {
            ";" => self.bump(),
            "(" => {
                self.skip_balanced("(", ")");
                if self.text(0) == ";" {
                    self.bump();
                }
            }
            "{" => {
                let start = self.pos;
                self.skip_balanced("{", "}");
                fields = self.split_typed_bindings(start + 1, self.pos - 1);
            }
            _ => {}
        }
        self.model.structs.push(StructInfo {
            name,
            module: self.mod_stack.clone(),
            fields,
        });
    }

    fn impl_item(&mut self, in_test: bool) {
        let impl_line = self.peek_tok(0).map_or(1, |t| t.line);
        let impl_start = self.peek_tok(0).map_or(0, |t| t.start);
        self.bump(); // `impl`
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Collect path segments until `for` (trait impl) or `{`.
        let mut first_path = Vec::new();
        let mut second_path = Vec::new();
        let mut saw_for = false;
        let mut angle = 0i64;
        while !self.at_end() {
            let txt = self.text(0);
            if angle == 0 {
                if txt == "{" {
                    break;
                }
                if txt == "for" && self.kind(0) == Some(TokenKind::Ident) {
                    saw_for = true;
                    self.bump();
                    continue;
                }
                // `impl Trait for Type where …` — stop collecting at where.
                if txt == "where" {
                    while !self.at_end() && self.text(0) != "{" {
                        self.bump();
                    }
                    break;
                }
            }
            match txt {
                "<" => angle += 1,
                ">" if !self.is_arrow_close() => angle = (angle - 1).max(0),
                _ => {
                    if angle == 0 && self.kind(0) == Some(TokenKind::Ident) {
                        let dst = if saw_for {
                            &mut second_path
                        } else {
                            &mut first_path
                        };
                        dst.push(txt.to_owned());
                    }
                }
            }
            self.bump();
        }
        let (trait_name, self_ty) = if saw_for {
            (first_path.last().cloned(), second_path.last().cloned())
        } else {
            (None, first_path.last().cloned())
        };
        self.model.impls.push(ImplInfo {
            trait_name,
            self_ty: self_ty.unwrap_or_default(),
            line: impl_line,
            module: self.mod_stack.clone(),
        });
        let idx = self.model.impls.len() - 1;
        if self.text(0) == "{" {
            self.bump();
            self.items(Some(idx), in_test);
        }
        if in_test {
            let end = self.peek_tok(0).map_or(self.src.len(), |t| t.start);
            self.model.test_regions.push((impl_start, end));
        }
    }

    /// Skips `<…>` generics, honoring nesting and `->` inside bounds.
    fn skip_generics(&mut self) {
        let mut depth = 0i64;
        while !self.at_end() {
            match self.text(0) {
                "<" => depth += 1,
                ">" if !self.is_arrow_close() => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// `true` when the `>` under the cursor is the tip of a `->` arrow
    /// (so it must not close a generics bracket).
    fn is_arrow_close(&self) -> bool {
        self.is_arrow_close_at(self.pos)
    }

    /// [`Self::is_arrow_close`] for an arbitrary significant index.
    fn is_arrow_close_at(&self, at: usize) -> bool {
        let Some(&i) = self.sig.get(at) else {
            return false;
        };
        if at == 0 {
            return false;
        }
        let cur = &self.tokens[i];
        let prev = &self.tokens[self.sig[at - 1]];
        prev.text(self.src) == "-" && prev.end == cur.start
    }

    /// Splits `sig[start..end]` on top-level commas and parses each piece
    /// as a `name: Type` binding (fn parameter or struct field), skipping
    /// attributes, visibility, `mut`/`ref`, and `self` receivers. The
    /// type is reduced to its last path segment (empty for non-path
    /// types: slices, tuples, `dyn`/`impl` bounds, fn pointers).
    fn split_typed_bindings(&self, start: usize, end: usize) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut group = 0i64;
        let mut angle = 0i64;
        let mut piece: Vec<usize> = Vec::new();
        for j in start..end {
            let txt = self.tokens[self.sig[j]].text(self.src);
            match txt {
                "(" | "[" | "{" => group += 1,
                ")" | "]" | "}" => group -= 1,
                "<" => angle += 1,
                ">" if !self.is_arrow_close_at(j) => angle = (angle - 1).max(0),
                "," if group == 0 && angle == 0 => {
                    self.push_typed_binding(&piece, &mut out);
                    piece.clear();
                    continue;
                }
                _ => {}
            }
            piece.push(j);
        }
        self.push_typed_binding(&piece, &mut out);
        out
    }

    /// Parses one `name: Type` piece (significant indices) into `out`.
    fn push_typed_binding(&self, piece: &[usize], out: &mut Vec<(String, String)>) {
        let mut k = 0usize;
        let txt = |k: usize| {
            piece
                .get(k)
                .map_or("", |&j| self.tokens[self.sig[j]].text(self.src))
        };
        let kind = |k: usize| piece.get(k).map(|&j| self.tokens[self.sig[j]].kind);
        // Skip field attributes `#[…]`.
        while txt(k) == "#" {
            k += 1;
            if txt(k) == "[" {
                let mut depth = 0i64;
                while k < piece.len() {
                    match txt(k) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                k += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
        }
        // Skip visibility `pub` / `pub(crate)` / `pub(in path)`.
        if txt(k) == "pub" {
            k += 1;
            if txt(k) == "(" {
                while k < piece.len() && txt(k) != ")" {
                    k += 1;
                }
                k += 1; // `)`
            }
        }
        while matches!(txt(k), "mut" | "ref") {
            k += 1;
        }
        // `self` receivers (`self`, `&self`, `&'a mut self`): no binding.
        {
            let mut r = k;
            while matches!(txt(r), "&" | "mut") || kind(r) == Some(TokenKind::Lifetime) {
                r += 1;
            }
            if txt(r) == "self" {
                return;
            }
        }
        if !matches!(kind(k), Some(TokenKind::Ident | TokenKind::RawIdent)) {
            return;
        }
        let name = txt(k).trim_start_matches("r#").to_owned();
        // The separator must be a single `:` (not `::`).
        if txt(k + 1) != ":" || txt(k + 2) == ":" {
            return;
        }
        let ty = self.type_last_segment(&piece[k + 2..]);
        out.push((name, ty));
    }

    /// Reduces a type's significant indices to the last path segment of
    /// its outermost path (`&mut Vec<Tuple>` → `Vec`); empty when the
    /// type is not a plain path.
    fn type_last_segment(&self, piece: &[usize]) -> String {
        let txt = |k: usize| {
            piece
                .get(k)
                .map_or("", |&j| self.tokens[self.sig[j]].text(self.src))
        };
        let kind = |k: usize| piece.get(k).map(|&j| self.tokens[self.sig[j]].kind);
        let mut k = 0usize;
        while matches!(txt(k), "&" | "mut") || kind(k) == Some(TokenKind::Lifetime) {
            k += 1;
        }
        if matches!(txt(k), "dyn" | "impl") {
            return String::new();
        }
        let mut last = String::new();
        while k < piece.len() {
            if !matches!(kind(k), Some(TokenKind::Ident | TokenKind::RawIdent)) {
                break;
            }
            last = txt(k).trim_start_matches("r#").to_owned();
            if txt(k + 1) == ":" && txt(k + 2) == ":" {
                k += 3;
            } else {
                break;
            }
        }
        last
    }

    fn fn_item(&mut self, impl_idx: Option<usize>, is_test: bool) {
        let fn_tok_start = self.peek_tok(0).map_or(0, |t| t.start);
        self.bump(); // `fn`
        let (name, line) = match self.peek_tok(0) {
            Some(t) if matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) => {
                (t.text(self.src).to_owned(), t.line)
            }
            _ => (String::new(), 0),
        };
        if !name.is_empty() {
            self.bump();
        }
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Parameter list.
        let mut has_seed_param = false;
        let mut params = Vec::new();
        if self.text(0) == "(" {
            let start = self.pos;
            self.skip_balanced("(", ")");
            for i in start..self.pos {
                let t = &self.tokens[self.sig[i]];
                if t.kind == TokenKind::Ident {
                    let txt = t.text(self.src);
                    if txt == "seed" || txt.ends_with("_seed") {
                        has_seed_param = true;
                    }
                }
            }
            params = self.split_typed_bindings(start + 1, self.pos - 1);
        }
        // Return type / where clause: scan to the body `{` or a `;`.
        while !self.at_end() && self.text(0) != "{" && self.text(0) != ";" {
            self.bump();
        }
        let mut body = None;
        let mut calls = Vec::new();
        let mut loops = Vec::new();
        let mut span_end = self.peek_tok(0).map_or(self.src.len(), |t| t.end);
        if self.text(0) == "{" {
            let body_start_sig = self.pos;
            self.skip_balanced("{", "}");
            let body_end_sig = self.pos; // one past the closing brace
            body = Some((self.sig[body_start_sig], self.sig[body_end_sig - 1]));
            span_end = self.tokens[self.sig[body_end_sig - 1]].end;
            calls = self.collect_calls(body_start_sig, body_end_sig);
            loops = self.collect_loops(body_start_sig, body_end_sig);
        } else if self.text(0) == ";" {
            span_end = self.peek_tok(0).map_or(self.src.len(), |t| t.end);
            self.bump();
        }
        if is_test {
            self.model.test_regions.push((fn_tok_start, span_end));
        }
        self.model.fns.push(FnInfo {
            name,
            line,
            impl_idx,
            body,
            span: (fn_tok_start, span_end),
            is_test,
            has_seed_param,
            params,
            module: self.mod_stack.clone(),
            calls,
            loops,
        });
    }

    /// Scans significant tokens `sig[start..end]` for `for`/`while`/`loop`
    /// bodies, recording each as a region with its nesting depth.
    ///
    /// A loop body is the first `{` after the keyword at paren/bracket
    /// depth 0 — the same approximation rustc's grammar encourages, since
    /// conditions cannot contain bare block expressions. `for<'a>`
    /// higher-ranked bounds are excluded (the keyword is followed by `<`).
    fn collect_loops(&self, start: usize, end: usize) -> Vec<LoopRegion> {
        let mut out: Vec<LoopRegion> = Vec::new();
        // Ends of the loop regions currently enclosing the cursor.
        let mut active: Vec<usize> = Vec::new();
        for i in start..end {
            while active.last().is_some_and(|&e| i >= e) {
                active.pop();
            }
            let t = &self.tokens[self.sig[i]];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let kw = t.text(self.src);
            if !matches!(kw, "for" | "while" | "loop") {
                continue;
            }
            // `.await`-style field position or HRTB `for<'a>`: not loops.
            let prev_is_dot = i > start && self.tokens[self.sig[i - 1]].text(self.src) == ".";
            let next_is_lt = self
                .sig
                .get(i + 1)
                .is_some_and(|&j| self.tokens[j].text(self.src) == "<");
            if prev_is_dot || (kw == "for" && next_is_lt) {
                continue;
            }
            let Some(open) = self.loop_body_open(i + 1, end) else {
                continue;
            };
            let close = self.balanced_close(open, end);
            out.push(LoopRegion {
                sig_start: open,
                sig_end: close,
                depth: u32::try_from(active.len()).unwrap_or(u32::MAX - 1) + 1,
                line: t.line,
            });
            active.push(close);
        }
        out
    }

    /// The significant index of the first `{` at paren/bracket depth 0 in
    /// `sig[from..end]`, i.e. a loop's body brace; `None` if a `;` ends the
    /// statement first.
    fn loop_body_open(&self, from: usize, end: usize) -> Option<usize> {
        let mut grouping = 0i64;
        for j in from..end {
            match self.tokens[self.sig[j]].text(self.src) {
                "(" | "[" => grouping += 1,
                ")" | "]" => grouping -= 1,
                "{" if grouping == 0 => return Some(j),
                ";" if grouping <= 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// Significant index one past the `}` matching the `{` at `open`.
    fn balanced_close(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i64;
        for j in open..end {
            match self.tokens[self.sig[j]].text(self.src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        end
    }

    /// Scans significant tokens `sig[start..end]` for call sites.
    fn collect_calls(&self, start: usize, end: usize) -> Vec<Call> {
        let mut calls = Vec::new();
        for i in start..end {
            let t = &self.tokens[self.sig[i]];
            if !matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent) {
                continue;
            }
            let name = t.text(self.src).trim_start_matches("r#");
            let next = self.sig.get(i + 1).map(|&j| self.tokens[j].text(self.src));
            let next2 = self.sig.get(i + 2).map(|&j| self.tokens[j].text(self.src));
            let (is_call, is_macro) = match (next, next2) {
                (Some("("), _) => (true, false),
                (Some("!"), Some("(" | "[" | "{")) => (true, true),
                _ => (false, false),
            };
            if !is_call {
                continue;
            }
            // Look backwards for `.method(` and `Qual::name(`.
            let prev = (i > start).then(|| self.tokens[self.sig[i - 1]].text(self.src));
            let is_method = prev == Some(".");
            // Keywords are never free calls, but contextual keywords are
            // fine as method names (`.union(…)` on sets).
            if !is_method && KEYWORDS_NOT_CALLS.contains(&name) {
                continue;
            }
            let qualifier = if prev == Some(":")
                && i >= start + 3
                && self.tokens[self.sig[i - 2]].text(self.src) == ":"
            {
                let q = &self.tokens[self.sig[i - 3]];
                matches!(q.kind, TokenKind::Ident | TokenKind::RawIdent)
                    .then(|| q.text(self.src).to_owned())
            } else {
                None
            };
            calls.push(Call {
                name: name.to_owned(),
                qualifier,
                line: t.line,
                sig_idx: i,
                is_method,
                is_macro,
            });
        }
        calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        parse(src, &lex(src))
    }

    #[test]
    fn finds_fns_and_lines() {
        let src = "fn a() {}\n\npub fn b(x: u32) -> u32 { x }\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[0].name, "a");
        assert_eq!(m.fns[0].line, 1);
        assert_eq!(m.fns[1].name, "b");
        assert_eq!(m.fns[1].line, 3);
        assert!(m.fns.iter().all(|f| !f.is_test));
    }

    #[test]
    fn impl_blocks_carry_trait_and_self_ty() {
        let src = "\
impl MapTask for WcTask {
    fn map(&mut self) {}
}
impl<K: Ord, V> Helper<K, V> {
    fn go(&self) {}
}
impl std::fmt::Display for Wc {
    fn fmt(&self) {}
}
";
        let m = model(src);
        assert_eq!(m.impls.len(), 3);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("MapTask"));
        assert_eq!(m.impls[0].self_ty, "WcTask");
        assert_eq!(m.impls[1].trait_name, None);
        assert_eq!(m.impls[1].self_ty, "Helper");
        assert_eq!(m.impls[2].trait_name.as_deref(), Some("Display"));
        let map_fn = m.fns.iter().find(|f| f.name == "map").expect("map fn");
        assert_eq!(map_fn.impl_idx, Some(0));
        let go_fn = m.fns.iter().find(|f| f.name == "go").expect("go fn");
        assert_eq!(go_fn.impl_idx, Some(1));
    }

    #[test]
    fn impl_with_fn_bound_generics() {
        let src = "impl<F: Fn(u32) -> u32> Apply for Wrapper<F> { fn apply(&self) {} }";
        let m = model(src);
        assert_eq!(m.impls.len(), 1);
        assert_eq!(m.impls[0].trait_name.as_deref(), Some("Apply"));
        assert_eq!(m.impls[0].self_ty, "Wrapper");
    }

    #[test]
    fn cfg_test_regions_by_brace_depth() {
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t() { prod(); }
}

fn also_prod() {}
";
        let m = model(src);
        let prod = m.fns.iter().find(|f| f.name == "prod").expect("prod");
        assert!(!prod.is_test);
        let t = m.fns.iter().find(|f| f.name == "t").expect("t");
        assert!(t.is_test);
        let also = m.fns.iter().find(|f| f.name == "also_prod").expect("also");
        assert!(!also.is_test);
        assert!(m.in_test_region(src.find("prod();").expect("call")));
        assert!(!m.in_test_region(src.find("also_prod").expect("fn2")));
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipped() {}\n#[test]\nfn t() {}\n";
        let m = model(src);
        assert!(!m.fns[0].is_test);
        assert!(m.fns[1].is_test);
    }

    #[test]
    fn calls_with_qualifiers_methods_and_macros() {
        let src = "\
fn driver(seed: u64) {
    let rng = StdRng::seed_from_u64(seed);
    helper(1);
    emitter.emit(k, v);
    assert!(ok);
    if cond(x) { loop {} }
}
";
        let m = model(src);
        let f = &m.fns[0];
        assert!(f.has_seed_param);
        let by_name = |n: &str| f.calls.iter().find(|c| c.name == n);
        let ctor = by_name("seed_from_u64").expect("ctor call");
        assert_eq!(ctor.qualifier.as_deref(), Some("StdRng"));
        assert!(by_name("helper").is_some());
        let emit = by_name("emit").expect("method call");
        assert!(emit.is_method);
        let am = by_name("assert").expect("macro");
        assert!(am.is_macro);
        assert!(by_name("cond").is_some());
        // Keywords never register as calls.
        assert!(by_name("if").is_none() && by_name("loop").is_none());
    }

    #[test]
    fn seed_param_detection() {
        let m = model("fn a(shuffle_seed: u64) {}\nfn b(n: usize) {}\n");
        assert!(m.fns[0].has_seed_param);
        assert!(!m.fns[1].has_seed_param);
    }

    #[test]
    fn trait_default_methods_and_decls() {
        let src = "\
pub trait MapTask {
    fn map(&mut self);
    fn finish(&mut self) { self.map(); }
}
";
        let m = model(src);
        let map_decl = m.fns.iter().find(|f| f.name == "map").expect("decl");
        assert!(map_decl.body.is_none());
        let finish = m.fns.iter().find(|f| f.name == "finish").expect("default");
        assert!(finish.body.is_some());
        assert!(finish.calls.iter().any(|c| c.name == "map" && c.is_method));
    }

    #[test]
    fn nested_mods_inherit_test_state() {
        let src = "\
#[cfg(test)]
mod outer {
    mod inner {
        fn deep() {}
    }
}
";
        let m = model(src);
        let deep = m.fns.iter().find(|f| f.name == "deep").expect("deep");
        assert!(deep.is_test);
    }

    #[test]
    fn const_fn_and_extern_fn_are_found() {
        let src = "const fn cf() -> u32 { 1 }\nconst MAX: u32 = 9;\nfn after() {}\n";
        let m = model(src);
        assert!(m.fns.iter().any(|f| f.name == "cf"));
        assert!(m.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn loop_regions_and_nesting_depth() {
        let src = "\
fn kernel(xs: &[u32]) {
    setup();
    'outer: for x in xs {
        one(x);
        while cond(x) {
            two(x);
            loop { three(); break 'outer; }
        }
    }
    teardown();
}
";
        let m = model(src);
        let f = &m.fns[0];
        assert_eq!(f.loops.len(), 3);
        assert_eq!(
            f.loops.iter().map(|r| r.depth).collect::<Vec<_>>(),
            [1, 2, 3]
        );
        let at = |name: &str| {
            f.calls
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("call {name}"))
                .sig_idx
        };
        assert_eq!(f.loop_depth_at(at("setup")), 0);
        assert_eq!(f.loop_depth_at(at("one")), 1);
        assert_eq!(f.loop_depth_at(at("two")), 2);
        assert_eq!(f.loop_depth_at(at("three")), 3);
        assert_eq!(f.loop_depth_at(at("teardown")), 0);
    }

    #[test]
    fn loop_conditions_with_closure_braces_and_hrtb_do_not_open_regions() {
        let src = "\
fn f(v: &[u32]) {
    while v.iter().any(|x| { pred(x) }) {
        body(v);
    }
    let g: Box<dyn for<'a> Fn(&'a u32)> = mk();
    for (i, x) in v.iter().enumerate() {
        use_it(i, x);
    }
}
";
        let m = model(src);
        let f = &m.fns[0];
        // Exactly two loop regions: the `while` body and the `for` body —
        // neither the closure braces in the condition nor the HRTB `for`.
        assert_eq!(f.loops.len(), 2);
        assert!(f.loops.iter().all(|r| r.depth == 1));
        let at = |name: &str| {
            f.calls
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("call {name}"))
                .sig_idx
        };
        assert_eq!(f.loop_depth_at(at("body")), 1);
        assert_eq!(f.loop_depth_at(at("use_it")), 1);
        assert_eq!(f.loop_depth_at(at("mk")), 0);
    }

    #[test]
    fn use_decls_flatten_groups_aliases_and_globs() {
        let src = "\
use std::collections::HashMap;
use crate::dominance::{dominates, compare as cmp};
use skymr_common::tuple::*;
use super::job::{self, JobSpec};
pub use crate::grid::Grid;
";
        let m = model(src);
        let find = |alias: &str| {
            m.uses
                .iter()
                .find(|u| u.alias == alias)
                .unwrap_or_else(|| panic!("use {alias}"))
        };
        assert_eq!(
            find("HashMap").path,
            ["std", "collections", "HashMap"],
            "plain path"
        );
        assert_eq!(find("dominates").path, ["crate", "dominance", "dominates"]);
        assert_eq!(find("cmp").path, ["crate", "dominance", "compare"]);
        let glob = m.uses.iter().find(|u| u.is_glob).expect("glob");
        assert_eq!(glob.path, ["skymr_common", "tuple"]);
        // `{self, …}` binds the parent module's name.
        assert_eq!(find("job").path, ["super", "job"]);
        assert_eq!(find("JobSpec").path, ["super", "job", "JobSpec"]);
        assert_eq!(find("Grid").path, ["crate", "grid", "Grid"]);
    }

    #[test]
    fn struct_fields_record_type_last_segments() {
        let src = "\
pub struct Job {
    pub name: String,
    grid: crate::grid::Grid,
    #[allow(dead_code)]
    slots: Vec<Slot>,
    raw: [u8; 4],
}
struct Marker;
struct Pair(u32, u32);
";
        let m = model(src);
        assert_eq!(m.structs.len(), 3);
        let job = &m.structs[0];
        assert_eq!(job.name, "Job");
        assert_eq!(
            job.fields,
            [
                ("name".to_owned(), "String".to_owned()),
                ("grid".to_owned(), "Grid".to_owned()),
                ("slots".to_owned(), "Vec".to_owned()),
                ("raw".to_owned(), String::new()),
            ]
        );
        assert!(m.structs[1].fields.is_empty());
        assert!(m.structs[2].fields.is_empty());
    }

    #[test]
    fn fn_params_record_names_and_types() {
        let src = "\
impl Grid {
    fn assign(&self, t: &Tuple, out: &mut Vec<usize>, n: usize) -> usize { 0 }
}
fn free(spec: crate::job::JobSpec, xs: &[Tuple], f: impl Fn(u32) -> u32) {}
";
        let m = model(src);
        let assign = m.fns.iter().find(|f| f.name == "assign").expect("assign");
        assert_eq!(
            assign.params,
            [
                ("t".to_owned(), "Tuple".to_owned()),
                ("out".to_owned(), "Vec".to_owned()),
                ("n".to_owned(), "usize".to_owned()),
            ]
        );
        let free = m.fns.iter().find(|f| f.name == "free").expect("free");
        assert_eq!(free.params.len(), 3);
        assert_eq!(free.params[0], ("spec".to_owned(), "JobSpec".to_owned()));
        assert_eq!(free.params[1], ("xs".to_owned(), String::new()));
        assert_eq!(free.params[2], ("f".to_owned(), String::new()));
    }

    #[test]
    fn inline_mod_paths_are_recorded() {
        let src = "\
mod outer {
    pub mod inner {
        pub fn deep() {}
        impl Thing { fn m(&self) {} }
    }
    use crate::top::Item;
    fn shallow() {}
}
mod sibling;
fn top() {}
";
        let m = model(src);
        let deep = m.fns.iter().find(|f| f.name == "deep").expect("deep");
        assert_eq!(deep.module, ["outer", "inner"]);
        let shallow = m.fns.iter().find(|f| f.name == "shallow").expect("shallow");
        assert_eq!(shallow.module, ["outer"]);
        let top = m.fns.iter().find(|f| f.name == "top").expect("top");
        assert!(top.module.is_empty());
        assert_eq!(m.impls[0].module, ["outer", "inner"]);
        assert_eq!(m.uses[0].module, ["outer"]);
        assert!(m.mods.contains(&(Vec::new(), "outer".to_owned())));
        assert!(m
            .mods
            .contains(&(vec!["outer".to_owned()], "inner".to_owned())));
        assert!(m.mods.contains(&(Vec::new(), "sibling".to_owned())));
    }

    #[test]
    fn plain_blocks_do_not_count_as_loop_depth() {
        let src = "fn f() { { inner(); } for x in v { { deep(x); } } }";
        let m = model(src);
        let f = &m.fns[0];
        assert_eq!(f.loops.len(), 1);
        let at = |name: &str| {
            f.calls
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("call {name}"))
                .sig_idx
        };
        assert_eq!(f.loop_depth_at(at("inner")), 0);
        assert_eq!(f.loop_depth_at(at("deep")), 1);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(192))]

        /// Round-trip: emit a fn body from nesting opcodes, recording the
        /// loop depth at which each probe call is written; the parsed
        /// model must report the same depth for every probe.
        #[test]
        fn loop_depth_round_trips_on_generated_nesting(
            ops in proptest::collection::vec(0u8..6, 0..64),
        ) {
            let mut src = String::from("fn soup(xs: &[u32]) {\n");
            let mut depth = 0u32;
            let mut open = Vec::new(); // true = loop region, false = block
            let mut expected = Vec::new();
            for (n, op) in ops.iter().enumerate() {
                match op {
                    0 => {
                        src.push_str("for i in xs {\n");
                        open.push(true);
                        depth += 1;
                    }
                    1 => {
                        src.push_str("while go() {\n");
                        open.push(true);
                        depth += 1;
                    }
                    2 => {
                        src.push_str("loop {\n");
                        open.push(true);
                        depth += 1;
                    }
                    3 => {
                        src.push_str("{\n");
                        open.push(false);
                    }
                    4 => {
                        if let Some(was_loop) = open.pop() {
                            src.push_str("}\n");
                            if was_loop {
                                depth -= 1;
                            }
                        }
                    }
                    _ => {
                        src.push_str(&format!("probe_{n}(x);\n"));
                        expected.push((format!("probe_{n}"), depth));
                    }
                }
            }
            while open.pop().is_some() {
                src.push_str("}\n");
            }
            src.push_str("}\n");
            let m = model(&src);
            let f = &m.fns[0];
            for (name, want) in &expected {
                let call = f
                    .calls
                    .iter()
                    .find(|c| &c.name == name)
                    .expect("probe call parsed");
                assert_eq!(
                    f.loop_depth_at(call.sig_idx),
                    *want,
                    "probe {name} in:\n{src}"
                );
            }
        }
    }
}
