//! A hand-rolled, lossless Rust lexer.
//!
//! The analysis passes in [`crate::analyze`] need token-level structure —
//! the PR-1 sanitizer worked line-by-line with substring rules, which is
//! exactly the model that cannot represent a raw string spilling over a
//! line boundary or an escaped-quote char literal (see the regression
//! tests at the bottom for inputs the old approach provably misread).
//!
//! Design constraints:
//!
//! * **Lossless.** Every input byte belongs to exactly one token, and the
//!   concatenation of all token slices reproduces the input byte-for-byte.
//!   Malformed input never panics; bytes the lexer cannot classify become
//!   [`TokenKind::Unknown`] tokens rather than being dropped. This is what
//!   the workspace round-trip test and the proptest token soup pin down.
//! * **No dependencies.** The offline build has no `syn`/`proc-macro2`;
//!   this is a self-contained scanner covering the subset of Rust's lexical
//!   grammar that real sources exercise: nested block comments, all string
//!   flavors (`"…"`, `b"…"`, `c"…"`, and raw variants with up to 255 `#`s),
//!   char/byte literals with escapes, lifetime-vs-char disambiguation, raw
//!   identifiers (`r#fn`), numeric literals with underscores/suffixes, and
//!   single-character punctuation.
//!
//! Tokens carry byte spans and the 1-based line of their first byte, so
//! diagnostics built on top of them point at real `file:line` locations.

/// The classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Runs of whitespace (spaces, tabs, newlines, …).
    Whitespace,
    /// `// …` to the end of the line (newline excluded), including doc `///`.
    LineComment,
    /// `/* … */` with Rust's nesting rules; unterminated runs to EOF.
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// A raw identifier, `r#name`.
    RawIdent,
    /// A lifetime or loop label, `'name`.
    Lifetime,
    /// A char literal `'x'` (escapes included).
    Char,
    /// A byte literal `b'x'`.
    Byte,
    /// Any string literal: `"…"`, `b"…"`, `c"…"`, `r"…"`, `br#"…"#`, ….
    Str,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// A single punctuation character (`.`, `::` arrives as two tokens).
    Punct,
    /// A byte sequence the lexer could not classify (kept for losslessness).
    Unknown,
}

/// One token: kind plus the byte span it occupies in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: usize,
}

impl Token {
    /// The token's slice of `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// `true` for whitespace and comments — tokens the parser skips.
    pub fn is_trivia(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
        )
    }
}

/// Lexes `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer failed to consume input");
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// The char at `pos + ahead` bytes (must be a char boundary).
    fn peek_char(&self, ahead: usize) -> Option<char> {
        self.src[self.pos + ahead..].chars().next()
    }

    /// Advances over `n` bytes, maintaining the line counter.
    fn bump(&mut self, n: usize) {
        for &b in &self.bytes[self.pos..self.pos + n] {
            if b == b'\n' {
                self.line += 1;
            }
        }
        self.pos += n;
    }

    fn next_kind(&mut self) -> TokenKind {
        let Some(c) = self.peek_char(0) else {
            // Mid-character position cannot happen (we always consume
            // whole chars), but stay lossless regardless.
            self.pos += 1;
            return TokenKind::Unknown;
        };

        if c.is_whitespace() {
            return self.whitespace();
        }
        if c == '/' {
            match self.peek(1) {
                Some(b'/') => return self.line_comment(),
                Some(b'*') => return self.block_comment(),
                _ => {}
            }
        }
        // String-prefix forms must be tried before the generic ident path:
        // r"…", r#"…"#, r#ident, b"…", br#"…"#, b'x', c"…", cr#"…"#.
        if matches!(c, 'r' | 'b' | 'c') {
            if let Some(kind) = self.prefixed_literal() {
                return kind;
            }
        }
        if is_ident_start(c) {
            return self.ident();
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        match c {
            '"' => self.string(),
            '\'' => self.lifetime_or_char(),
            _ if c.is_ascii() => {
                self.bump(1);
                TokenKind::Punct
            }
            _ => {
                self.bump(c.len_utf8());
                TokenKind::Unknown
            }
        }
    }

    fn whitespace(&mut self) -> TokenKind {
        while let Some(c) = self.peek_char(0) {
            if !c.is_whitespace() {
                break;
            }
            self.bump(c.len_utf8());
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump(1);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.bump(2); // the opening `/*`
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump(2);
                }
                (Some(_), _) => self.bump(1),
                (None, _) => break, // unterminated: runs to EOF
            }
        }
        TokenKind::BlockComment
    }

    /// Handles `r`/`b`/`c`-prefixed literals and raw identifiers; returns
    /// `None` when the prefix is just the start of an ordinary identifier.
    fn prefixed_literal(&mut self) -> Option<TokenKind> {
        let c0 = self.peek(0)?;
        // Raw variants: [b|c]? r #* "
        let raw_at = match (c0, self.peek(1)) {
            (b'r', _) => Some(0),
            (b'b' | b'c', Some(b'r')) => Some(1),
            _ => None,
        };
        if let Some(r_off) = raw_at {
            let mut i = r_off + 1;
            let mut hashes = 0usize;
            while self.peek(i) == Some(b'#') {
                hashes += 1;
                i += 1;
            }
            if self.peek(i) == Some(b'"') {
                self.bump(i + 1);
                self.raw_string_body(hashes);
                return Some(TokenKind::Str);
            }
            // `r#ident` — a raw identifier (only the bare-`r` form exists).
            if r_off == 0 && hashes == 1 && self.peek_char(2).is_some_and(is_ident_start) {
                self.bump(2);
                self.ident();
                return Some(TokenKind::RawIdent);
            }
            return None;
        }
        // Non-raw prefixed forms: b"…", c"…", b'x'.
        match (c0, self.peek(1)) {
            (b'b' | b'c', Some(b'"')) => {
                self.bump(1);
                Some(self.string())
            }
            (b'b', Some(b'\'')) => {
                self.bump(1);
                self.char_body();
                Some(TokenKind::Byte)
            }
            _ => None,
        }
    }

    /// Consumes a raw-string body after the opening quote: scans for a `"`
    /// followed by `hashes` `#`s. Unterminated bodies run to EOF.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                    seen += 1;
                }
                if seen == hashes {
                    self.bump(1 + hashes);
                    return;
                }
            }
            self.bump(1);
        }
    }

    /// Consumes an ordinary (escaped) string body including the opening and
    /// closing quotes. The caller has not yet consumed the opening quote.
    fn string(&mut self) -> TokenKind {
        self.bump(1); // opening `"`
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    // An escape: consume the backslash and, if present, the
                    // escaped char (possibly multi-byte at a boundary).
                    self.bump(1);
                    if let Some(c) = self.peek_char(0) {
                        self.bump(c.len_utf8());
                    }
                }
                b'"' => {
                    self.bump(1);
                    return TokenKind::Str;
                }
                _ => self.bump(1),
            }
        }
        TokenKind::Str // unterminated: runs to EOF
    }

    /// Disambiguates `'a` (lifetime/label) from `'a'` (char literal).
    ///
    /// Mirrors rustc: after the opening quote, a backslash always means a
    /// char literal; otherwise it is a char literal iff the character after
    /// the next one is the closing quote (`'x'`), and a lifetime iff the
    /// next character starts an identifier (`'a`, `'static`). This is the
    /// distinction the PR-1 sanitizer got wrong for `'\''` (it consumed
    /// three of the literal's four bytes, leaving a stray quote that
    /// poisoned everything after it — see the regression tests).
    fn lifetime_or_char(&mut self) -> TokenKind {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        if self.peek(1) == Some(b'\\') {
            self.char_body();
            return TokenKind::Char;
        }
        let next = self.peek_char(1);
        let after = next.map(|c| 1 + c.len_utf8()).and_then(|o| self.peek(o));
        match (next, after) {
            // 'x' — a one-char literal ('' is not a char; fall through).
            (Some(c), Some(b'\'')) if c != '\'' => {
                self.bump(1 + c.len_utf8() + 1);
                TokenKind::Char
            }
            // 'ident — a lifetime or loop label.
            (Some(c), _) if is_ident_start(c) => {
                self.bump(1);
                self.ident();
                TokenKind::Lifetime
            }
            // A stray quote (malformed input): kept, classified Unknown.
            _ => {
                self.bump(1);
                TokenKind::Unknown
            }
        }
    }

    /// Consumes a (possibly escaped) char-literal body starting at the
    /// opening quote: `'…'`. Gives up at end of line for unterminated
    /// literals so one stray quote cannot swallow the rest of the file.
    fn char_body(&mut self) {
        debug_assert_eq!(self.peek(0), Some(b'\''));
        self.bump(1);
        while let Some(c) = self.peek_char(0) {
            match c {
                '\\' => {
                    self.bump(1);
                    if let Some(e) = self.peek_char(0) {
                        self.bump(e.len_utf8());
                    }
                }
                '\'' => {
                    self.bump(1);
                    return;
                }
                '\n' => return, // unterminated
                _ => self.bump(c.len_utf8()),
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        while let Some(c) = self.peek_char(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.bump(c.len_utf8());
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Base prefix?
        if self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
        {
            self.bump(2);
            while let Some(b) = self.peek(0) {
                if b.is_ascii_alphanumeric() || b == b'_' {
                    self.bump(1);
                } else {
                    break;
                }
            }
            return TokenKind::Num;
        }
        // Decimal integer part.
        self.digits();
        // Fractional part: consume `.` only when it cannot be a method call
        // (`1.max(2)`), a range (`1..2`), or a field chain.
        if self.peek(0) == Some(b'.') {
            let after_dot = self.peek_char(1);
            let is_float_dot = match after_dot {
                Some(c) if c.is_ascii_digit() => true,
                Some(c) if is_ident_start(c) => false, // method call
                Some('.') => false,                    // range
                _ => true,                             // `1.` is a float
            };
            if is_float_dot {
                self.bump(1);
                self.digits();
            }
        }
        // Exponent: `e`/`E` with optional sign, only if digits follow —
        // otherwise `1e` stays `1` + ident `e`? No: Rust lexes `1e` as a
        // (malformed) literal suffix; consuming it as part of the number
        // keeps us lossless either way via the suffix rule below.
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let (sign, digit) = match self.peek(1) {
                Some(b'+' | b'-') => (1, self.peek(2)),
                other => (0, other),
            };
            if digit.is_some_and(|b| b.is_ascii_digit()) {
                self.bump(1 + sign);
                self.digits();
            }
        }
        // Suffix (`u64`, `f32`, `_foo`): ident-continue chars.
        while let Some(c) = self.peek_char(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.bump(c.len_utf8());
        }
        TokenKind::Num
    }

    fn digits(&mut self) {
        while let Some(b) = self.peek(0) {
            if b.is_ascii_digit() || b == b'_' {
                self.bump(1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| !t.is_trivia())
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer dropped or duplicated bytes");
        for w in toks.windows(2) {
            assert_eq!(w[0].end, w[1].start, "non-contiguous tokens");
        }
    }

    #[test]
    fn basic_tokens() {
        let src = "fn f(x: u64) -> u64 { x + 1 }";
        roundtrip(src);
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "fn"));
        assert_eq!(k[1], (TokenKind::Ident, "f"));
        assert_eq!(k[2], (TokenKind::Punct, "("));
        assert!(k.contains(&(TokenKind::Num, "1")));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "let a = 1;\n/* two\nlines */ let b = 2;\n";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text(src) == "b").expect("token b");
        assert_eq!(b.line, 3);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .expect("comment");
        assert_eq!(comment.line, 2);
    }

    #[test]
    fn numbers() {
        roundtrip("0xff_u32 0o77 0b1010 1_000 1.5 1. 1e9 1.0e-5 2u64 1.max(2) 1..2 x.0");
        let k = kinds("1.max(2) 1..2 1.5e3_f64 x.0.1");
        assert_eq!(k[0], (TokenKind::Num, "1"));
        assert_eq!(k[1], (TokenKind::Punct, "."));
        assert_eq!(k[2], (TokenKind::Ident, "max"));
        assert!(k.contains(&(TokenKind::Num, "1.5e3_f64")));
        // Ranges keep both dots as puncts.
        let r = kinds("1..2");
        assert_eq!(
            r,
            vec![
                (TokenKind::Num, "1"),
                (TokenKind::Punct, "."),
                (TokenKind::Punct, "."),
                (TokenKind::Num, "2"),
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let k = kinds(r#"let s = "a\"b\\"; t"#);
        assert!(k.contains(&(TokenKind::Str, r#""a\"b\\""#)));
        assert!(k.contains(&(TokenKind::Ident, "t")));
        roundtrip("let s = \"multi\nline\"; x");
        let k = kinds("b\"bytes\" c\"cstr\"");
        assert_eq!(k[0].0, TokenKind::Str);
        assert_eq!(k[1].0, TokenKind::Str);
    }

    #[test]
    fn raw_strings_all_variants() {
        for src in [
            r##"r"plain""##,
            r###"r#"one "quote" inside"#"###,
            r####"r##"has "# inside"##"####,
            r###"br#"bytes"#"###,
            r###"cr#"cstr"#"###,
        ] {
            roundtrip(src);
            let k = kinds(src);
            assert_eq!(k.len(), 1, "{src:?} -> {k:?}");
            assert_eq!(k[0].0, TokenKind::Str);
            assert_eq!(k[0].1, src);
        }
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#fn = r#match;");
        assert!(k.contains(&(TokenKind::RawIdent, "r#fn")));
        assert!(k.contains(&(TokenKind::RawIdent, "r#match")));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let k = kinds("fn f<'a>(x: &'a str, c: char) { let y = 'b'; }");
        assert_eq!(
            k.iter().filter(|(k, _)| *k == TokenKind::Lifetime).count(),
            2
        );
        assert!(k.contains(&(TokenKind::Char, "'b'")));
        let k = kinds("'static 'x' b'y' '\\n' '\\'' '\\\\' '\\u{7f}'");
        assert_eq!(k[0], (TokenKind::Lifetime, "'static"));
        assert_eq!(k[1], (TokenKind::Char, "'x'"));
        assert_eq!(k[2], (TokenKind::Byte, "b'y'"));
        assert_eq!(k[3], (TokenKind::Char, "'\\n'"));
        assert_eq!(k[4], (TokenKind::Char, "'\\''"));
        assert_eq!(k[5], (TokenKind::Char, "'\\\\'"));
        assert_eq!(k[6], (TokenKind::Char, "'\\u{7f}'"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* a /* b */ c */ x";
        let k = kinds(src);
        assert_eq!(k, vec![(TokenKind::Ident, "x")]);
        roundtrip(src);
        roundtrip("/* unterminated /* nested ");
    }

    #[test]
    fn unknown_bytes_stay_lossless() {
        roundtrip("let 🦀 = '; € stray");
        roundtrip("\"unterminated string to eof");
        roundtrip("'");
        roundtrip("r#\"unterminated raw");
    }

    // -----------------------------------------------------------------
    // Regressions for the PR-1 line-based sanitizer's blind spots. Each
    // fixture is valid Rust on which `sanitize_line` provably misread the
    // construct named; the expected-token assertions define the behavior
    // the token lexer must keep. The root defect was the sanitizer's
    // escaped-char handling: for `'\''` it consumed `'\'` (three bytes of
    // the four-byte literal), leaving a stray quote that desynchronized
    // every later string/comment boundary on the line — and, since its
    // state carried across lines, on following lines too.
    // -----------------------------------------------------------------

    /// `('\'','"')` — old output `let p = (' '' '\"` then swallowed the
    /// rest of the line as a bogus string, so the trailing `.unwrap()` was
    /// never seen (a missed violation). The lexer must yield two exact
    /// char literals and leave `.unwrap()` visible.
    #[test]
    fn regression_escaped_quote_char_vs_lifetime() {
        let src = "let p = ('\\'','\"'); y.unwrap();";
        roundtrip(src);
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Char, "'\\''")));
        assert!(k.contains(&(TokenKind::Char, "'\"'")));
        assert!(k.contains(&(TokenKind::Ident, "unwrap")));
    }

    /// After the same stray-quote desync, the old sanitizer treated the
    /// *contents* of a following raw string as code (its sanitized line 2
    /// was `"raw .expect( content"` — the `.expect(` inside the literal
    /// became a false positive) and swallowed the real `z.unwrap()`. The
    /// lexer must emit the raw string as one `Str` token and keep
    /// `unwrap` visible.
    #[test]
    fn regression_raw_string_contents_leaked_as_code() {
        let src = "let p = ('\\'','\"');\nlet s = r\"raw .expect( content\"; z.unwrap();";
        roundtrip(src);
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Str, "r\"raw .expect( content\"")));
        assert!(!k.iter().any(|(_, t)| *t == "expect"));
        assert!(k.contains(&(TokenKind::Ident, "unwrap")));
    }

    /// Same desync, nested-comment flavor: the old sanitizer blanked the
    /// entire second line (real code, a real `/* /* */ */` comment, and
    /// the trailing `w.unwrap()`) as string contents. The lexer must see
    /// the nested comment as one trivia token and keep both `ok` and
    /// `unwrap` visible.
    #[test]
    fn regression_nested_comment_swallowed() {
        let src = "let p = ('\\'','\"');\nlet ok = 1; /* c1 /* c2 */ tail */ w.unwrap();";
        roundtrip(src);
        let toks = lex(src);
        let comment = toks
            .iter()
            .find(|t| t.kind == TokenKind::BlockComment)
            .expect("nested comment lexed as one token");
        assert_eq!(comment.text(src), "/* c1 /* c2 */ tail */");
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Ident, "ok")));
        assert!(k.contains(&(TokenKind::Ident, "unwrap")));
    }

    #[test]
    fn roundtrip_on_this_file() {
        let src = include_str!("lexer.rs");
        roundtrip(src);
    }
}
