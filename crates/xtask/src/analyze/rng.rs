//! The `seeded-rng-dataflow` pass.
//!
//! The legacy `seeded-rng` rule bans unseeded constructor *names*
//! (`thread_rng`, `from_entropy`, …); this pass checks the positive
//! property: every RNG construction (`seed_from_u64(…)` /
//! `from_seed(…)`) must trace back to an explicit seed root. A
//! construction site passes when any of:
//!
//! 1. its argument region contains an integer literal (a pinned seed) or
//!    a seed-named identifier (`seed`, `*_seed`, `self.seed`, …) — the
//!    seed is visibly plumbed to the call;
//! 2. the enclosing fn takes an explicit seed parameter (`seed` /
//!    `*_seed`), like `skymr_datagen`'s `generate(dist, dim, n, seed)`;
//! 3. every transitive caller chain of the enclosing fn begins at a fn
//!    with a seed parameter (computed as a fixpoint over the workspace
//!    call graph) — the seed arrives under another name.
//!
//! Anything else is a construction whose seed provenance cannot be
//! established statically, which is exactly the hole that would let
//! nondeterminism back in past the name-based ban. Test fns are exempt
//! (they pin literals, and the name ban still applies to them).

use super::resolve::Workspace;
use super::{AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

const CONSTRUCTORS: &[&str] = &["seed_from_u64", "from_seed"];

fn seedish(name: &str) -> bool {
    name == "seed" || name.ends_with("_seed") || name.starts_with("seed_")
}

/// Runs the pass over the whole workspace. The caller graph comes from
/// the resolved symbol graph, so a seed plumbed across a crate boundary
/// (datagen → common, say) roots the callee; test fns are excluded from
/// the graph — a test pinning a literal must not root production code.
pub fn check_dataflow(ws: &Workspace<'_>) -> Vec<Diagnostic> {
    let in_graph = |id: usize| !ws.fn_info(id).is_test;
    let callers = |id: usize| ws.callers(id).iter().copied().filter(|&c| in_graph(c));

    // Fixpoint: seed-rooted = has a seed param, or has callers and every
    // caller is seed-rooted.
    let mut rooted: Vec<bool> = (0..ws.nodes.len())
        .map(|id| ws.fn_info(id).has_seed_param)
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.nodes.len() {
            if !rooted[id]
                && in_graph(id)
                && callers(id).next().is_some()
                && callers(id).all(|c| rooted[c])
            {
                rooted[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (id, &is_rooted) in rooted.iter().enumerate() {
        if !in_graph(id) {
            continue;
        }
        let f = ws.file_of(id);
        let g = ws.fn_info(id);
        for call in &g.calls {
            if !CONSTRUCTORS.contains(&call.name.as_str()) {
                continue;
            }
            if g.has_seed_param || is_rooted || arg_carries_seed(f, call.sig_idx) {
                continue;
            }
            out.push(Diagnostic {
                file: f.path.clone(),
                line: call.line,
                rule: "seeded-rng-dataflow",
                rank: 0,
                message: format!(
                    "`{}(…)` in `{}` — no explicit-seed root reaches this RNG \
                     construction (no literal/seed-named argument, no seed \
                     parameter on `{}` or on every caller chain); plumb a u64 \
                     seed down from the caller",
                    call.name, g.name, g.name
                ),
            });
        }
    }
    out
}

/// `true` if the argument region of the call at significant index
/// `sig_idx` visibly carries a seed: an integer/float literal or a
/// seed-named identifier.
fn arg_carries_seed(f: &AnalyzedFile, sig_idx: usize) -> bool {
    if f.sig_text(sig_idx + 1) != "(" {
        return false;
    }
    let close = f.sig_balanced_end(sig_idx + 1, "(", ")");
    for i in (sig_idx + 2)..close.saturating_sub(1) {
        match f.sig_kind(i) {
            Some(TokenKind::Num) => return true,
            Some(TokenKind::Ident) if seedish(f.sig_text(i)) => return true,
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const PATH: &str = "crates/bench/src/lib.rs";

    fn analyze(src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(PATH, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, Mode::Analyze);
        apply_waivers(raw, &waivers)
            .0
            .into_iter()
            .filter(|d| d.rule == "seeded-rng-dataflow")
            .collect()
    }

    #[test]
    fn flags_a_rootless_construction_with_file_and_line() {
        let src = "\
fn pick() -> u64 { 7 }
fn build_rng() -> StdRng {
    StdRng::seed_from_u64(pick())
}
";
        let diags = analyze(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, PATH);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("build_rng"));
    }

    #[test]
    fn literal_and_seed_named_arguments_are_roots() {
        assert!(analyze("fn f() -> StdRng { StdRng::seed_from_u64(42) }\n").is_empty());
        assert!(analyze(
            "struct G { seed: u64 }\nimpl G {\n    fn rng(&self) -> StdRng { StdRng::seed_from_u64(self.seed ^ 0x5f3759df) }\n}\n"
        )
        .is_empty());
    }

    #[test]
    fn a_seed_parameter_roots_the_enclosing_fn() {
        let src = "fn generate(n: usize, seed: u64) { let _r = StdRng::seed_from_u64(mix(n)); }\n";
        assert!(analyze(src).is_empty());
    }

    #[test]
    fn seed_plumbed_through_the_call_graph_roots_a_renamed_param() {
        // `mk` takes the seed as `x`, but its only caller has a real seed
        // parameter, so the fixpoint roots it.
        let src = "\
fn root(seed: u64) { mk(seed); }
fn mk(x: u64) -> StdRng { StdRng::seed_from_u64(x) }
";
        assert!(analyze(src).is_empty());
        // Add one unseeded caller and the chain no longer proves anything.
        let src = "\
fn root(seed: u64) { mk(seed); }
fn sneaky() { mk(0xbad); }
fn mk(x: u64) -> StdRng { StdRng::seed_from_u64(x) }
";
        let diags = analyze(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn waiver_and_test_fns_are_exempt() {
        let src = "fn f() -> StdRng { StdRng::seed_from_u64(pick()) } // xtask: allow(seeded-rng-dataflow)\nfn pick() -> u64 { 7 }\n";
        assert!(analyze(src).is_empty());
        let src = "#[test]\nfn t() { let _ = StdRng::seed_from_u64(derive()); }\nfn derive() -> u64 { 7 }\n";
        assert!(analyze(src).is_empty());
    }
}
