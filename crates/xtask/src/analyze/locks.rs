//! `lock-discipline` — the locking half of `cargo xtask perf`.
//!
//! The workspace standard is `parking_lot` (`common::stats` counters, the
//! pool's result slots, the telemetry collector), whose guards are
//! non-reentrant and unfair: holding one across blocking work is either a
//! latency cliff or a deadlock. This pass finds every guard acquisition
//! (`.lock()` / `.read()` / `.write()` with no arguments), determines the
//! guard's live region — to the end of the enclosing block for
//! `let g = x.lock();` bindings (shortened by an explicit `drop(g)`), to
//! the end of the statement for temporaries — and reports:
//!
//! * a guard held across a **pool dispatch** (`run_indexed`, `spawn`);
//! * a guard held across a **channel operation** (`send`, `recv`);
//! * the same lock **re-acquired** while its own guard is live (an
//!   immediate self-deadlock with non-reentrant locks);
//! * **lock-order cycles**: nested acquisitions build a global
//!   lock-acquisition graph keyed by receiver name, and every edge that
//!   closes a cycle is reported with the path that completes it.
//!
//! Locks are identified by the receiver ident feeding the call
//! (`self.inner.lock()` → `inner`, `group_slots[j].lock()` →
//! `group_slots`), which matches how this workspace names its mutexes —
//! one field per lock. Closures inside a guard's live region count as
//! running under the guard (conservative: the pool invokes its closures
//! synchronously on worker threads it joins).

use std::collections::{BTreeMap, BTreeSet};

use super::resolve::Workspace;
use super::{AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

pub const RULE: &str = "lock-discipline";

const GUARD_METHODS: &[&str] = &["lock", "read", "write"];
const DISPATCH_CALLS: &[&str] = &["run_indexed", "spawn"];
const CHANNEL_CALLS: &[&str] = &["send", "recv"];

/// The whole-workspace pass: per-fn guard regions plus a global
/// lock-order graph.
///
/// The lock-order graph is **interprocedural**: when a call inside a
/// guard's live region resolves (via the workspace symbol graph) to a fn
/// that itself acquires locks — directly or transitively — those
/// acquisitions become `held → acquired` edges too, so an A→B / B→A
/// cycle split across helper fns is still caught. A callee that
/// re-acquires the *same* lock name on the *same* self type while the
/// guard is live is reported directly: that is the
/// `self.inner.lock()` → `self.other_method()` → `self.inner.lock()`
/// non-reentrant deadlock shape.
pub fn check(ws: &Workspace<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // Edge (held, acquired) → first site seen, in deterministic file order.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();

    // Per-node guard acquisitions and body ranges.
    let n = ws.nodes.len();
    let mut acqs: Vec<Vec<Acquisition>> = Vec::with_capacity(n);
    let mut ranges: Vec<Option<(usize, usize)>> = Vec::with_capacity(n);
    for id in 0..n {
        let f = ws.file_of(id);
        let g = ws.fn_info(id);
        match g.body {
            Some(body) if !g.is_test => {
                let (start, end) = f.sig_range(body);
                acqs.push(collect_acquisitions(f, start, end));
                ranges.push(Some((start, end)));
            }
            _ => {
                acqs.push(Vec::new());
                ranges.push(None);
            }
        }
    }

    // Transitive lock-name sets: what each fn may acquire, including
    // through its resolved callees (fixpoint; the graph is small).
    let mut trans: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.name.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for id in 0..n {
            for &(_, t) in ws.callees(id) {
                let add: Vec<String> = trans[t]
                    .iter()
                    .filter(|l| !trans[id].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    trans[id].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    for id in 0..n {
        if ranges[id].is_none() {
            continue;
        }
        let f = ws.file_of(id);
        scan_events(f, &acqs[id], &mut out, &mut edges);

        // Interprocedural edges: resolved calls inside a live region.
        let g = ws.fn_info(id);
        for a in &acqs[id] {
            for &(ci, t) in ws.callees(id) {
                let call = &g.calls[ci];
                if call.sig_idx <= a.at + 2 || call.sig_idx >= a.until {
                    continue;
                }
                for lock in &trans[t] {
                    if *lock == a.name {
                        let same_ty = ws.self_ty(id).is_some() && ws.self_ty(id) == ws.self_ty(t);
                        if same_ty {
                            out.push(Diagnostic {
                                file: f.path.clone(),
                                line: call.line,
                                rule: RULE,
                                rank: 0,
                                message: format!(
                                    "`{}(…)` re-acquires `{}` while this fn's own guard \
                                     on it is live — parking_lot locks are \
                                     non-reentrant, this deadlocks",
                                    call.name, a.name
                                ),
                            });
                        }
                    } else {
                        edges
                            .entry((a.name.clone(), lock.clone()))
                            .or_insert_with(|| (f.path.clone(), call.line));
                    }
                }
            }
        }
    }
    report_cycles(&edges, &mut out);
    out
}

/// One guard acquisition inside a fn body.
struct Acquisition {
    /// Receiver ident naming the lock.
    name: String,
    /// Significant index of the `lock`/`read`/`write` ident.
    at: usize,
    /// Significant index one past the end of the guard's live region.
    until: usize,
}

/// Finds every guard acquisition in one fn body, with its live region.
fn collect_acquisitions(f: &AnalyzedFile, start: usize, end: usize) -> Vec<Acquisition> {
    let mut acqs: Vec<Acquisition> = Vec::new();
    for i in start..end {
        if f.sig_kind(i) != Some(TokenKind::Ident)
            || !GUARD_METHODS.contains(&f.sig_text(i))
            || i == start
            || f.sig_text(i - 1) != "."
            || f.sig_text(i + 1) != "("
            || f.sig_text(i + 2) != ")"
        {
            continue;
        }
        let Some((name, head)) = receiver_chain(f, i, start) else {
            continue;
        };
        // A bound guard (`let g = x.lock();`) lives to the enclosing block
        // end or `drop(g)`; a temporary dies at the statement's `;`.
        let until = match let_binding_before(f, head, start) {
            Some(g) => region_to_block_end(f, i + 3, end, Some(g.as_str())),
            None => region_to_statement_end(f, i + 3, end),
        };
        acqs.push(Acquisition { name, at: i, until });
    }
    acqs
}

/// Reports intra-fn events inside each guard's live region: re-acquires,
/// nested acquisitions (as lock-order edges), pool dispatch, channel ops.
fn scan_events(
    f: &AnalyzedFile,
    acqs: &[Acquisition],
    out: &mut Vec<Diagnostic>,
    edges: &mut BTreeMap<(String, String), (String, usize)>,
) {
    for a in acqs {
        let line_of = |j: usize| f.sig_tok(j).map_or(0, |t| t.line);
        let diag = |j: usize, message: String| Diagnostic {
            file: f.path.clone(),
            line: line_of(j),
            rule: RULE,
            rank: 0,
            message,
        };
        for j in (a.at + 3)..a.until {
            if f.sig_kind(j) != Some(TokenKind::Ident) {
                continue;
            }
            let name = f.sig_text(j);
            let is_call = f.sig_text(j + 1) == "(";
            // Another acquisition while this guard is live.
            if let Some(inner) = acqs.iter().find(|b| b.at == j) {
                if inner.name == a.name {
                    out.push(diag(
                        j,
                        format!(
                            "`{}` re-acquired while its own guard is live (acquired at \
                             line {}) — parking_lot locks are non-reentrant, this \
                             deadlocks",
                            a.name,
                            line_of(a.at)
                        ),
                    ));
                } else {
                    edges
                        .entry((a.name.clone(), inner.name.clone()))
                        .or_insert_with(|| (f.path.clone(), line_of(j)));
                }
                continue;
            }
            if !is_call {
                continue;
            }
            if DISPATCH_CALLS.contains(&name) {
                out.push(diag(
                    j,
                    format!(
                        "guard on `{}` (acquired at line {}) is still live across the \
                         pool dispatch `{name}(…)` — release it before dispatching",
                        a.name,
                        line_of(a.at)
                    ),
                ));
            } else if CHANNEL_CALLS.contains(&name) && f.sig_text(j - 1) == "." {
                out.push(diag(
                    j,
                    format!(
                        "guard on `{}` (acquired at line {}) is still live across the \
                         channel `{name}` — a blocked peer now blocks the lock too",
                        a.name,
                        line_of(a.at)
                    ),
                ));
            }
        }
    }
}

/// Walks the dotted receiver chain backwards from the guard method at `i`
/// (`self.inner.lock` → head at `self`, name `inner`). Returns the lock
/// name (last ident before the method) and the chain's head index.
fn receiver_chain(f: &AnalyzedFile, i: usize, start: usize) -> Option<(String, usize)> {
    let mut name: Option<String> = None;
    let mut pos = i; // on an ident of the chain; i-1 is `.`
    loop {
        if pos < start + 2 || f.sig_text(pos - 1) != "." {
            return name.map(|n| (n, pos));
        }
        let prev = pos - 2;
        match f.sig_kind(prev) {
            Some(TokenKind::Ident | TokenKind::RawIdent) => {
                if name.is_none() {
                    name = Some(f.sig_text(prev).to_owned());
                }
                pos = prev;
            }
            Some(TokenKind::Punct) if matches!(f.sig_text(prev), "]" | ")") => {
                let (open, close) = match f.sig_text(prev) {
                    "]" => ("[", "]"),
                    _ => ("(", ")"),
                };
                // Balance backwards to the opener.
                let mut depth = 0i64;
                let mut k = prev;
                loop {
                    let t = f.sig_text(k);
                    if t == close {
                        depth += 1;
                    } else if t == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == start {
                        return name.map(|n| (n, pos));
                    }
                    k -= 1;
                }
                if k > start && f.sig_kind(k - 1) == Some(TokenKind::Ident) {
                    if name.is_none() {
                        name = Some(f.sig_text(k - 1).to_owned());
                    }
                    pos = k - 1;
                } else {
                    return name.map(|n| (n, k));
                }
            }
            _ => return name.map(|n| (n, pos)),
        }
    }
}

/// If the chain head at `head` is the right-hand side of `let [mut] g =`,
/// returns `g` — the guard is a named binding living to block end.
fn let_binding_before(f: &AnalyzedFile, head: usize, start: usize) -> Option<String> {
    if head < start + 3 || f.sig_text(head - 1) != "=" {
        return None;
    }
    let var = head - 2;
    if f.sig_kind(var) != Some(TokenKind::Ident) {
        return None;
    }
    let before = f.sig_text(var - 1);
    let is_let =
        before == "let" || (before == "mut" && var >= start + 2 && f.sig_text(var - 2) == "let");
    is_let.then(|| f.sig_text(var).to_owned())
}

/// Live region of a temporary guard: to the `;` ending the statement.
fn region_to_statement_end(f: &AnalyzedFile, from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for j in from..end {
        match f.sig_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    end
}

/// Live region of a bound guard: to the end of the enclosing block, or to
/// an explicit `drop(g)`.
fn region_to_block_end(f: &AnalyzedFile, from: usize, end: usize, var: Option<&str>) -> usize {
    let mut depth = 0i64;
    for j in from..end {
        match f.sig_text(j) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            "drop"
                if depth >= 0
                    && f.sig_text(j + 1) == "("
                    && Some(f.sig_text(j + 2)) == var
                    && f.sig_text(j + 3) == ")" =>
            {
                return j;
            }
            _ => {}
        }
    }
    end
}

/// Reports every edge that completes a cycle in the lock-order graph,
/// with the path that closes it.
fn report_cycles(edges: &BTreeMap<(String, String), (String, usize)>, out: &mut Vec<Diagnostic>) {
    let adj = |from: &str| {
        edges
            .keys()
            .filter(move |(a, _)| a == from)
            .map(|(_, b)| b.as_str())
            .collect::<Vec<_>>()
    };
    for ((a, b), (file, line)) in edges {
        // BFS from b back to a; parents reconstruct the closing path.
        let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
        let mut queue = vec![b.as_str()];
        let mut found = false;
        while let Some(n) = queue.pop() {
            if n == a.as_str() {
                found = true;
                break;
            }
            for m in adj(n) {
                if m != b.as_str() && !parent.contains_key(m) {
                    parent.insert(m, n);
                    queue.push(m);
                }
            }
        }
        if !found {
            continue;
        }
        let mut path = vec![a.as_str()];
        let mut cur = a.as_str();
        while cur != b.as_str() {
            cur = parent.get(cur).copied().unwrap_or(b.as_str());
            path.push(cur);
        }
        path.reverse(); // b … a
        path.insert(0, a.as_str()); // the full cycle a → b → … → a
        out.push(Diagnostic {
            file: file.clone(),
            line: *line,
            rule: RULE,
            rank: 0,
            message: format!(
                "lock-order cycle: acquiring `{b}` while holding `{a}` completes \
                 {} — pick one acquisition order",
                path.iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(" → ")
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const POOLISH: &str = "crates/mapreduce/src/locks_fixture.rs";

    fn perf_multi(sources: &[(&str, &str)]) -> Vec<super::super::Diagnostic> {
        let files: Vec<AnalyzedFile> = sources
            .iter()
            .map(|(p, s)| AnalyzedFile::build(*p, *s))
            .collect();
        let waivers: Vec<_> = files.iter().flat_map(collect_waivers).collect();
        let raw = raw_diagnostics(&files, Mode::Perf);
        apply_waivers(raw, &waivers).0
    }

    fn perf(src: &str) -> Vec<super::super::Diagnostic> {
        perf_multi(&[(POOLISH, src)])
    }

    #[test]
    fn guard_across_pool_dispatch_flags() {
        let src = "\
fn f(pool: &Pool, m: &Mutex<u32>) {
    let g = m.lock();
    pool.run_indexed(4, |i| i);
    drop(g);
}
";
        let diags = perf(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "lock-discipline");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("run_indexed"));
    }

    #[test]
    fn drop_and_block_scope_end_the_guard_region() {
        let src = "\
fn f(pool: &Pool, m: &Mutex<u32>) {
    let g = m.lock();
    drop(g);
    pool.run_indexed(4, |i| i);
    {
        let h = m.lock();
    }
    pool.spawn(work);
}
";
        assert!(perf(src).is_empty(), "{:?}", perf(src));
    }

    #[test]
    fn temporary_guard_region_is_the_statement() {
        let src = "\
fn f(results: &Mutex<Vec<u32>>, tx: &Sender<u32>) {
    *results.lock() = Vec::new();
    tx.send(1);
}
";
        assert!(perf(src).is_empty(), "{:?}", perf(src));
    }

    #[test]
    fn guard_across_channel_send_flags() {
        let src = "\
fn f(m: &Mutex<u32>, tx: &Sender<u32>) {
    let g = m.lock();
    tx.send(*g);
}
";
        let diags = perf(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("send"));
    }

    #[test]
    fn self_relock_is_a_deadlock_diagnostic() {
        let src = "\
fn f(m: &Mutex<u32>) {
    let g = m.lock();
    let h = m.lock();
}
";
        let diags = perf(src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("re-acquired"), "{diags:?}");
    }

    #[test]
    fn lock_order_cycle_across_files_is_reported() {
        let a = "\
fn ab(x: &Mutex<u32>, y: &Mutex<u32>) {
    let g = x.lock();
    let h = y.lock();
}
";
        let b = "\
fn ba(x: &Mutex<u32>, y: &Mutex<u32>) {
    let g = y.lock();
    let h = x.lock();
}
";
        let diags = perf_multi(&[
            ("crates/core/src/a_fixture.rs", a),
            ("crates/core/src/b_fixture.rs", b),
        ]);
        assert_eq!(diags.len(), 2, "both closing edges report: {diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("lock-order cycle")));
    }

    #[test]
    fn nested_distinct_locks_without_cycle_are_edges_only() {
        let src = "\
fn f(x: &Mutex<u32>, y: &Mutex<u32>) {
    let g = x.lock();
    let h = y.lock();
}
";
        assert!(perf(src).is_empty(), "{:?}", perf(src));
    }

    #[test]
    fn indexed_receiver_names_the_collection_and_waivers_apply() {
        let src = "\
fn f(slots: &[Mutex<u32>], tx: &Sender<u32>) {
    let g = slots[0].lock();
    tx.send(*g); // xtask: allow(lock-discipline) — send is non-blocking here
}
";
        assert!(perf(src).is_empty(), "{:?}", perf(src));
        let unwaived = "\
fn f(slots: &[Mutex<u32>], tx: &Sender<u32>) {
    let g = slots[0].lock();
    tx.send(*g);
}
";
        let diags = perf(unwaived);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("`slots`"), "{diags:?}");
    }
}
