//! Panic-surface checks for the engine crates.
//!
//! * **`no-unwrap`** (legacy, PR 1): the unwrap family is banned in
//!   non-test code of `crates/mapreduce` and `crates/core`. Engine code
//!   routes fallible paths through `skymr_common::error` and states real
//!   invariants with `assert!`/`unreachable!`. On the token backend the
//!   rule matches `.unwrap(` / `.expect(` / `.unwrap_err(` /
//!   `.expect_err(` / `.unwrap_unchecked(` as method-call tokens, so
//!   comments, strings, and test regions can never confuse it.
//! * **`panic-reachability`** (new): in functions reachable from a UDF
//!   entry point (mapper/reducer/combiner/factory impls, `run_job*`)
//!   through the resolved workspace call graph, flag the other panic edges the
//!   unwrap ban does not cover — indexing/slicing with a *computed*
//!   index and division/remainder by a runtime value. A shuffle panic
//!   takes down a simulated task mid-job, which the failure machinery
//!   then replays — so a data-dependent panic turns into a livelock of
//!   retries; these sites must either be restructured or carry a waiver
//!   stating the invariant that rules the panic out.
//!
//! The indexing heuristic is deliberately narrow to keep the
//! signal/noise ratio useful: plain `v[i]` / `v[0]` / `v[..]` are *not*
//! flagged (the surrounding code almost always just produced `i` from
//! `len()`); an index expression is flagged only when it contains binary
//! arithmetic (`i + 1`), a call (`v[f(x)]`), or a two-ended range slice
//! (`v[a..b]`). Division is flagged only for an identifier divisor —
//! literal divisors cannot be zero.

use super::resolve::{is_harness_path, Workspace};
use super::{in_engine_crates, AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

const UNWRAP_FAMILY: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "unwrap_unchecked",
];

const UNWRAP_HELP: &str = "engine code must route errors through skymr_common::error \
                           (or state the invariant with assert!/unreachable!)";

/// The `no-unwrap` rule over one file.
pub fn check_unwrap_family(f: &AnalyzedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !in_engine_crates(&f.path) {
        return out;
    }
    for i in 0..f.sig.len() {
        let Some(t) = f.sig_tok(i) else { continue };
        if t.kind != TokenKind::Ident || !UNWRAP_FAMILY.contains(&t.text(&f.src)) {
            continue;
        }
        // A method call: `.name(`.
        if i == 0 || f.sig_text(i - 1) != "." || f.sig_text(i + 1) != "(" {
            continue;
        }
        if f.model.in_test_region(t.start) {
            continue;
        }
        out.push(Diagnostic {
            file: f.path.clone(),
            line: t.line,
            rule: "no-unwrap",
            rank: 0,
            message: format!("`.{}()` — {UNWRAP_HELP}", t.text(&f.src)),
        });
    }
    out
}

/// The `panic-reachability` pass over the whole workspace.
///
/// Roots are engine-crate UDF impls and the job drivers; reachability
/// then follows the resolved graph wherever it leads — including into
/// `skymr_common` helpers the engine calls through `use` imports, which
/// the old intra-crate name graph could not see. Harness files (tests,
/// benches, examples) are never scanned: a panic there fails a test run,
/// not a simulated job.
pub fn check_reachability(ws: &Workspace<'_>) -> Vec<Diagnostic> {
    // Roots: UDF trait impls and the job drivers, in engine crates.
    let mut reachable = vec![false; ws.nodes.len()];
    let mut work: Vec<usize> = Vec::new();
    for (id, seed) in reachable.iter_mut().enumerate() {
        let g = ws.fn_info(id);
        if g.is_test || g.body.is_none() || !in_engine_crates(&ws.file_of(id).path) {
            continue;
        }
        if ws.is_udf_impl(id) || g.name == "run_job" || g.name == "run_job_with_combiner" {
            *seed = true;
            work.push(id);
        }
    }
    // BFS over the resolved call graph (macro "calls" produce no edges,
    // so `assert!` can never match a fn named `assert`).
    while let Some(id) = work.pop() {
        for &(_, t) in ws.callees(id) {
            let g = ws.fn_info(t);
            if g.is_test || g.body.is_none() {
                continue;
            }
            if !reachable[t] {
                reachable[t] = true;
                work.push(t);
            }
        }
    }

    let mut out = Vec::new();
    for (id, &hit) in reachable.iter().enumerate() {
        if !hit {
            continue;
        }
        let f = ws.file_of(id);
        if is_harness_path(&f.path) {
            continue;
        }
        let g = ws.fn_info(id);
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        scan_body(f, start, end, &mut out);
    }
    out
}

/// Scans one reachable fn body (significant range `[start, end)`).
fn scan_body(f: &AnalyzedFile, start: usize, end: usize, out: &mut Vec<Diagnostic>) {
    let mut i = start;
    while i < end {
        let txt = f.sig_text(i);
        // Postfix indexing: `expr[...]` — previous token ends an expression.
        if txt == "[" && i > start {
            let prev = f.sig_tok(i - 1).expect("in range");
            let postfix = matches!(prev.kind, TokenKind::Ident | TokenKind::RawIdent)
                && !is_keyword_before_bracket(prev.text(&f.src))
                || matches!(prev.text(&f.src), ")" | "]");
            if postfix {
                let close = f.sig_balanced_end(i, "[", "]");
                if let Some(why) = suspicious_index(f, i + 1, close.saturating_sub(1)) {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: f.sig_tok(i).map_or(0, |t| t.line),
                        rule: "panic-reachability",
                        rank: 0,
                        message: format!(
                            "{why} in a UDF-reachable hot path can panic and livelock \
                             failure replay; use checked access or waive with the \
                             bounds invariant"
                        ),
                    });
                }
                i = close;
                continue;
            }
        }
        // Division/remainder by an identifier. Float division saturates
        // to ±inf/NaN instead of panicking, so statements whose operands
        // are visibly floats (`as f64` casts, float literals) are exempt.
        if (txt == "/" || txt == "%")
            && is_binary_position(f, i, start)
            && !float_context(f, i)
            && f.sig_kind(i + 1) == Some(TokenKind::Ident)
            && !is_const_name(f.sig_text(i + 1))
        {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: f.sig_tok(i).map_or(0, |t| t.line),
                rule: "panic-reachability",
                rank: 0,
                message: format!(
                    "`{txt} {}` — division/remainder by a runtime value in a \
                     UDF-reachable hot path panics on zero; guard it or waive \
                     with the nonzero invariant",
                    f.sig_text(i + 1)
                ),
            });
        }
        i += 1;
    }
}

/// `true` when the statement around the operator at `i` visibly works in
/// floats — an `f64`/`f32` token (cast or path) or a float literal within
/// the same `;`/`{`/`}`-delimited span. Integer division in a statement
/// that merely *also* mentions floats slips through; the cost of that
/// false negative is far below the noise of flagging every simulated-time
/// formula in the cluster model.
fn float_context(f: &AnalyzedFile, i: usize) -> bool {
    let boundary = |t: &str| matches!(t, ";" | "{" | "}");
    let is_floaty = |j: usize| match f.sig_kind(j) {
        Some(TokenKind::Ident) => matches!(f.sig_text(j), "f64" | "f32"),
        Some(TokenKind::Num) => {
            let t = f.sig_text(j);
            t.contains('.') || t.ends_with("f64") || t.ends_with("f32")
        }
        _ => false,
    };
    // Backward then forward, bounded so pathological token runs stay cheap.
    for j in (i.saturating_sub(40)..i).rev() {
        if boundary(f.sig_text(j)) {
            break;
        }
        if is_floaty(j) {
            return true;
        }
    }
    for j in (i + 1)..(i + 40).min(f.sig.len()) {
        if boundary(f.sig_text(j)) {
            break;
        }
        if is_floaty(j) {
            return true;
        }
    }
    false
}

/// `true` for SCREAMING_SNAKE_CASE idents — `const` items by workspace
/// convention. A compile-time-constant divisor (`% WORD_BITS`,
/// `/ BYTES_PER_TICK`) cannot be a runtime zero, so dividing by one is
/// as safe as a literal divisor.
fn is_const_name(name: &str) -> bool {
    name.len() > 1
        && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`let [a, b] = pair;`, `return [x];`, …).
fn is_keyword_before_bracket(t: &str) -> bool {
    matches!(
        t,
        "let" | "return" | "in" | "mut" | "ref" | "move" | "else" | "match" | "break" | "yield"
    )
}

/// `true` when the punct at `i` sits in binary-operator position (the
/// previous token ends an operand), distinguishing `a * b` from `*ptr`
/// and `n - 1` from `-1`.
fn is_binary_position(f: &AnalyzedFile, i: usize, start: usize) -> bool {
    if i == start {
        return false;
    }
    match f.sig_kind(i - 1) {
        Some(TokenKind::Ident | TokenKind::RawIdent | TokenKind::Num) => true,
        Some(TokenKind::Punct) => matches!(f.sig_text(i - 1), ")" | "]"),
        _ => false,
    }
}

/// Is the index expression in significant range `[start, end)` suspicious?
/// Returns a description of why, or `None` for the benign shapes.
fn suspicious_index(f: &AnalyzedFile, start: usize, end: usize) -> Option<String> {
    if start >= end {
        return None; // `v[]` — not our problem
    }
    let mut depth = 0i64;
    for i in start..end {
        let txt = f.sig_text(i);
        match txt {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            _ => {}
        }
        if depth > 0 {
            continue; // nested groups judged by their outer shape only
        }
        // Binary arithmetic inside the index.
        if matches!(txt, "+" | "-" | "*" | "/" | "%") && is_binary_position(f, i, start) {
            return Some(format!("index arithmetic (`… {txt} …`)"));
        }
        // A call computing the index.
        if matches!(f.sig_kind(i), Some(TokenKind::Ident | TokenKind::RawIdent))
            && f.sig_text(i + 1) == "("
            && i + 1 < end
        {
            return Some(format!("computed index (`{}(…)`)", f.sig_text(i)));
        }
        // A two-ended range slice `a..b` (or `a..=b`).
        if txt == "." && f.sig_text(i + 1) == "." && i > start {
            let after = if f.sig_text(i + 2) == "=" {
                i + 3
            } else {
                i + 2
            };
            if after < end {
                return Some("two-ended range slice (`…[a..b]`)".to_owned());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const ENGINE: &str = "crates/mapreduce/src/job.rs";
    const CORE: &str = "crates/core/src/gpsrs.rs";
    const OTHER: &str = "crates/datagen/src/lib.rs";

    fn run(mode: Mode, path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(path, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, mode);
        apply_waivers(raw, &waivers).0
    }

    fn lint(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        run(Mode::Lint, path, src)
    }

    fn analyze(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        run(Mode::Analyze, path, src)
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint(path, src).into_iter().map(|d| d.rule).collect()
    }

    // ------------------------------------------------------------------
    // no-unwrap (ported PR-1 fixtures).
    // ------------------------------------------------------------------

    #[test]
    fn flags_unwrap_and_expect_in_engine_code() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let diags = lint(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-unwrap");
        assert_eq!(diags[0].line, 2);
        let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n";
        assert_eq!(rules_hit(CORE, src), ["no-unwrap"]);
    }

    #[test]
    fn unwrap_family_extends_beyond_the_substring_rule() {
        let src = "fn f(x: Result<u8, u8>) -> u8 { x.unwrap_err() }\n";
        assert_eq!(rules_hit(ENGINE, src), ["no-unwrap"]);
        // …but an ident that merely contains the word is not a call.
        assert!(lint(ENGINE, "fn f(unwrap: u8) -> u8 { unwrap }\n").is_empty());
    }

    #[test]
    fn unwrap_is_allowed_outside_engine_crates_and_in_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint(OTHER, src).is_empty());
        assert!(lint("crates/mapreduce/tests/e2e.rs", src).is_empty());
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
        assert!(lint(ENGINE, src).is_empty());
    }

    #[test]
    fn test_region_tracking_resumes_after_the_block() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
fn prod(x: Option<u8>) -> u8 { x.unwrap() }
";
        let diags = lint(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn code_after_a_closed_block_comment_still_flags() {
        let src = "fn f() { let x = /* ok */ y.unwrap(); }\n";
        assert_eq!(rules_hit(ENGINE, src), ["no-unwrap"]);
    }

    #[test]
    fn multiline_string_contents_are_ignored() {
        let src =
            "fn f() {\nlet s = \"first line\nstill a string .unwrap()\nend\";\nlet z = q.unwrap();\n}\n";
        let diags = lint(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn waiver_comment_suppresses_only_the_named_rule() {
        let src = "fn f() { let x = y.unwrap(); } // xtask: allow(no-unwrap)\n";
        assert!(lint(ENGINE, src).is_empty());
        let src = "fn f() { let x = y.unwrap(); } // xtask: allow(seeded-rng)\n";
        assert_eq!(rules_hit(ENGINE, src), ["no-unwrap"]);
    }

    // ------------------------------------------------------------------
    // panic-reachability.
    // ------------------------------------------------------------------

    /// A UDF impl whose helper (reached through the call graph) carries
    /// the given body line.
    fn reachable_fixture(stmt: &str) -> String {
        format!(
            "\
struct M;
impl MapTask for M {{
    fn map(&mut self, v: &[u64]) {{
        self.helper(v);
    }}
}}
impl M {{
    fn helper(&self, v: &[u64]) {{
        {stmt}
    }}
}}
"
        )
    }

    #[test]
    fn flags_index_arithmetic_in_reachable_helper_with_file_and_line() {
        let src = reachable_fixture("let x = v[self.cursor + 1];");
        let diags = analyze(ENGINE, &src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-reachability");
        assert_eq!(diags[0].file, ENGINE);
        assert_eq!(diags[0].line, 9, "the helper body line");
    }

    #[test]
    fn flags_computed_index_division_and_two_ended_slices() {
        for stmt in [
            "let x = v[self.pick(v)];",
            "let s = &v[lo..hi];",
            "let q = v.len() % parts;",
        ] {
            let src = reachable_fixture(stmt);
            let diags = analyze(ENGINE, &src);
            assert_eq!(diags.len(), 1, "{stmt} → {diags:?}");
            assert_eq!(diags[0].rule, "panic-reachability");
        }
    }

    #[test]
    fn benign_shapes_and_unreachable_fns_are_clean() {
        // Plain indexing, literal divisors, open-ended slices: no flag.
        for stmt in [
            "let x = v[0];",
            "let x = v[i];",
            "let h = v.len() / 2;",
            "let s = &v[..];",
            "let s = &v[1..];",
            "let neg = -1i64; let p = *ptr;",
            // Const divisors (SCREAMING_CASE) cannot be a runtime zero.
            "let w = v.len() % WORD_BITS;",
            "let b = total / BYTES_PER_TICK;",
            // Float division saturates instead of panicking.
            "let t = v.len() as f64 / rate;",
            "let u = total / count as f64;",
            "let w = 1.0 / weight;",
        ] {
            let src = reachable_fixture(stmt);
            assert!(analyze(ENGINE, &src).is_empty(), "{stmt}");
        }
        // The same arithmetic index in a fn nothing reaches: no flag.
        let src = "fn orphan(v: &[u64], i: usize) -> u64 { v[i + 1] }\n";
        assert!(analyze(ENGINE, src).is_empty());
        // …and in a non-engine crate, even when reachable-shaped: no flag.
        let src = reachable_fixture("let x = v[i + 1];");
        assert!(analyze(OTHER, &src).is_empty());
    }

    #[test]
    fn reachability_waiver_suppresses_the_diagnostic() {
        let src =
            reachable_fixture("let x = v[self.cursor + 1]; // xtask: allow(panic-reachability)");
        assert!(analyze(ENGINE, &src).is_empty());
        // Lint mode never runs the reachability pass at all.
        let src = reachable_fixture("let x = v[self.cursor + 1];");
        assert!(lint(ENGINE, &src).is_empty());
    }

    /// The fault layer's seeded-derivation waiver shape: a modulo by an
    /// identifier that the surrounding code clamps to nonzero, waived with
    /// a trailing `— justification` after the rule name. Pins both that
    /// the justification text doesn't break waiver parsing and that the
    /// waiver stays scoped to the named rule.
    #[test]
    fn modulo_waiver_with_justification_text_is_honoured() {
        let stmt = "let d = draw % span; // xtask: allow(panic-reachability) — span is clamped to >= 1 above";
        assert!(analyze(ENGINE, &reachable_fixture(stmt)).is_empty());
        // Without the waiver the same shape still flags…
        let diags = analyze(ENGINE, &reachable_fixture("let d = draw % span;"));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "panic-reachability");
        // …and a justified waiver for a *different* rule does not leak.
        let stmt = "let d = draw % span; // xtask: allow(no-unwrap) — wrong rule";
        let diags = analyze(ENGINE, &reachable_fixture(stmt));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "panic-reachability");
    }
}
