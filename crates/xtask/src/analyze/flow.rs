//! `cargo xtask flow` — taint-style interprocedural passes on the
//! resolved symbol graph.
//!
//! The engine's determinism story (ROADMAP north star: byte-identical
//! shuffles and traces across hosts) survives only if three value
//! families stay out of the deterministic dataflow:
//!
//! * **`clock-discipline`** — wall-clock readings
//!   (`Instant::now()` / `SystemTime::now()`). Two rules. (a) Any
//!   wall-clock *acquisition* in the engine crates (`mapreduce`, `core`)
//!   must carry an invariant-citing waiver: the engine runs on simulated
//!   ticks, so a wall read there is advisory host-side metrics at best
//!   and nondeterminism at worst. (b) Everywhere outside harness code, a
//!   wall-tainted value — a binding whose right-hand side reads the
//!   clock, transitively through local `let`s and through calls to fns
//!   that *return* wall time (resolved via the symbol graph) — must not
//!   reach a sink: an emitted pair (`.collect(…)`/`.emit(…)` args),
//!   simulated-clock arithmetic (a statement also touching tick-named
//!   values), trace content (`.record(…)`/`.event(…)`/`.annotate(…)`),
//!   or a scheduling decision (an `if`/`while`/`match` head).
//! * **`ambient-io`** — file/env/stdio use in any fn reachable from a
//!   UDF entry point through the full resolved graph. This generalizes
//!   `udf-determinism`, which only sees impl bodies: a mapper calling a
//!   helper that calls `std::fs::read_to_string` is just as
//!   nondeterministic as one doing it inline.
//! * **`float-ord`** — `partial_cmp` inside a sort/dedup/search/extremum
//!   comparator. `partial_cmp(…).expect(…)` panics on NaN and
//!   `unwrap_or(Equal)` silently breaks total order; comparators must
//!   route through `total_cmp`, which is total over all bit patterns.
//!
//! Like every graph pass, findings are waivable with a trailing
//! `// xtask: allow(<rule>)` comment, and `--list-stale-waivers` audits
//! those waivers against these rules too.

use std::collections::BTreeSet;

use super::resolve::{is_harness_path, Workspace};
use super::{in_engine_crates, AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

pub const CLOCK_RULE: &str = "clock-discipline";
pub const IO_RULE: &str = "ambient-io";
pub const FLOAT_RULE: &str = "float-ord";

/// Runs all three flow rules over the workspace graph.
pub fn check(ws: &Workspace<'_>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_clock(ws, &mut out);
    check_ambient_io(ws, &mut out);
    check_float_ord(ws, &mut out);
    out
}

// ---------------------------------------------------------------------
// clock-discipline.
// ---------------------------------------------------------------------

/// `true` when the significant token at `i` starts `Instant::now(` or
/// `SystemTime::now(`.
fn is_wall_source(f: &AnalyzedFile, i: usize) -> bool {
    matches!(f.sig_text(i), "Instant" | "SystemTime")
        && f.sig_text(i + 1) == ":"
        && f.sig_text(i + 2) == ":"
        && f.sig_text(i + 3) == "now"
        && f.sig_text(i + 4) == "("
}

/// Idents that name the simulated clock: mixing wall time into these is
/// the exact bug the simulation exists to prevent.
fn is_ticksish(name: &str) -> bool {
    name == "Ticks"
        || name == "ticks"
        || name.ends_with("_ticks")
        || name.starts_with("ticks_")
        || name.starts_with("sim_")
}

/// Whether a fn's return type hands wall time to its caller: `Instant` /
/// `SystemTime` always; `Duration` when the body also reads the clock
/// (a simulated duration is fine). The return-type region is the
/// significant tokens between `->` and the body's `{`.
fn returns_wall_time(f: &AnalyzedFile, g: &crate::parse::FnInfo) -> bool {
    let Some(body) = g.body else { return false };
    let (brace, end) = f.sig_range(body);
    // Find `->` in a short window before the body.
    let lo = brace.saturating_sub(24);
    let mut arrow = None;
    for i in (lo..brace).rev() {
        if f.sig_text(i) == ">" && i > 0 && f.sig_text(i - 1) == "-" {
            arrow = Some(i + 1);
            break;
        }
        if f.sig_text(i) == "fn" {
            break;
        }
    }
    let Some(arrow) = arrow else { return false };
    let mut duration = false;
    for i in arrow..brace {
        match f.sig_text(i) {
            "Instant" | "SystemTime" => return true,
            "Duration" => duration = true,
            _ => {}
        }
    }
    duration && (brace..end).any(|i| is_wall_source(f, i))
}

/// Wall-tainted local idents of one fn body: `let x = <RHS reading the
/// clock>` plus transitive `let y = <RHS mentioning a tainted ident>`,
/// plus bindings of calls to wall-returning fns (via resolved edges).
fn tainted_idents(ws: &Workspace<'_>, id: usize, wall_ret: &[bool]) -> BTreeSet<String> {
    let f = ws.file_of(id);
    let g = ws.fn_info(id);
    let Some(body) = g.body else {
        return BTreeSet::new();
    };
    let (start, end) = f.sig_range(body);
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    // Two passes pick up a use-before-def chain if one ever appears.
    for _ in 0..2 {
        let mut i = start;
        while i < end {
            if f.sig_text(i) != "let" {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if f.sig_text(j) == "mut" {
                j += 1;
            }
            if f.sig_kind(j) != Some(TokenKind::Ident) || f.sig_text(j + 1) != "=" {
                i = j;
                continue;
            }
            let name = f.sig_text(j).to_owned();
            let rhs_start = j + 2;
            let rhs_end = statement_end(f, rhs_start, end);
            // A struct-literal RHS does not taint the binding: storing
            // wall time into one *field* must not poison every other
            // field access (`metrics.sim_runtime = …` after
            // `let metrics = JobMetrics { host_wall: started.elapsed(), … }`
            // is pure sim arithmetic). The field value itself is still
            // sink-checked at its own position.
            if !is_struct_literal_rhs(f, rhs_start)
                && region_reads_wall(ws, id, rhs_start, rhs_end, &tainted, wall_ret)
            {
                tainted.insert(name);
            }
            i = rhs_end;
        }
    }
    tainted
}

/// `true` when the RHS starting at `rhs` is a struct literal:
/// `(Ident ::)* UpperIdent { …`.
fn is_struct_literal_rhs(f: &AnalyzedFile, rhs: usize) -> bool {
    let mut i = rhs;
    while f.sig_kind(i) == Some(TokenKind::Ident)
        && f.sig_text(i + 1) == ":"
        && f.sig_text(i + 2) == ":"
    {
        i += 3;
    }
    f.sig_kind(i) == Some(TokenKind::Ident)
        && f.sig_text(i).starts_with(|c: char| c.is_ascii_uppercase())
        && f.sig_text(i + 1) == "{"
}

/// Does the significant region `[a, b)` of node `id`'s file carry wall
/// time? True for a direct `Instant::now()`/`SystemTime::now()`, a
/// tainted ident, or a resolved call to a wall-returning fn.
fn region_reads_wall(
    ws: &Workspace<'_>,
    id: usize,
    a: usize,
    b: usize,
    tainted: &BTreeSet<String>,
    wall_ret: &[bool],
) -> bool {
    let f = ws.file_of(id);
    for i in a..b {
        if is_wall_source(f, i) {
            return true;
        }
        if f.sig_kind(i) == Some(TokenKind::Ident) && tainted.contains(f.sig_text(i)) {
            return true;
        }
    }
    ws.callees(id).iter().any(|&(ci, t)| {
        let call = &ws.fn_info(id).calls[ci];
        (a..b).contains(&call.sig_idx) && wall_ret[t]
    })
}

/// Significant index one past the statement containing `from` (its `;`,
/// or the enclosing block edge).
fn statement_end(f: &AnalyzedFile, from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for j in from..end {
        match f.sig_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" if depth <= 0 => return j,
            _ => {}
        }
    }
    end
}

/// Forward expression boundary for the arithmetic sink: like
/// [`statement_end`], but a `,` at depth 0 also ends the expression, so
/// sibling struct-literal fields and sibling call arguments are separate
/// expressions rather than one giant statement.
fn expr_end(f: &AnalyzedFile, from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for j in from..end {
        match f.sig_text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            ";" | "," if depth <= 0 => return j,
            _ => {}
        }
    }
    end
}

/// Backward expression boundary for the token at `i` (counterpart of
/// [`expr_end`]).
fn expr_start(f: &AnalyzedFile, i: usize, start: usize) -> usize {
    let mut depth = 0i64;
    for j in (start..i).rev() {
        match f.sig_text(j) {
            ")" | "]" | "}" => depth += 1,
            "(" | "[" | "{" => {
                if depth == 0 {
                    return j + 1;
                }
                depth -= 1;
            }
            ";" | "," if depth == 0 => return j + 1,
            _ => {}
        }
    }
    start
}

fn check_clock(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    // Per-fn wall-return summaries, then per-fn taint + sinks.
    let wall_ret: Vec<bool> = (0..ws.nodes.len())
        .map(|id| returns_wall_time(ws.file_of(id), ws.fn_info(id)))
        .collect();

    for id in 0..ws.nodes.len() {
        let f = ws.file_of(id);
        let g = ws.fn_info(id);
        if g.is_test || is_harness_path(&f.path) {
            continue;
        }
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);

        // (a) Engine crates: every wall-clock acquisition needs an
        // audited waiver stating why it stays advisory.
        if in_engine_crates(&f.path) {
            for i in start..end {
                if is_wall_source(f, i) {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: f.sig_tok(i).map_or(0, |t| t.line),
                        rule: CLOCK_RULE,
                        rank: 0,
                        message: format!(
                            "`{}::now()` in the simulated-time engine — wall time may \
                             feed advisory host metrics only; waive with the invariant \
                             that it never reaches emitted pairs, the simulated clock, \
                             traces, or scheduling",
                            f.sig_text(i)
                        ),
                    });
                }
            }
        }

        // (b) Taint → sink.
        let tainted = tainted_idents(ws, id, &wall_ret);
        let reads_wall = |a: usize, b: usize| region_reads_wall(ws, id, a, b, &tainted, &wall_ret);
        let line_of = |i: usize| f.sig_tok(i).map_or(0, |t| t.line);
        let mut flagged_lines: Vec<usize> = Vec::new();
        let mut flag = |i: usize, what: &str, out: &mut Vec<Diagnostic>| {
            let line = line_of(i);
            if flagged_lines.contains(&line) {
                return;
            }
            flagged_lines.push(line);
            out.push(Diagnostic {
                file: f.path.clone(),
                line,
                rule: CLOCK_RULE,
                rank: 0,
                message: format!(
                    "wall-clock value flows into {what} — derive this from the \
                     simulated clock (or drop it); wall time is advisory-only"
                ),
            });
        };
        let mut i = start;
        while i < end {
            let txt = f.sig_text(i);
            // Sink: emitted pairs / trace content — method call args.
            if f.sig_kind(i) == Some(TokenKind::Ident)
                && i > start
                && f.sig_text(i - 1) == "."
                && f.sig_text(i + 1) == "("
                && f.sig_text(i + 2) != ")"
            {
                let close = f.sig_balanced_end(i + 1, "(", ")");
                let sink = match txt {
                    "collect" | "emit" => Some("an emitted pair"),
                    "record" | "event" | "annotate" => Some("trace content"),
                    _ => None,
                };
                if let Some(what) = sink {
                    if reads_wall(i + 2, close.saturating_sub(1)) {
                        flag(i, what, out);
                    }
                }
            }
            // Sink: scheduling decisions — `if`/`while`/`match` heads.
            if matches!(txt, "if" | "while" | "match") {
                let head_end = cond_end(f, i + 1, end);
                if reads_wall(i + 1, head_end) {
                    flag(i, "a scheduling decision (branch condition)", out);
                }
            }
            // Sink: simulated-clock arithmetic — one expression mixing a
            // tainted ident with tick-named values.
            if f.sig_kind(i) == Some(TokenKind::Ident) && tainted.contains(txt) {
                let lo = expr_start(f, i, start);
                let hi = expr_end(f, i, end);
                if (lo..hi)
                    .any(|j| f.sig_kind(j) == Some(TokenKind::Ident) && is_ticksish(f.sig_text(j)))
                {
                    flag(i, "simulated-clock arithmetic", out);
                }
            }
            i += 1;
        }
    }
}

/// End of a branch head starting at `from`: the `{` at bracket depth 0.
fn cond_end(f: &AnalyzedFile, from: usize, end: usize) -> usize {
    let mut depth = 0i64;
    for j in from..end {
        match f.sig_text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth <= 0 => return j,
            _ => {}
        }
    }
    end
}

// ---------------------------------------------------------------------
// ambient-io.
// ---------------------------------------------------------------------

const IO_TYPES: &[&str] = &["File", "OpenOptions", "Stdin", "Stdout", "Stderr"];
const IO_MACROS: &[&str] = &["println", "print", "eprintln", "eprint", "dbg"];
const IO_MODULES: &[&str] = &["fs", "env"];

fn check_ambient_io(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    // Reachability from UDF entry points over the resolved graph.
    let mut reachable = vec![false; ws.nodes.len()];
    let mut work: Vec<usize> = Vec::new();
    for (id, seed) in reachable.iter_mut().enumerate() {
        let g = ws.fn_info(id);
        if g.is_test || g.body.is_none() || is_harness_path(&ws.file_of(id).path) {
            continue;
        }
        if ws.is_udf_impl(id) {
            *seed = true;
            work.push(id);
        }
    }
    while let Some(id) = work.pop() {
        for &(_, t) in ws.callees(id) {
            if !reachable[t] && !ws.fn_info(t).is_test {
                reachable[t] = true;
                work.push(t);
            }
        }
    }

    for (id, &hit) in reachable.iter().enumerate() {
        if !hit {
            continue;
        }
        let f = ws.file_of(id);
        if is_harness_path(&f.path) {
            continue;
        }
        let g = ws.fn_info(id);
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        for i in start..end {
            if f.sig_kind(i) != Some(TokenKind::Ident) {
                continue;
            }
            let name = f.sig_text(i);
            let flagged: Option<String> =
                if IO_TYPES.contains(&name) && f.sig_text(i + 1) == ":" && f.sig_text(i + 2) == ":"
                {
                    Some(format!("`{name}::…`"))
                } else if IO_MACROS.contains(&name) && f.sig_text(i + 1) == "!" {
                    Some(format!("`{name}!(…)`"))
                } else if IO_MODULES.contains(&name)
                    && f.sig_text(i + 1) == ":"
                    && f.sig_text(i + 2) == ":"
                    && f.sig_text(i - 1) != "use"
                {
                    Some(format!("`{name}::…`"))
                } else {
                    None
                };
            if let Some(what) = flagged {
                out.push(Diagnostic {
                    file: f.path.clone(),
                    line: f.sig_tok(i).map_or(0, |t| t.line),
                    rule: IO_RULE,
                    rank: 0,
                    message: format!(
                        "{what} in `{}`, which is reachable from a UDF entry point — \
                         UDFs and their callees must be pure functions of their input \
                         (ambient I/O breaks replay determinism)",
                        g.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// float-ord.
// ---------------------------------------------------------------------

/// Comparator-taking methods whose closure must impose a total order.
const ORDERED_CONTEXTS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "select_nth_unstable_by",
    "binary_search_by",
    "max_by",
    "min_by",
    "dedup_by",
];

fn check_float_ord(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    for id in 0..ws.nodes.len() {
        let f = ws.file_of(id);
        let g = ws.fn_info(id);
        if g.is_test || is_harness_path(&f.path) {
            continue;
        }
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        for i in start..end {
            if f.sig_kind(i) != Some(TokenKind::Ident)
                || !ORDERED_CONTEXTS.contains(&f.sig_text(i))
                || i == start
                || f.sig_text(i - 1) != "."
                || f.sig_text(i + 1) != "("
            {
                continue;
            }
            let close = f.sig_balanced_end(i + 1, "(", ")");
            for j in (i + 2)..close.saturating_sub(1) {
                if f.sig_kind(j) == Some(TokenKind::Ident) && f.sig_text(j) == "partial_cmp" {
                    out.push(Diagnostic {
                        file: f.path.clone(),
                        line: f.sig_tok(j).map_or(0, |t| t.line),
                        rule: FLOAT_RULE,
                        rank: 0,
                        message: format!(
                            "`partial_cmp` inside `.{}(…)` — NaN makes this partial \
                             order panic or silently mis-sort; route the comparator \
                             through `total_cmp`",
                            f.sig_text(i)
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const ENGINE: &str = "crates/mapreduce/src/flow_fixture.rs";
    const BASE: &str = "crates/baselines/src/flow_fixture.rs";

    fn flow_multi(sources: &[(&str, &str)]) -> Vec<super::super::Diagnostic> {
        let files: Vec<AnalyzedFile> = sources
            .iter()
            .map(|(p, s)| AnalyzedFile::build(*p, *s))
            .collect();
        let waivers: Vec<_> = files.iter().flat_map(collect_waivers).collect();
        let raw = raw_diagnostics(&files, Mode::Flow);
        apply_waivers(raw, &waivers).0
    }

    fn flow(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        flow_multi(&[(path, src)])
    }

    // ------------------------------------------------------------------
    // clock-discipline.
    // ------------------------------------------------------------------

    #[test]
    fn engine_wall_clock_acquisition_requires_a_waiver() {
        let src = "\
fn attempt() {
    let started = Instant::now();
    observe(started.elapsed());
}
";
        let diags = flow(ENGINE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "clock-discipline");
        assert_eq!(diags[0].line, 2);
        // A cited waiver clears it.
        let src = "\
fn attempt() {
    let started = Instant::now(); // xtask: allow(clock-discipline) — advisory host metric only
    observe(started.elapsed());
}
";
        assert!(flow(ENGINE, src).is_empty());
    }

    #[test]
    fn wall_value_into_emitted_pair_flags() {
        let src = "\
fn map_like(out: &mut OutputCollector<(u32, u64)>) {
    let t0 = Instant::now();
    out.collect((7, t0.elapsed().as_nanos() as u64));
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "clock-discipline");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("emitted pair"));
    }

    #[test]
    fn wall_value_into_tick_arithmetic_and_branches_flags() {
        let src = "\
fn drive(sim_ticks: &mut u64) {
    let t = Instant::now();
    *sim_ticks += t.elapsed().as_nanos() as u64;
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("simulated-clock arithmetic"));

        let src = "\
fn reschedule(task: &Task) {
    let waited = Instant::now();
    if waited.elapsed().as_millis() > 10 {
        requeue(task);
    }
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("scheduling decision"));
    }

    #[test]
    fn wall_time_returned_by_a_helper_still_taints_the_caller() {
        // The taint crosses the call through the wall-returning summary.
        let src = "\
fn wall_probe() -> Duration {
    let s = Instant::now();
    s.elapsed()
}
fn emitter(out: &mut OutputCollector<u64>) {
    let d = wall_probe();
    out.collect(d.as_nanos() as u64);
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 7);
        assert!(diags[0].message.contains("emitted pair"));
    }

    #[test]
    fn advisory_metrics_and_simulated_durations_stay_clean() {
        // Wall time into a plain metrics field: advisory, fine (outside
        // the engine crates). A Duration-returning fn with no clock read
        // does not taint its callers.
        let src = "\
fn advisory(metrics: &mut Metrics) {
    let t0 = Instant::now();
    metrics.host_wall = t0.elapsed();
}
fn sim_span(ticks: u64) -> Duration {
    Duration::from_nanos(ticks)
}
fn emitter(out: &mut OutputCollector<u64>) {
    let d = sim_span(4);
    out.collect(d.as_nanos() as u64);
}
";
        assert!(flow(BASE, src).is_empty(), "{:?}", flow(BASE, src));
    }

    #[test]
    fn struct_field_storage_does_not_taint_sibling_field_arithmetic() {
        // Storing wall time into one field of a metrics struct must not
        // poison the binding: `metrics.sim_ticks = …` below is pure
        // simulated-clock arithmetic.
        let src = "\
fn summarize(map_ticks: u64) -> Metrics {
    let started = Instant::now();
    let mut metrics = Metrics {
        sim_ticks: map_ticks * 2,
        host_wall: started.elapsed(),
    };
    metrics.sim_ticks += map_ticks;
    metrics
}
";
        assert!(flow(BASE, src).is_empty(), "{:?}", flow(BASE, src));
    }

    #[test]
    fn hang_detection_must_use_the_simulated_clock() {
        // A progress-timeout that polls the wall clock is a scheduling
        // decision fed by wall time — exactly how an injected-hang killer
        // would smuggle host nondeterminism into the engine.
        let src = "\
fn kill_if_hung(task: &Task) {
    let watch = Instant::now();
    if watch.elapsed() > task.progress_timeout {
        kill(task);
    }
}
";
        let diags = flow(ENGINE, src);
        // Engine crate: the acquisition needs a waiver AND the branch is a
        // wall-fed scheduling decision.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("scheduling decision")));

        // The engine's actual shape: the hang's cost is a tick quantity
        // carried on the fault, charged straight into simulated lost time.
        let src = "\
fn charge_hang(fault: &TaskFault, lost_ticks: &mut u64, timeout_ticks: u64) {
    if fault.hangs() {
        *lost_ticks += timeout_ticks;
    }
}
";
        assert!(flow(ENGINE, src).is_empty(), "{:?}", flow(ENGINE, src));
    }

    #[test]
    fn corrupt_refetch_accounting_must_not_mix_wall_time() {
        // Timing a re-fetch of a corrupted shuffle frame with the host
        // clock and folding it into the simulated stall is tick
        // arithmetic on wall time — both the acquisition and the mix
        // must flag.
        let src = "\
fn charge_refetch(sim_ticks: &mut u64) {
    let fetch_started = Instant::now();
    *sim_ticks += fetch_started.elapsed().as_nanos() as u64;
}
";
        let diags = flow(ENGINE, src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("simulated-clock arithmetic")));

        // Charging the stall from byte counts over simulated bandwidth —
        // the engine's real recovery accounting — is clean.
        let src = "\
fn refetch_stall_ticks(refetch_bytes: u64, bytes_per_tick: u64) -> u64 {
    refetch_bytes / bytes_per_tick.max(1)
}
";
        assert!(flow(ENGINE, src).is_empty(), "{:?}", flow(ENGINE, src));
    }

    // ------------------------------------------------------------------
    // ambient-io.
    // ------------------------------------------------------------------

    #[test]
    fn io_in_a_udf_reachable_helper_flags() {
        let src = "\
struct M;
impl MapTask for M {
    fn map(&mut self, xs: &[u64]) {
        lookup(xs);
    }
}
fn lookup(xs: &[u64]) {
    let table = std::fs::read_to_string(\"side_table.txt\");
    drop(table);
    drop(xs);
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "ambient-io");
        assert_eq!(diags[0].line, 8);
        assert!(diags[0].message.contains("lookup"));
    }

    #[test]
    fn println_env_and_file_in_reachable_code_flag() {
        for stmt in [
            "println!(\"progress {}\", xs.len());",
            "let home = std::env::var(\"HOME\");",
            "let f = File::open(\"x\");",
        ] {
            let src = format!(
                "\
struct M;
impl MapTask for M {{
    fn map(&mut self, xs: &[u64]) {{
        helper(xs);
    }}
}}
fn helper(xs: &[u64]) {{
    {stmt}
}}
"
            );
            let diags = flow(BASE, &src);
            assert_eq!(diags.len(), 1, "{stmt}: {diags:?}");
            assert_eq!(diags[0].rule, "ambient-io");
        }
    }

    #[test]
    fn unreachable_io_and_iterator_collect_are_clean() {
        // The same I/O in a fn no UDF reaches: not this rule's business
        // (driver code loads datasets and writes traces legitimately).
        let src = "\
fn driver_load(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_default()
}
struct M;
impl MapTask for M {
    fn map(&mut self, xs: &[u64]) {
        let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
        drop(doubled);
    }
}
";
        assert!(flow(BASE, src).is_empty(), "{:?}", flow(BASE, src));
    }

    // ------------------------------------------------------------------
    // float-ord.
    // ------------------------------------------------------------------

    #[test]
    fn partial_cmp_in_sort_contexts_flags_with_line() {
        let src = "\
fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"));
    xs
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "float-ord");
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("total_cmp"));

        let src = "\
fn find(xs: &[f64], v: f64) -> Result<usize, usize> {
    xs.binary_search_by(|probe| probe.partial_cmp(&v).expect(\"no NaN\"))
}
";
        let diags = flow(BASE, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "float-ord");
    }

    #[test]
    fn total_cmp_comparators_and_uncontexted_partial_cmp_are_clean() {
        let src = "\
fn rank(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}
fn weaker(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(std::cmp::Ordering::Less)
}
";
        assert!(flow(BASE, src).is_empty(), "{:?}", flow(BASE, src));
    }

    #[test]
    fn whole_workspace_is_clean_under_flow() {
        // The acceptance gate: `cargo xtask flow` exits 0 on this tree —
        // wall clocks carry audited waivers, UDF-reachable code does no
        // ambient I/O, and float comparators are total.
        let files = super::super::load_workspace().expect("workspace root");
        let waivers: Vec<_> = files.iter().flat_map(collect_waivers).collect();
        let raw = raw_diagnostics(&files, Mode::Flow);
        let (active, _) = apply_waivers(raw, &waivers);
        assert!(
            active.is_empty(),
            "workspace has active flow violations:\n{}",
            active
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
