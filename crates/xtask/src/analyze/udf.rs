//! The `udf-determinism` pass.
//!
//! MR-GPSRS/MR-GPMRS correctness (and the Hadoop contract the paper
//! assumes) requires mapper/reducer/combiner UDFs to be pure,
//! deterministic functions of their input: the engine is free to re-run a
//! task after a simulated failure, run it on another host, or reorder it,
//! and the schedule shaker asserts byte-identical job output across all
//! of that. This pass checks the assumption statically inside every UDF
//! body — a fn defined in an `impl` of one of [`super::UDF_TRAITS`] — and
//! inside closures passed to combiner builders (`*Combiner::new(…)`):
//!
//! * **interior mutability** (`RefCell`, `Cell`, `UnsafeCell`,
//!   `Atomic*`, `Mutex`, `RwLock`): shared state observable across
//!   re-runs;
//! * **ambient state** (`std::env`, `SystemTime`, `Instant`): values
//!   that differ between runs — simulated time lives in the engine's
//!   cluster clock, never in UDFs;
//! * **filesystem / network I/O** (`std::fs`, `std::net`, `File`,
//!   `OpenOptions`, `TcpStream`, `TcpListener`, `UdpSocket`): side
//!   channels the replay machinery cannot roll back;
//! * **nondeterministic iteration** (`HashMap`, `HashSet`): iteration
//!   order varies run to run and silently feeds emitted output; use
//!   `BTreeMap`/`BTreeSet` or sort before emitting;
//! * **telemetry recording** (`Collector`, `SpanGuard`, `JobTrace`,
//!   `MetricsRegistry`, `TraceDocument`, `Histogram`): span assembly is a
//!   driver-side concern — a UDF touching the collector would observe (and
//!   perturb) scheduling, and re-runs would double-record. UDFs report
//!   through the replay-aware `Counters` channel instead.
//!
//! Test code is exempt, and any audited exception can be waived with
//! `// xtask: allow(udf-determinism)` on the flagged line.

use super::{AnalyzedFile, Diagnostic, UDF_TRAITS};
use crate::lexer::TokenKind;

/// Runs the pass over one file.
pub fn check_file(f: &AnalyzedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for g in &f.model.fns {
        if g.is_test {
            continue;
        }
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        let is_udf = g
            .impl_idx
            .and_then(|ii| f.model.impls[ii].trait_name.as_deref())
            .is_some_and(|t| UDF_TRAITS.contains(&t));
        if is_udf {
            scan(f, start, end, "UDF body", &mut out);
        } else {
            // Closures handed to combiner builders are UDFs too, wherever
            // the builder call sits (typically job-driver code).
            for call in &g.calls {
                let is_builder = call.name == "new"
                    && !call.is_method
                    && call
                        .qualifier
                        .as_deref()
                        .is_some_and(|q| q.ends_with("Combiner"));
                if !is_builder || f.sig_text(call.sig_idx + 1) != "(" {
                    continue;
                }
                let close = f.sig_balanced_end(call.sig_idx + 1, "(", ")");
                scan(
                    f,
                    call.sig_idx + 2,
                    close.saturating_sub(1),
                    "combiner closure",
                    &mut out,
                );
            }
        }
    }
    out
}

/// What a banned token means, for the diagnostic message.
fn verdict(name: &str) -> Option<&'static str> {
    if name.starts_with("Atomic") && name.len() > "Atomic".len() {
        return Some("interior mutability breaks the deterministic-replay contract");
    }
    match name {
        "RefCell" | "Cell" | "UnsafeCell" | "Mutex" | "RwLock" => {
            Some("interior mutability breaks the deterministic-replay contract")
        }
        "SystemTime" | "Instant" => {
            Some("ambient clock state differs between re-runs; simulated time lives in the engine")
        }
        "File" | "OpenOptions" | "TcpStream" | "TcpListener" | "UdpSocket" => {
            Some("filesystem/network I/O is a side channel failure replay cannot roll back")
        }
        "HashMap" | "HashSet" => {
            Some("nondeterministic iteration order can feed emitted output; use BTreeMap/BTreeSet or sort before emitting")
        }
        "Collector" | "SpanGuard" | "JobTrace" | "MetricsRegistry" | "TraceDocument"
        | "Histogram" => {
            Some("telemetry recording is driver-side only; UDFs report through Counters, which the replay machinery de-duplicates")
        }
        _ => None,
    }
}

/// Scans significant range `[start, end)` of a UDF region.
fn scan(f: &AnalyzedFile, start: usize, end: usize, ctx: &str, out: &mut Vec<Diagnostic>) {
    for i in start..end.min(f.sig.len()) {
        let Some(t) = f.sig_tok(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(&f.src);
        // `std::env` is a path, not a single ident.
        let ambient_env = name == "std"
            && f.sig_text(i + 1) == ":"
            && f.sig_text(i + 2) == ":"
            && matches!(f.sig_text(i + 3), "env" | "fs" | "net");
        if ambient_env {
            let seg = f.sig_text(i + 3).to_owned();
            let why = if seg == "env" {
                "ambient process state differs between runs and hosts"
            } else {
                "filesystem/network I/O is a side channel failure replay cannot roll back"
            };
            out.push(Diagnostic {
                file: f.path.clone(),
                line: t.line,
                rule: "udf-determinism",
                rank: 0,
                message: format!("`std::{seg}` in a {ctx} — {why}"),
            });
            continue;
        }
        if let Some(why) = verdict(name) {
            out.push(Diagnostic {
                file: f.path.clone(),
                line: t.line,
                rule: "udf-determinism",
                rank: 0,
                message: format!("`{name}` in a {ctx} — {why}"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const PATH: &str = "crates/core/src/gpsrs.rs";

    fn analyze(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(path, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, Mode::Analyze);
        apply_waivers(raw, &waivers)
            .0
            .into_iter()
            .filter(|d| d.rule == "udf-determinism")
            .collect()
    }

    fn udf_fixture(stmt: &str) -> String {
        format!(
            "\
struct M;
impl ReduceTask for M {{
    fn reduce(&mut self, out: &mut Vec<u64>) {{
        {stmt}
    }}
}}
"
        )
    }

    #[test]
    fn flags_hashmap_iteration_in_a_udf_body_with_file_and_line() {
        let src = udf_fixture("let mut m = HashMap::new(); for (k, v) in &m { out.push(*v); }");
        let diags = analyze(PATH, &src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, PATH);
        assert_eq!(diags[0].line, 4);
        assert!(diags[0].message.contains("HashMap"));
    }

    #[test]
    fn flags_interior_mutability_ambient_state_and_io() {
        for (stmt, needle) in [
            ("let c = RefCell::new(0u64);", "RefCell"),
            ("let n = AtomicU64::new(0);", "AtomicU64"),
            ("let t = Instant::now();", "Instant"),
            ("let home = std::env::var(\"HOME\");", "std::env"),
            ("let f = File::open(\"x\");", "File"),
            ("let d = std::fs::read(\"x\");", "std::fs"),
        ] {
            let diags = analyze(PATH, &udf_fixture(stmt));
            assert_eq!(diags.len(), 1, "{stmt} → {diags:?}");
            assert!(diags[0].message.contains(needle), "{stmt}");
        }
    }

    #[test]
    fn deterministic_udf_bodies_and_non_udf_fns_are_clean() {
        let src = udf_fixture(
            "let mut m = std::collections::BTreeMap::new(); m.insert(1u64, 2u64); \
             for (_, v) in &m { out.push(*v); }",
        );
        assert!(analyze(PATH, &src).is_empty());
        // The same HashMap pattern outside any UDF impl is fine (the
        // engine sorts at shuffle boundaries; only UDFs are constrained).
        let src = "fn driver() { let m: HashMap<u64, u64> = HashMap::new(); drop(m); }\n";
        assert!(analyze(PATH, src).is_empty());
        // And a test-only UDF impl is exempt.
        let src = format!(
            "#[cfg(test)]\nmod t {{\n{}\n}}\n",
            udf_fixture("let x = Instant::now();")
        );
        assert!(analyze(PATH, &src).is_empty());
    }

    #[test]
    fn flags_telemetry_recording_in_udf_bodies() {
        for (stmt, needle) in [
            ("let c = Collector::new(); drop(c);", "Collector"),
            (
                "let r = MetricsRegistry::new(); drop(r);",
                "MetricsRegistry",
            ),
            ("let h = Histogram::new(&[1, 2]); drop(h);", "Histogram"),
            ("self.trace.span(JobTrace::new(\"x\"));", "JobTrace"),
        ] {
            let diags = analyze(PATH, &udf_fixture(stmt));
            assert_eq!(diags.len(), 1, "{stmt} → {diags:?}");
            assert!(diags[0].message.contains(needle), "{stmt}");
            assert!(diags[0].message.contains("driver-side"), "{stmt}");
        }
        // The sanctioned channel stays clean.
        let src = udf_fixture("self.counters.add(\"map.records\", 1);");
        assert!(analyze(PATH, &src).is_empty());
    }

    #[test]
    fn waiver_suppresses_an_audited_site() {
        let src = udf_fixture("let t = Instant::now(); // xtask: allow(udf-determinism)");
        assert!(analyze(PATH, &src).is_empty());
    }

    #[test]
    fn combiner_closures_are_scanned_too() {
        let src = "\
fn build() {
    let c = FoldCombiner::new(|a: u64, b: u64| {
        let m = HashMap::new();
        drop(m);
        a + b
    });
    drop(c);
}
";
        let diags = analyze(PATH, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("combiner closure"));
        // A pure fold closure is clean.
        let src = "fn build() { let c = FoldCombiner::new(|a: u64, b: u64| a + b); drop(c); }\n";
        assert!(analyze(PATH, src).is_empty());
    }
}
