//! `hot-path-alloc` — the allocation half of `cargo xtask perf`.
//!
//! Mullesgaard et al.'s §6 cost model makes dominance comparisons the
//! dominant term of every MapReduce phase, so the kernels that run them
//! must not silently grow heap traffic. This pass starts from a **hot
//! entry registry** (`crates/xtask/hot_entries.conf`, plus in-place
//! `// xtask: hot` markers for impl methods), walks the intra-workspace
//! call graph from those entries, and inside every reachable fn flags:
//!
//! * direct allocation: `Vec::new()`, `vec![…]`, `Box::new(…)`,
//!   `.to_vec()`, no-argument `.collect()` (turbofish included),
//!   `format!(…)`, `String::from(…)`;
//! * `.clone()` calls (the receiver may be non-`Copy`; `Copy` values
//!   should be dereferenced instead);
//! * `Vec::push` with no visible `with_capacity`/`reserve` for the same
//!   receiver anywhere in the fn;
//! * `HashMap`/`HashSet` use (per-probe hashing plus unordered
//!   iteration — the workspace standard is `BTreeMap`).
//!
//! Each diagnostic carries an **effective loop depth**: the loop nesting
//! at the flagged token plus the deepest loop nesting accumulated along
//! the call chain from a hot entry (a fn called inside a double loop
//! starts at depth 2). Allocation/clone/push findings fire only at depth
//! ≥ 1 — a one-off allocation in straight-line kernel code is fine — and
//! diagnostics are ranked deepest-first. The registry itself is checked:
//! an entry naming a fn that no longer exists, or a marker binding to no
//! fn, is an error, so the hot set cannot rot.
//!
//! Calls resolve through the workspace symbol graph
//! ([`super::resolve`]): `use`-aware free-fn resolution gives the pass
//! cross-crate reach (an allocation inside a `skymr_common` helper called
//! from a hot `core` kernel is flagged), and receiver typing means a
//! method edge exists only when the receiver's type is statically
//! evident — so `window.into_iter().map(…)` resolves to nothing and can
//! never alias a MapReduce `map` UDF, which is what used to require a
//! std-prelude method-name denylist here. Closures still fold into the
//! enclosing fn, iterator adapters are not loop regions, and effective
//! depth is capped so recursive cycles through loops terminate.

use super::resolve::Workspace;
use super::{AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

/// The checked hot-entry registry, embedded at compile time.
const HOT_ENTRIES_CONF: &str = include_str!("../../hot_entries.conf");
/// Workspace-relative path diagnostics about the registry point at.
const HOT_ENTRIES_PATH: &str = "crates/xtask/hot_entries.conf";
/// Effective-depth cap: keeps propagation finite on recursive cycles.
const DEPTH_CAP: u32 = 8;

pub const RULE: &str = "hot-path-alloc";

/// One `file::fn` line of the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfEntry {
    /// Workspace-relative file the hot fn lives in.
    pub file: String,
    /// The fn's name.
    pub name: String,
    /// 1-based line in the conf file (for registry-error diagnostics).
    pub line: usize,
}

/// Parses the embedded registry. Lines are `path::fn`; `#` comments and
/// blanks are skipped.
pub fn parse_registry() -> Vec<ConfEntry> {
    let mut out = Vec::new();
    for (idx, raw) in HOT_ENTRIES_CONF.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, name)) = line.rsplit_once("::") {
            out.push(ConfEntry {
                file: file.to_owned(),
                name: name.to_owned(),
                line: idx + 1,
            });
        }
    }
    out
}

/// The whole-workspace pass with the embedded registry.
pub fn check(ws: &Workspace<'_>) -> Vec<Diagnostic> {
    check_with_registry(ws, &parse_registry())
}

/// Hot state of a node: effective loop depth at its entry, and the hot
/// entry fn it was reached from (for the diagnostic message).
#[derive(Clone)]
struct Hot {
    depth: u32,
    via: String,
}

pub fn check_with_registry(ws: &Workspace<'_>, registry: &[ConfEntry]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let files = ws.files();

    // Test fns and bodiless decls never join the hot set.
    let eligible = |id: usize| !ws.fn_info(id).is_test && ws.fn_info(id).body.is_some();

    // Seed the hot set: registry entries (checked against the file set)…
    let mut hot: Vec<Option<Hot>> = (0..ws.nodes.len()).map(|_| None).collect();
    let mut work: Vec<usize> = Vec::new();
    for entry in registry {
        let Some(_) = files.iter().position(|f| f.path == entry.file) else {
            // Entry file not in this file set (fixture runs analyze a
            // handful of files); the whole-workspace gate test asserts
            // every registry file actually exists in the tree.
            continue;
        };
        let mut matched = false;
        for (id, slot) in hot.iter_mut().enumerate() {
            if eligible(id)
                && ws.file_of(id).path == entry.file
                && ws.fn_info(id).name == entry.name
            {
                matched = true;
                if slot.is_none() {
                    *slot = Some(Hot {
                        depth: 0,
                        via: entry.name.clone(),
                    });
                    work.push(id);
                }
            }
        }
        if !matched {
            out.push(Diagnostic {
                file: HOT_ENTRIES_PATH.to_owned(),
                line: entry.line,
                rule: RULE,
                rank: 0,
                message: format!(
                    "hot-entry registry names `{}::{}` but that file has no such \
                     non-test fn — update the registry",
                    entry.file, entry.name
                ),
            });
        }
    }
    // …and `// xtask: hot` markers (bind to the next fn within 3 lines).
    for (fi, f) in files.iter().enumerate() {
        for t in &f.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t
                .text(&f.src)
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_end_matches('/')
                .trim_end_matches('*')
                .trim();
            if text != "xtask: hot" {
                continue;
            }
            let bound = (0..ws.nodes.len()).find(|&id| {
                eligible(id) && ws.nodes[id].file == fi && {
                    let g = ws.fn_info(id);
                    g.line >= t.line && g.line <= t.line + 3
                }
            });
            match bound {
                Some(id) => {
                    if hot[id].is_none() {
                        hot[id] = Some(Hot {
                            depth: 0,
                            via: ws.fn_info(id).name.clone(),
                        });
                        work.push(id);
                    }
                }
                None => out.push(Diagnostic {
                    file: f.path.clone(),
                    line: t.line,
                    rule: RULE,
                    rank: 0,
                    message: "dangling `// xtask: hot` marker: no non-test fn with a body \
                              starts within the next 3 lines"
                        .to_owned(),
                }),
            }
        }
    }

    // Propagate effective loop depth along the call graph: a callee's
    // depth is the caller's depth plus the loop nesting at the call site,
    // maximized over call chains and capped for termination.
    while let Some(id) = work.pop() {
        let Some(cur) = hot[id].clone() else { continue };
        let caller = ws.fn_info(id);
        for &(ci, target) in ws.callees(id) {
            if !eligible(target) {
                continue;
            }
            let call = &caller.calls[ci];
            let nd = (cur.depth + caller.loop_depth_at(call.sig_idx)).min(DEPTH_CAP);
            let better = match &hot[target] {
                None => true,
                Some(h) => nd > h.depth,
            };
            if better {
                hot[target] = Some(Hot {
                    depth: nd,
                    via: cur.via.clone(),
                });
                work.push(target);
            }
        }
    }

    // Scan every hot fn body.
    for (id, slot) in hot.iter().enumerate() {
        let Some(h) = slot else { continue };
        let f = ws.file_of(id);
        let g = ws.fn_info(id);
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        scan_hot_body(f, g, h, start, end, &mut out);
    }
    out
}

/// Scans one hot fn body (significant range `[start, end)`).
fn scan_hot_body(
    f: &AnalyzedFile,
    g: &crate::parse::FnInfo,
    h: &Hot,
    start: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let presized = capacity_receivers(f, start, end);
    let mut hash_lines: Vec<usize> = Vec::new();
    for i in start..end {
        let Some(t) = f.sig_tok(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(&f.src);
        let rank = h.depth + g.loop_depth_at(i);
        let diag = |rank: u32, message: String| Diagnostic {
            file: f.path.clone(),
            line: t.line,
            rule: RULE,
            rank,
            message,
        };
        let alloc = |what: &str| {
            format!(
                "`{what}` allocates on a hot path (effective loop depth {rank}, \
                 via `{}`) — hoist it out of the loop or pre-size the buffer",
                h.via
            )
        };
        let is_method = i > start && f.sig_text(i - 1) == ".";
        match name {
            // Constructors spelled `Type::name(…)`.
            "new" if path_qualifier(f, i).as_deref() == Some("Vec") && rank >= 1 => {
                out.push(diag(rank, alloc("Vec::new()")));
            }
            "new" if path_qualifier(f, i).as_deref() == Some("Box") && rank >= 1 => {
                out.push(diag(rank, alloc("Box::new(…)")));
            }
            "from" if path_qualifier(f, i).as_deref() == Some("String") && rank >= 1 => {
                out.push(diag(rank, alloc("String::from(…)")));
            }
            // Allocating macros.
            "vec" | "format" if f.sig_text(i + 1) == "!" && rank >= 1 => {
                out.push(diag(rank, alloc(&format!("{name}![…]"))));
            }
            // Allocating methods.
            "to_vec" if is_method && f.sig_text(i + 1) == "(" && rank >= 1 => {
                out.push(diag(rank, alloc(".to_vec()")));
            }
            "collect" if is_method && no_arg_call_after(f, i) && rank >= 1 => {
                out.push(diag(rank, alloc(".collect()")));
            }
            "clone" if is_method && no_arg_call_after(f, i) && rank >= 1 => {
                out.push(diag(
                    rank,
                    format!(
                        "`.clone()` on a hot path (effective loop depth {rank}, via \
                         `{}`) — borrow or move instead; if the copy is the \
                         algorithm's contract, waive with that invariant",
                        h.via
                    ),
                ));
            }
            // Unsized growth: `recv.push(…)` with no visible pre-sizing.
            "push" if is_method && f.sig_text(i + 1) == "(" && rank >= 1 => {
                let recv = (i >= start + 2 && f.sig_kind(i - 2) == Some(TokenKind::Ident))
                    .then(|| f.sig_text(i - 2).to_owned());
                let known = recv.as_ref().is_some_and(|r| presized.contains(r));
                if !known {
                    let recv = recv.unwrap_or_else(|| "<expr>".into());
                    out.push(diag(
                        rank,
                        format!(
                            "`{recv}.push(…)` with no visible `with_capacity`/`reserve` \
                             for `{recv}` in this fn (effective loop depth {rank}, via \
                             `{}`) — pre-size the vector",
                            h.via
                        ),
                    ));
                }
            }
            // Hash containers anywhere in a hot fn, once per line.
            "HashMap" | "HashSet" if !hash_lines.contains(&t.line) => {
                hash_lines.push(t.line);
                out.push(diag(
                    rank,
                    format!(
                        "`{name}` in hot fn `{}` (via `{}`) — per-probe hashing and \
                         unordered iteration; the workspace standard is `BTreeMap` \
                         or a dense `Vec`",
                        g.name, h.via
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// Receivers that the fn visibly pre-sizes: every ident appearing in a
/// statement that also mentions `with_capacity` or `reserve`.
fn capacity_receivers(f: &AnalyzedFile, start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in start..end {
        if f.sig_kind(i) != Some(TokenKind::Ident)
            || !matches!(f.sig_text(i), "with_capacity" | "reserve")
        {
            continue;
        }
        let boundary = |t: &str| matches!(t, ";" | "{" | "}");
        let lo = (start..i)
            .rev()
            .find(|&j| boundary(f.sig_text(j)))
            .map_or(start, |j| j + 1);
        let hi = (i..end).find(|&j| boundary(f.sig_text(j))).unwrap_or(end);
        for j in lo..hi {
            if f.sig_kind(j) == Some(TokenKind::Ident) {
                let t = f.sig_text(j).to_owned();
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// `true` for `name()` / `name::<T>()` — a call with an empty argument
/// list, turbofish tolerated.
fn no_arg_call_after(f: &AnalyzedFile, i: usize) -> bool {
    let mut j = i + 1;
    if f.sig_text(j) == ":" && f.sig_text(j + 1) == ":" && f.sig_text(j + 2) == "<" {
        let mut depth = 0i64;
        let mut k = j + 2;
        while k < f.sig.len() {
            match f.sig_text(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    f.sig_text(j) == "(" && f.sig_text(j + 1) == ")"
}

/// The path segment before ident `i`, if `i` is preceded by `Qual::`.
fn path_qualifier(f: &AnalyzedFile, i: usize) -> Option<String> {
    if i >= 3 && f.sig_text(i - 1) == ":" && f.sig_text(i - 2) == ":" {
        let q = f.sig_tok(i - 3)?;
        if matches!(q.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return Some(q.text(&f.src).to_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};
    use super::{parse_registry, ConfEntry};

    // A path no hot_entries.conf line names, so fixture runs see marker
    // entries only (registry entries check against their own files).
    const KERNEL: &str = "crates/core/src/kernel_fixture.rs";

    /// Full perf-mode pipeline (marker-based entries; no registry).
    fn perf(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(path, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, Mode::Perf);
        apply_waivers(raw, &waivers).0
    }

    #[test]
    fn registry_parses_and_files_exist_in_tree() {
        let reg = parse_registry();
        assert!(reg.len() >= 8, "registry lost entries: {reg:?}");
        let root = super::super::workspace_root().expect("workspace root");
        for e in &reg {
            assert!(
                root.join(&e.file).is_file(),
                "hot_entries.conf names a missing file: {}",
                e.file
            );
        }
    }

    #[test]
    fn allocation_in_hot_loop_flags_with_file_line_and_rank() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = Vec::new();
        use_it(v, x);
    }
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hot-path-alloc");
        assert_eq!(diags[0].file, KERNEL);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].rank, 1);
    }

    #[test]
    fn depth_propagates_through_the_call_graph_and_ranks_deepest_first() {
        // helper() is called from inside a double loop, so its single-loop
        // allocation ranks at effective depth 3; the caller's own depth-1
        // allocation ranks 1 and sorts after it.
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = vec![0; 4];
        for y in xs {
            helper(x, y);
        }
    }
}
fn helper(a: &u64, b: &u64) {
    for _ in 0..4 {
        let s = format!(\"{a}{b}\");
        drop(s);
    }
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].rank, 3, "deepest finding first: {diags:?}");
        assert!(diags[0].message.contains("format!"));
        assert!(diags[0].message.contains("via `kernel`"));
        assert_eq!(diags[1].rank, 1);
    }

    #[test]
    fn straight_line_allocation_in_a_hot_fn_is_fine() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend(xs.iter().copied());
    out
}
";
        assert!(perf(KERNEL, src).is_empty());
    }

    #[test]
    fn push_without_capacity_flags_but_presized_receiver_is_exempt() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut sized = Vec::with_capacity(xs.len());
    let mut unsized_v = Vec::with_capacity(0);
    for &x in xs {
        sized.push(x);
        grown.push(x);
    }
    (sized, unsized_v)
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`grown.push"));
    }

    #[test]
    fn clone_collect_and_hashmap_rules_fire() {
        let src = "\
// xtask: hot
fn kernel(xs: &[Thing]) {
    let m = HashMap::new();
    for x in xs {
        let a = x.clone();
        let b: Vec<u8> = x.bytes().collect();
        sink(a, b, &m);
    }
}
";
        let rules: Vec<_> = perf(KERNEL, src)
            .iter()
            .map(|d| d.message.split('`').nth(1).unwrap_or_default().to_owned())
            .collect();
        assert!(rules.iter().any(|m| m.contains("clone")), "{rules:?}");
        assert!(rules.iter().any(|m| m.contains("collect")), "{rules:?}");
        assert!(rules.iter().any(|m| m.contains("HashMap")), "{rules:?}");
    }

    #[test]
    fn waived_hit_is_suppressed_and_unmarked_code_is_never_scanned() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = x.to_vec(); // xtask: allow(hot-path-alloc) — copy is the contract
        drop(v);
    }
}
fn cold(xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|x| x + 1).collect()
}
";
        assert!(perf(KERNEL, src).is_empty());
    }

    #[test]
    fn iterator_map_adapter_never_marks_udf_map_hot() {
        // The receiver of `.map(…)` is an iterator chain, which receiver
        // typing refuses to resolve — so the allocating UDF named `map`
        // below never joins the hot set. This is the fixture that lets
        // the old std-prelude method denylist stay deleted.
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) -> u64 {
    let mut acc = 0;
    for chunk in xs.chunks(8) {
        acc += chunk.iter().map(|x| x + 1).sum::<u64>();
    }
    acc
}
struct M;
impl MapTask for M {
    fn map(&mut self, xs: &[u64]) {
        for _ in xs {
            let v = Vec::new();
            drop(v);
        }
    }
}
";
        assert!(perf(KERNEL, src).is_empty());
    }

    #[test]
    fn typed_receiver_method_calls_do_propagate_heat() {
        // The inverse of the fixture above: when the receiver IS typed,
        // the method edge exists and heat flows through it.
        let src = "\
struct M;
impl MapTask for M {
    fn map(&mut self, xs: &[u64]) {
        for _ in xs {
            let v = Vec::new();
            drop(v);
        }
    }
}
// xtask: hot
fn kernel(m: &mut M, xs: &[u64]) {
    m.map(xs);
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("Vec::new()"));
    }

    #[test]
    fn cross_crate_callee_of_hot_kernel_is_scanned() {
        // A hot `core` kernel calling an allocating `skymr_common` helper
        // through a `use` import: the old intra-crate-name graph missed
        // this; the resolved graph must not.
        let kernel = "\
use skymr_common::cmp_fixture::compare_all;
// xtask: hot
fn kernel(xs: &[u64]) {
    for w in xs.chunks(2) {
        compare_all(w);
    }
}
";
        let helper = "\
pub fn compare_all(w: &[u64]) {
    for _ in w {
        let scratch = Vec::new();
        drop(scratch);
    }
}
";
        let files = [
            AnalyzedFile::build(KERNEL, kernel),
            AnalyzedFile::build("crates/common/src/cmp_fixture.rs", helper),
        ];
        let raw = raw_diagnostics(&files, Mode::Perf);
        assert_eq!(raw.len(), 1, "{raw:?}");
        assert_eq!(raw[0].file, "crates/common/src/cmp_fixture.rs");
        assert_eq!(raw[0].rank, 2, "kernel loop + helper loop");
        assert!(raw[0].message.contains("via `kernel`"));
    }

    #[test]
    fn registry_entry_for_missing_fn_is_an_error() {
        let f = AnalyzedFile::build(KERNEL, "fn present() {}\n");
        let files = [f];
        let ws = super::super::resolve::Workspace::build(&files);
        let registry = [ConfEntry {
            file: KERNEL.to_owned(),
            name: "vanished".to_owned(),
            line: 7,
        }];
        let diags = super::check_with_registry(&ws, &registry);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/xtask/hot_entries.conf");
        assert_eq!(diags[0].line, 7);
        assert!(diags[0].message.contains("vanished"));
    }

    #[test]
    fn dangling_hot_marker_is_an_error() {
        let src = "// xtask: hot\nconst N: usize = 4;\n\n\n\nfn far_away() {}\n";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("dangling"));
    }
}
