//! `hot-path-alloc` — the allocation half of `cargo xtask perf`.
//!
//! Mullesgaard et al.'s §6 cost model makes dominance comparisons the
//! dominant term of every MapReduce phase, so the kernels that run them
//! must not silently grow heap traffic. This pass starts from a **hot
//! entry registry** (`crates/xtask/hot_entries.conf`, plus in-place
//! `// xtask: hot` markers for impl methods), walks the intra-workspace
//! call graph from those entries, and inside every reachable fn flags:
//!
//! * direct allocation: `Vec::new()`, `vec![…]`, `Box::new(…)`,
//!   `.to_vec()`, no-argument `.collect()` (turbofish included),
//!   `format!(…)`, `String::from(…)`;
//! * `.clone()` calls (the receiver may be non-`Copy`; `Copy` values
//!   should be dereferenced instead);
//! * `Vec::push` with no visible `with_capacity`/`reserve` for the same
//!   receiver anywhere in the fn;
//! * `HashMap`/`HashSet` use (per-probe hashing plus unordered
//!   iteration — the workspace standard is `BTreeMap`).
//!
//! Each diagnostic carries an **effective loop depth**: the loop nesting
//! at the flagged token plus the deepest loop nesting accumulated along
//! the call chain from a hot entry (a fn called inside a double loop
//! starts at depth 2). Allocation/clone/push findings fire only at depth
//! ≥ 1 — a one-off allocation in straight-line kernel code is fine — and
//! diagnostics are ranked deepest-first. The registry itself is checked:
//! an entry naming a fn that no longer exists, or a marker binding to no
//! fn, is an error, so the hot set cannot rot.
//!
//! Approximations, shared with the other graph passes: calls resolve by
//! name (plus impl self-type when a `Type::` qualifier is present),
//! closures fold into the enclosing fn, and iterator adapters are not
//! loop regions. Effective depth is capped so recursive cycles through
//! loops terminate. Method calls whose name collides with a std
//! prelude/iterator method (`.map(…)`, `.len()`, `.push(…)`, …) are not
//! traversed: on a workspace full of MapReduce UDFs literally named
//! `map`, resolving `window.into_iter().map(…)` to every mapper would
//! mark the whole tree hot. An impl method with such a name joins the
//! hot set via the registry or its own `// xtask: hot` marker instead.

use std::collections::BTreeMap;

use super::{AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

/// The checked hot-entry registry, embedded at compile time.
const HOT_ENTRIES_CONF: &str = include_str!("../../hot_entries.conf");
/// Workspace-relative path diagnostics about the registry point at.
const HOT_ENTRIES_PATH: &str = "crates/xtask/hot_entries.conf";
/// Effective-depth cap: keeps propagation finite on recursive cycles.
const DEPTH_CAP: u32 = 8;

/// Std prelude/iterator/collection method names the call graph never
/// traverses when they appear in method position. Name-based resolution
/// cannot tell `window.into_iter().map(f)` from a MapReduce `map` UDF,
/// and this workspace defines fns named `map`, `collect`, `send`, … on
/// nearly every layer; following them would mark the whole tree hot.
const UNTRACKED_METHODS: &[&str] = &[
    "all",
    "any",
    "chain",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "filter",
    "filter_map",
    "find",
    "first",
    "flat_map",
    "flatten",
    "fold",
    "for_each",
    "get",
    "get_mut",
    "get_or_insert",
    "insert",
    "into_iter",
    "is_empty",
    "is_none",
    "is_some",
    "iter",
    "iter_mut",
    "join",
    "last",
    "len",
    "lock",
    "map",
    "max",
    "max_by",
    "max_by_key",
    "min",
    "min_by",
    "min_by_key",
    "next",
    "parse",
    "partial_cmp",
    "pop",
    "position",
    "push",
    "push_str",
    "read",
    "recv",
    "remove",
    "resize",
    "retain",
    "rev",
    "reverse",
    "send",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split",
    "sum",
    "swap_remove",
    "take",
    "to_string",
    "to_vec",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "windows",
    "write",
    "zip",
];

pub const RULE: &str = "hot-path-alloc";

/// One `file::fn` line of the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfEntry {
    /// Workspace-relative file the hot fn lives in.
    pub file: String,
    /// The fn's name.
    pub name: String,
    /// 1-based line in the conf file (for registry-error diagnostics).
    pub line: usize,
}

/// Parses the embedded registry. Lines are `path::fn`; `#` comments and
/// blanks are skipped.
pub fn parse_registry() -> Vec<ConfEntry> {
    let mut out = Vec::new();
    for (idx, raw) in HOT_ENTRIES_CONF.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((file, name)) = line.rsplit_once("::") {
            out.push(ConfEntry {
                file: file.to_owned(),
                name: name.to_owned(),
                line: idx + 1,
            });
        }
    }
    out
}

/// The whole-workspace pass with the embedded registry.
pub fn check(files: &[AnalyzedFile]) -> Vec<Diagnostic> {
    check_with_registry(files, &parse_registry())
}

/// One fn in the flattened call graph.
struct Node {
    file: usize,
    func: usize,
}

/// Hot state of a node: effective loop depth at its entry, and the hot
/// entry fn it was reached from (for the diagnostic message).
#[derive(Clone)]
struct Hot {
    depth: u32,
    via: String,
}

pub fn check_with_registry(files: &[AnalyzedFile], registry: &[ConfEntry]) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Flatten every non-test bodied fn; index by name for call resolution.
    let mut nodes: Vec<Node> = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.model.fns.iter().enumerate() {
            if g.is_test || g.body.is_none() {
                continue;
            }
            by_name
                .entry(g.name.as_str())
                .or_default()
                .push(nodes.len());
            nodes.push(Node { file: fi, func: gi });
        }
    }
    let self_ty_of = |n: &Node| -> Option<&str> {
        let f = &files[n.file];
        let g = &f.model.fns[n.func];
        g.impl_idx.map(|ii| f.model.impls[ii].self_ty.as_str())
    };

    // Seed the hot set: registry entries (checked against the file set)…
    let mut hot: Vec<Option<Hot>> = (0..nodes.len()).map(|_| None).collect();
    let mut work: Vec<usize> = Vec::new();
    for entry in registry {
        let Some(_) = files.iter().position(|f| f.path == entry.file) else {
            // Entry file not in this file set (fixture runs analyze a
            // handful of files); the whole-workspace gate test asserts
            // every registry file actually exists in the tree.
            continue;
        };
        let mut matched = false;
        for (id, n) in nodes.iter().enumerate() {
            if files[n.file].path == entry.file
                && files[n.file].model.fns[n.func].name == entry.name
            {
                matched = true;
                if hot[id].is_none() {
                    hot[id] = Some(Hot {
                        depth: 0,
                        via: entry.name.clone(),
                    });
                    work.push(id);
                }
            }
        }
        if !matched {
            out.push(Diagnostic {
                file: HOT_ENTRIES_PATH.to_owned(),
                line: entry.line,
                rule: RULE,
                rank: 0,
                message: format!(
                    "hot-entry registry names `{}::{}` but that file has no such \
                     non-test fn — update the registry",
                    entry.file, entry.name
                ),
            });
        }
    }
    // …and `// xtask: hot` markers (bind to the next fn within 3 lines).
    for (fi, f) in files.iter().enumerate() {
        for t in &f.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t
                .text(&f.src)
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_end_matches('/')
                .trim_end_matches('*')
                .trim();
            if text != "xtask: hot" {
                continue;
            }
            let bound = nodes.iter().enumerate().find(|(_, n)| {
                n.file == fi && {
                    let g = &f.model.fns[n.func];
                    g.line >= t.line && g.line <= t.line + 3
                }
            });
            match bound {
                Some((id, _)) => {
                    if hot[id].is_none() {
                        hot[id] = Some(Hot {
                            depth: 0,
                            via: f.model.fns[nodes[id].func].name.clone(),
                        });
                        work.push(id);
                    }
                }
                None => out.push(Diagnostic {
                    file: f.path.clone(),
                    line: t.line,
                    rule: RULE,
                    rank: 0,
                    message: "dangling `// xtask: hot` marker: no non-test fn with a body \
                              starts within the next 3 lines"
                        .to_owned(),
                }),
            }
        }
    }

    // Propagate effective loop depth along the call graph: a callee's
    // depth is the caller's depth plus the loop nesting at the call site,
    // maximized over call chains and capped for termination.
    while let Some(id) = work.pop() {
        let Some(cur) = hot[id].clone() else { continue };
        let n = &nodes[id];
        let caller = &files[n.file].model.fns[n.func];
        for call in &caller.calls {
            if call.is_macro {
                continue;
            }
            // `.map(…)`, `.push(…)`, … are std methods, not UDF calls.
            if call.is_method && UNTRACKED_METHODS.contains(&call.name.as_str()) {
                continue;
            }
            let Some(candidates) = by_name.get(call.name.as_str()) else {
                continue;
            };
            let nd = (cur.depth + caller.loop_depth_at(call.sig_idx)).min(DEPTH_CAP);
            for &target in candidates {
                // `Type::fn` calls only resolve to fns in an `impl Type`.
                if let Some(q) = &call.qualifier {
                    if q.chars().next().is_some_and(char::is_uppercase)
                        && self_ty_of(&nodes[target]) != Some(q.as_str())
                    {
                        continue;
                    }
                }
                let better = match &hot[target] {
                    None => true,
                    Some(h) => nd > h.depth,
                };
                if better {
                    hot[target] = Some(Hot {
                        depth: nd,
                        via: cur.via.clone(),
                    });
                    work.push(target);
                }
            }
        }
    }

    // Scan every hot fn body.
    for (id, n) in nodes.iter().enumerate() {
        let Some(h) = &hot[id] else { continue };
        let f = &files[n.file];
        let g = &f.model.fns[n.func];
        let Some(body) = g.body else { continue };
        let (start, end) = f.sig_range(body);
        scan_hot_body(f, g, h, start, end, &mut out);
    }
    out
}

/// Scans one hot fn body (significant range `[start, end)`).
fn scan_hot_body(
    f: &AnalyzedFile,
    g: &crate::parse::FnInfo,
    h: &Hot,
    start: usize,
    end: usize,
    out: &mut Vec<Diagnostic>,
) {
    let presized = capacity_receivers(f, start, end);
    let mut hash_lines: Vec<usize> = Vec::new();
    for i in start..end {
        let Some(t) = f.sig_tok(i) else { continue };
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(&f.src);
        let rank = h.depth + g.loop_depth_at(i);
        let diag = |rank: u32, message: String| Diagnostic {
            file: f.path.clone(),
            line: t.line,
            rule: RULE,
            rank,
            message,
        };
        let alloc = |what: &str| {
            format!(
                "`{what}` allocates on a hot path (effective loop depth {rank}, \
                 via `{}`) — hoist it out of the loop or pre-size the buffer",
                h.via
            )
        };
        let is_method = i > start && f.sig_text(i - 1) == ".";
        match name {
            // Constructors spelled `Type::name(…)`.
            "new" if path_qualifier(f, i).as_deref() == Some("Vec") && rank >= 1 => {
                out.push(diag(rank, alloc("Vec::new()")));
            }
            "new" if path_qualifier(f, i).as_deref() == Some("Box") && rank >= 1 => {
                out.push(diag(rank, alloc("Box::new(…)")));
            }
            "from" if path_qualifier(f, i).as_deref() == Some("String") && rank >= 1 => {
                out.push(diag(rank, alloc("String::from(…)")));
            }
            // Allocating macros.
            "vec" | "format" if f.sig_text(i + 1) == "!" && rank >= 1 => {
                out.push(diag(rank, alloc(&format!("{name}![…]"))));
            }
            // Allocating methods.
            "to_vec" if is_method && f.sig_text(i + 1) == "(" && rank >= 1 => {
                out.push(diag(rank, alloc(".to_vec()")));
            }
            "collect" if is_method && no_arg_call_after(f, i) && rank >= 1 => {
                out.push(diag(rank, alloc(".collect()")));
            }
            "clone" if is_method && no_arg_call_after(f, i) && rank >= 1 => {
                out.push(diag(
                    rank,
                    format!(
                        "`.clone()` on a hot path (effective loop depth {rank}, via \
                         `{}`) — borrow or move instead; if the copy is the \
                         algorithm's contract, waive with that invariant",
                        h.via
                    ),
                ));
            }
            // Unsized growth: `recv.push(…)` with no visible pre-sizing.
            "push" if is_method && f.sig_text(i + 1) == "(" && rank >= 1 => {
                let recv = (i >= start + 2 && f.sig_kind(i - 2) == Some(TokenKind::Ident))
                    .then(|| f.sig_text(i - 2).to_owned());
                let known = recv.as_ref().is_some_and(|r| presized.contains(r));
                if !known {
                    let recv = recv.unwrap_or_else(|| "<expr>".into());
                    out.push(diag(
                        rank,
                        format!(
                            "`{recv}.push(…)` with no visible `with_capacity`/`reserve` \
                             for `{recv}` in this fn (effective loop depth {rank}, via \
                             `{}`) — pre-size the vector",
                            h.via
                        ),
                    ));
                }
            }
            // Hash containers anywhere in a hot fn, once per line.
            "HashMap" | "HashSet" if !hash_lines.contains(&t.line) => {
                hash_lines.push(t.line);
                out.push(diag(
                    rank,
                    format!(
                        "`{name}` in hot fn `{}` (via `{}`) — per-probe hashing and \
                         unordered iteration; the workspace standard is `BTreeMap` \
                         or a dense `Vec`",
                        g.name, h.via
                    ),
                ));
            }
            _ => {}
        }
    }
}

/// Receivers that the fn visibly pre-sizes: every ident appearing in a
/// statement that also mentions `with_capacity` or `reserve`.
fn capacity_receivers(f: &AnalyzedFile, start: usize, end: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in start..end {
        if f.sig_kind(i) != Some(TokenKind::Ident)
            || !matches!(f.sig_text(i), "with_capacity" | "reserve")
        {
            continue;
        }
        let boundary = |t: &str| matches!(t, ";" | "{" | "}");
        let lo = (start..i)
            .rev()
            .find(|&j| boundary(f.sig_text(j)))
            .map_or(start, |j| j + 1);
        let hi = (i..end).find(|&j| boundary(f.sig_text(j))).unwrap_or(end);
        for j in lo..hi {
            if f.sig_kind(j) == Some(TokenKind::Ident) {
                let t = f.sig_text(j).to_owned();
                if !out.contains(&t) {
                    out.push(t);
                }
            }
        }
    }
    out
}

/// `true` for `name()` / `name::<T>()` — a call with an empty argument
/// list, turbofish tolerated.
fn no_arg_call_after(f: &AnalyzedFile, i: usize) -> bool {
    let mut j = i + 1;
    if f.sig_text(j) == ":" && f.sig_text(j + 1) == ":" && f.sig_text(j + 2) == "<" {
        let mut depth = 0i64;
        let mut k = j + 2;
        while k < f.sig.len() {
            match f.sig_text(k) {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        j = k + 1;
    }
    f.sig_text(j) == "(" && f.sig_text(j + 1) == ")"
}

/// The path segment before ident `i`, if `i` is preceded by `Qual::`.
fn path_qualifier(f: &AnalyzedFile, i: usize) -> Option<String> {
    if i >= 3 && f.sig_text(i - 1) == ":" && f.sig_text(i - 2) == ":" {
        let q = f.sig_tok(i - 3)?;
        if matches!(q.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return Some(q.text(&f.src).to_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};
    use super::{parse_registry, ConfEntry};

    // A path no hot_entries.conf line names, so fixture runs see marker
    // entries only (registry entries check against their own files).
    const KERNEL: &str = "crates/core/src/kernel_fixture.rs";

    /// Full perf-mode pipeline (marker-based entries; no registry).
    fn perf(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(path, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, Mode::Perf);
        apply_waivers(raw, &waivers).0
    }

    #[test]
    fn registry_parses_and_files_exist_in_tree() {
        let reg = parse_registry();
        assert!(reg.len() >= 8, "registry lost entries: {reg:?}");
        let root = super::super::workspace_root().expect("workspace root");
        for e in &reg {
            assert!(
                root.join(&e.file).is_file(),
                "hot_entries.conf names a missing file: {}",
                e.file
            );
        }
    }

    #[test]
    fn allocation_in_hot_loop_flags_with_file_line_and_rank() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = Vec::new();
        use_it(v, x);
    }
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "hot-path-alloc");
        assert_eq!(diags[0].file, KERNEL);
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].rank, 1);
    }

    #[test]
    fn depth_propagates_through_the_call_graph_and_ranks_deepest_first() {
        // helper() is called from inside a double loop, so its single-loop
        // allocation ranks at effective depth 3; the caller's own depth-1
        // allocation ranks 1 and sorts after it.
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = vec![0; 4];
        for y in xs {
            helper(x, y);
        }
    }
}
fn helper(a: &u64, b: &u64) {
    for _ in 0..4 {
        let s = format!(\"{a}{b}\");
        drop(s);
    }
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(diags[0].rank, 3, "deepest finding first: {diags:?}");
        assert!(diags[0].message.contains("format!"));
        assert!(diags[0].message.contains("via `kernel`"));
        assert_eq!(diags[1].rank, 1);
    }

    #[test]
    fn straight_line_allocation_in_a_hot_fn_is_fine() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len());
    out.extend(xs.iter().copied());
    out
}
";
        assert!(perf(KERNEL, src).is_empty());
    }

    #[test]
    fn push_without_capacity_flags_but_presized_receiver_is_exempt() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let mut sized = Vec::with_capacity(xs.len());
    let mut unsized_v = Vec::with_capacity(0);
    for &x in xs {
        sized.push(x);
        grown.push(x);
    }
    (sized, unsized_v)
}
";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`grown.push"));
    }

    #[test]
    fn clone_collect_and_hashmap_rules_fire() {
        let src = "\
// xtask: hot
fn kernel(xs: &[Thing]) {
    let m = HashMap::new();
    for x in xs {
        let a = x.clone();
        let b: Vec<u8> = x.bytes().collect();
        sink(a, b, &m);
    }
}
";
        let rules: Vec<_> = perf(KERNEL, src)
            .iter()
            .map(|d| d.message.split('`').nth(1).unwrap_or_default().to_owned())
            .collect();
        assert!(rules.iter().any(|m| m.contains("clone")), "{rules:?}");
        assert!(rules.iter().any(|m| m.contains("collect")), "{rules:?}");
        assert!(rules.iter().any(|m| m.contains("HashMap")), "{rules:?}");
    }

    #[test]
    fn waived_hit_is_suppressed_and_unmarked_code_is_never_scanned() {
        let src = "\
// xtask: hot
fn kernel(xs: &[u64]) {
    for x in xs {
        let v = x.to_vec(); // xtask: allow(hot-path-alloc) — copy is the contract
        drop(v);
    }
}
fn cold(xs: &[u64]) -> Vec<u64> {
    xs.iter().map(|x| x + 1).collect()
}
";
        assert!(perf(KERNEL, src).is_empty());
    }

    #[test]
    fn registry_entry_for_missing_fn_is_an_error() {
        let f = AnalyzedFile::build(KERNEL, "fn present() {}\n");
        let files = [f];
        let registry = [ConfEntry {
            file: KERNEL.to_owned(),
            name: "vanished".to_owned(),
            line: 7,
        }];
        let diags = super::check_with_registry(&files, &registry);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/xtask/hot_entries.conf");
        assert_eq!(diags[0].line, 7);
        assert!(diags[0].message.contains("vanished"));
    }

    #[test]
    fn dangling_hot_marker_is_an_error() {
        let src = "// xtask: hot\nconst N: usize = 4;\n\n\n\nfn far_away() {}\n";
        let diags = perf(KERNEL, src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("dangling"));
    }
}
