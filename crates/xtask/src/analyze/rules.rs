//! The three path/ident legacy rules from PR 1, re-expressed on the token
//! backend (`seeded-rng`, `no-std-mutex`, `no-thread-spawn`). The fourth
//! PR-1 rule, `no-unwrap`, lives in [`super::panics`] next to the
//! reachability checks that supersede its substring implementation.
//!
//! Working on tokens instead of sanitized lines makes the rules exact by
//! construction: comments and string literals are separate token kinds, so
//! a banned name inside either can never flag, and a path like
//! `std::sync::Mutex` is matched as the token sequence
//! `std` `::` `sync` `::` `Mutex` rather than a substring.

use super::{is_pool, AnalyzedFile, Diagnostic};
use crate::lexer::TokenKind;

const RNG_HELP: &str = "construct RNGs from an explicit u64 seed via \
                        skymr_datagen's seeding API; unseeded randomness breaks \
                        run-to-run determinism";
const MUTEX_HELP: &str = "the workspace locking standard is parking_lot";
const SPAWN_HELP: &str = "all parallelism goes through skymr_mapreduce::pool, the \
                          single audited spawn site";

/// Runs the three rules over one file.
pub fn check_file(f: &AnalyzedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for i in 0..f.sig.len() {
        if f.sig_kind(i) != Some(TokenKind::Ident) {
            continue;
        }
        let line = f.sig_tok(i).map_or(0, |t| t.line);
        let diag = |rule, pattern: &str, help: &str| Diagnostic {
            file: f.path.clone(),
            line,
            rule,
            rank: 0,
            message: format!("`{pattern}` — {help}"),
        };
        match f.sig_text(i) {
            // seeded-rng: unseeded construction names, banned everywhere
            // (tests included — reproducibility is the whole point).
            name @ ("thread_rng" | "from_entropy" | "OsRng") => {
                out.push(diag("seeded-rng", name, RNG_HELP));
            }
            "random" if path_qualifier(f, i).as_deref() == Some("rand") => {
                out.push(diag("seeded-rng", "rand::random", RNG_HELP));
            }
            // no-std-mutex: `std::sync::Mutex`/`RwLock`, either as a full
            // path or via a grouped import `use std::sync::{Arc, Mutex}`.
            "std" if is_path_seq(f, i, &["std", "sync"]) => {
                // Cursor is on `std`; `std : : sync : :` is six significant
                // tokens, so the segment after `sync::` starts at i + 6.
                let after = i + 6;
                match f.sig_text(after) {
                    "Mutex" => out.push(diag("no-std-mutex", "std::sync::Mutex", MUTEX_HELP)),
                    "RwLock" => out.push(diag("no-std-mutex", "std::sync::RwLock", MUTEX_HELP)),
                    "{" => {
                        let end = f.sig_balanced_end(after, "{", "}");
                        for j in after..end {
                            let seg = f.sig_text(j);
                            if seg == "Mutex" || seg == "RwLock" {
                                let pat = if seg == "Mutex" {
                                    "std::sync::Mutex"
                                } else {
                                    "std::sync::RwLock"
                                };
                                out.push(Diagnostic {
                                    file: f.path.clone(),
                                    line: f.sig_tok(j).map_or(line, |t| t.line),
                                    rule: "no-std-mutex",
                                    rank: 0,
                                    message: format!("`{pat}` — {MUTEX_HELP}"),
                                });
                            }
                        }
                    }
                    _ => {}
                }
            }
            // no-thread-spawn: `thread::spawn` outside the pool.
            "thread"
                if !is_pool(&f.path)
                    && is_path_seq(f, i, &["thread"])
                    && f.sig_text(i + 3) == "spawn" =>
            {
                out.push(diag("no-thread-spawn", "thread::spawn", SPAWN_HELP));
            }
            _ => {}
        }
    }
    out
}

/// `true` if significant tokens starting at `i` spell the `::`-separated
/// path `segs[0]::segs[1]::…::` (with a trailing `::`).
fn is_path_seq(f: &AnalyzedFile, i: usize, segs: &[&str]) -> bool {
    let mut at = i;
    for seg in segs {
        if f.sig_text(at) != *seg || f.sig_text(at + 1) != ":" || f.sig_text(at + 2) != ":" {
            return false;
        }
        at += 3;
    }
    true
}

/// The path segment before ident `i`, if `i` is preceded by `Qual::`.
fn path_qualifier(f: &AnalyzedFile, i: usize) -> Option<String> {
    if i >= 3 && f.sig_text(i - 1) == ":" && f.sig_text(i - 2) == ":" {
        let q = f.sig_tok(i - 3)?;
        if matches!(q.kind, TokenKind::Ident | TokenKind::RawIdent) {
            return Some(q.text(&f.src).to_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::super::{apply_waivers, collect_waivers, raw_diagnostics, AnalyzedFile, Mode};

    const ENGINE: &str = "crates/mapreduce/src/job.rs";
    const OTHER: &str = "crates/datagen/src/lib.rs";

    /// Full lint-mode pipeline on one fixture: legacy rules + waivers.
    fn lint(path: &str, src: &str) -> Vec<super::super::Diagnostic> {
        let f = AnalyzedFile::build(path, src);
        let waivers = collect_waivers(&f);
        let files = [f];
        let raw = raw_diagnostics(&files, Mode::Lint);
        apply_waivers(raw, &waivers).0
    }

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn flags_unseeded_rng_everywhere_even_in_tests() {
        for src in [
            "let mut rng = rand::thread_rng();\n",
            "let rng = StdRng::from_entropy();\n",
            "let x: f64 = rand::random();\n",
            "use rand::rngs::OsRng;\n",
        ] {
            assert_eq!(rules_hit(OTHER, src), ["seeded-rng"], "{src}");
        }
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { rand::thread_rng(); }\n}\n";
        assert_eq!(rules_hit(OTHER, src), ["seeded-rng"]);
    }

    #[test]
    fn plain_random_ident_without_rand_qualifier_is_fine() {
        // The old substring rule could not make this distinction cheaply.
        assert!(lint(OTHER, "fn pick(random: u32) -> u32 { random }\n").is_empty());
        assert!(lint(OTHER, "let x = dist.random_in(lo, hi);\n").is_empty());
    }

    #[test]
    fn flags_std_mutex_including_grouped_imports() {
        assert_eq!(
            rules_hit(OTHER, "let m = std::sync::Mutex::new(0);\n"),
            ["no-std-mutex"]
        );
        assert_eq!(
            rules_hit(OTHER, "use std::sync::{Arc, Mutex};\n"),
            ["no-std-mutex"]
        );
        assert_eq!(
            rules_hit(OTHER, "use std::sync::RwLock;\n"),
            ["no-std-mutex"]
        );
        assert!(lint(OTHER, "use std::sync::Arc;\n").is_empty());
        assert!(lint(OTHER, "use parking_lot::Mutex;\n").is_empty());
    }

    #[test]
    fn flags_thread_spawn_outside_the_pool_only() {
        let src = "let h = std::thread::spawn(|| {});\n";
        assert_eq!(rules_hit(OTHER, src), ["no-thread-spawn"]);
        assert_eq!(rules_hit(ENGINE, src), ["no-thread-spawn"]);
        assert!(lint("crates/mapreduce/src/pool.rs", src).is_empty());
    }

    #[test]
    fn comments_and_string_literals_do_not_flag() {
        let src = "\
// call .unwrap() here? never.
/// let x = maybe.unwrap();
/* thread_rng() in a block comment
   spanning lines with std::sync::Mutex */
let s = \".unwrap() thread_rng std::sync::Mutex thread::spawn\";
let r = r#\"from_entropy()\"#;
let c = '\"'; let after = \"thread_rng\";
";
        assert!(lint(ENGINE, src).is_empty(), "{:?}", lint(ENGINE, src));
    }

    #[test]
    fn waiver_comment_suppresses_only_the_named_rule() {
        let src = "let r = rand::thread_rng(); // xtask: allow(seeded-rng)\n";
        assert!(lint(OTHER, src).is_empty());
        let src = "let r = rand::thread_rng(); // xtask: allow(no-std-mutex)\n";
        assert_eq!(rules_hit(OTHER, src), ["seeded-rng"]);
    }

    #[test]
    fn diagnostics_render_with_file_line_and_rule() {
        let d = lint(OTHER, "rand::thread_rng();\n").remove(0);
        assert!(d
            .to_string()
            .starts_with("crates/datagen/src/lib.rs:1: [seeded-rng]"));
    }
}
