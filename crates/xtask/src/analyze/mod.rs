//! The token-aware static analysis framework behind `cargo xtask analyze`
//! (and the legacy-rule subset behind `cargo xtask lint`).
//!
//! Architecture: every workspace `.rs` file is lexed once
//! ([`crate::lexer`]) and parsed once ([`crate::parse`]) into an
//! [`AnalyzedFile`]; rule passes then run over those shared artifacts:
//!
//! * [`rules`] — three of PR 1's four line-based rules (`seeded-rng`,
//!   `no-std-mutex`, `no-thread-spawn`), re-expressed on the token
//!   backend. The fourth, `no-unwrap`, lives in [`panics`] beside the
//!   reachability checks that supersede its substring implementation.
//! * [`udf`] — `udf-determinism`: purity checks inside mapper/reducer/
//!   combiner/factory bodies and closures passed to combiner builders.
//! * [`panics`] — `no-unwrap` (crate-wide unwrap-family ban in engine
//!   code) and `panic-reachability` (suspicious indexing/slicing and
//!   division in functions reachable from UDF entry points via the
//!   intra-crate call graph).
//! * [`rng`] — `seeded-rng-dataflow`: every RNG construction must trace
//!   to an explicit seed root (a literal seed or a `seed`/`*_seed`
//!   parameter plumbed down the call graph).
//! * [`perf`] — `hot-path-alloc` (`cargo xtask perf`): allocation, clone,
//!   unsized-push, and hash-map findings in fns reachable from the hot
//!   entry registry, ranked by effective loop depth.
//! * [`locks`] — `lock-discipline` (`cargo xtask perf`): parking_lot
//!   guards held across pool dispatch, channel ops, or other lock
//!   acquisitions, plus lock-order cycle detection.
//! * [`flow`] — `clock-discipline`, `ambient-io`, `float-ord`
//!   (`cargo xtask flow`): taint-style dataflow rules on the resolved
//!   graph — wall-clock values must stay advisory, UDF-reachable code
//!   must not do ambient I/O, and float comparators must be total.
//!
//! A diagnostic can be waived for one audited line with a trailing
//! `// xtask: allow(<rule>)` comment (several rules comma-separated).
//! Waivers are themselves checked: `cargo xtask lint
//! --list-stale-waivers` reports waivers whose line no longer triggers
//! the waived rule, so audited exceptions cannot rot silently.

pub mod flow;
pub mod locks;
pub mod panics;
pub mod perf;
pub mod resolve;
pub mod rng;
pub mod rules;
pub mod udf;

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::lexer::{lex, Token, TokenKind};
use crate::parse::{parse, FileModel};

// ---------------------------------------------------------------------
// Diagnostics.
// ---------------------------------------------------------------------

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `udf-determinism`.
    pub rule: &'static str,
    /// Severity rank; perf findings carry their effective loop depth so
    /// the deepest-nested problem sorts first. 0 for every other rule.
    pub rank: u32,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Output rendering for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// `file:line: [rule] message` lines plus a summary (the default).
    #[default]
    Text,
    /// A machine-readable JSON array of diagnostic objects.
    Json,
    /// GitHub Actions workflow commands (`::error file=…,line=…::…`)
    /// so diagnostics land as inline PR annotations.
    Github,
}

impl Format {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "text" => Some(Self::Text),
            "json" => Some(Self::Json),
            "github" => Some(Self::Github),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Analyzed files.
// ---------------------------------------------------------------------

/// One source file with its lexed and parsed artifacts, shared by all
/// passes.
#[derive(Debug)]
pub struct AnalyzedFile {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// The raw source text.
    pub src: String,
    /// Lossless token stream.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    /// Items, impls, test regions, call sites.
    pub model: FileModel,
}

impl AnalyzedFile {
    /// Lexes and parses `src`.
    pub fn build(path: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let tokens = lex(&src);
        let sig = (0..tokens.len())
            .filter(|&i| !tokens[i].is_trivia())
            .collect();
        let model = parse(&src, &tokens);
        Self {
            path: path.into(),
            src,
            tokens,
            sig,
            model,
        }
    }

    /// Text of the `i`-th significant token, or `""` past the end.
    pub fn sig_text(&self, i: usize) -> &str {
        self.sig
            .get(i)
            .map_or("", |&j| self.tokens[j].text(&self.src))
    }

    /// Kind of the `i`-th significant token.
    pub fn sig_kind(&self, i: usize) -> Option<TokenKind> {
        self.sig.get(i).map(|&j| self.tokens[j].kind)
    }

    /// The `i`-th significant token itself.
    pub fn sig_tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&j| &self.tokens[j])
    }

    /// Significant-token index range `[start, end)` covering the raw token
    /// range `body` (as stored in [`crate::parse::FnInfo::body`]).
    pub fn sig_range(&self, body: (usize, usize)) -> (usize, usize) {
        let start = self.sig.partition_point(|&j| j < body.0);
        let end = self.sig.partition_point(|&j| j <= body.1);
        (start, end)
    }

    /// Given the significant index of an opening delimiter, returns the
    /// significant index one past its matching closer.
    pub fn sig_balanced_end(&self, open_at: usize, open: &str, close: &str) -> usize {
        let mut depth = 0i64;
        let mut i = open_at;
        while i < self.sig.len() {
            let t = self.sig_text(i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }
}

// ---------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------

/// One `// xtask: allow(rule)` waiver for one rule on one line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line the waiver comment sits on (and waives).
    pub line: usize,
    /// The waived rule name.
    pub rule: String,
}

/// Extracts waivers from a file's comment tokens. Only real comments
/// count — a waiver spelled inside a string literal is inert, which the
/// old line-based checker could not guarantee.
pub fn collect_waivers(file: &AnalyzedFile) -> Vec<Waiver> {
    const NEEDLE: &str = "xtask: allow(";
    let mut out = Vec::new();
    for t in &file.tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(&file.src);
        let Some(at) = text.find(NEEDLE) else {
            continue;
        };
        let rest = &text[at + NEEDLE.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(Waiver {
                    file: file.path.clone(),
                    line: t.line,
                    rule: rule.to_owned(),
                });
            }
        }
    }
    out
}

/// Splits raw diagnostics into (active, waived) under `waivers`.
pub fn apply_waivers(
    raw: Vec<Diagnostic>,
    waivers: &[Waiver],
) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
    raw.into_iter().partition(|d| {
        !waivers
            .iter()
            .any(|w| w.file == d.file && w.line == d.line && w.rule == d.rule)
    })
}

/// Waivers that no raw diagnostic matches — audited exceptions whose
/// justification has expired.
pub fn stale_waivers(waivers: &[Waiver], raw: &[Diagnostic]) -> Vec<Waiver> {
    waivers
        .iter()
        .filter(|w| {
            !raw.iter()
                .any(|d| d.file == w.file && d.line == w.line && d.rule == w.rule)
        })
        .cloned()
        .collect()
}

// ---------------------------------------------------------------------
// Rule scoping helpers shared by the passes.
// ---------------------------------------------------------------------

/// Trait names whose impl blocks are user-defined functions under the
/// MapReduce contract: their bodies must be pure, deterministic functions
/// of their input.
pub const UDF_TRAITS: &[&str] = &[
    "MapTask",
    "ReduceTask",
    "Combiner",
    "MapFactory",
    "ReduceFactory",
];

/// `true` for non-test sources of the two engine crates.
pub fn in_engine_crates(path: &str) -> bool {
    path.starts_with("crates/mapreduce/src/") || path.starts_with("crates/core/src/")
}

/// The single audited spawn site.
pub fn is_pool(path: &str) -> bool {
    path == "crates/mapreduce/src/pool.rs"
}

// ---------------------------------------------------------------------
// Pass orchestration.
// ---------------------------------------------------------------------

/// Which rule set to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The four PR-1 rules only (`cargo xtask lint`).
    Lint,
    /// Everything: legacy rules plus the three analysis passes
    /// (`cargo xtask analyze`).
    Analyze,
    /// The performance linter: `hot-path-alloc` and `lock-discipline`
    /// (`cargo xtask perf`).
    Perf,
    /// The dataflow linter: `clock-discipline`, `ambient-io`, and
    /// `float-ord` (`cargo xtask flow`).
    Flow,
}

/// Runs the selected passes over `files`, returning raw (pre-waiver)
/// diagnostics sorted by rank (deepest first), then file, line, rule.
/// Non-perf rules all rank 0, so lint/analyze ordering is unchanged.
pub fn raw_diagnostics(files: &[AnalyzedFile], mode: Mode) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // One resolved symbol graph, shared by every graph pass of the mode.
    let ws = resolve::Workspace::build(files);
    match mode {
        Mode::Lint | Mode::Analyze => {
            for f in files {
                out.extend(rules::check_file(f));
                out.extend(panics::check_unwrap_family(f));
                if mode == Mode::Analyze {
                    out.extend(udf::check_file(f));
                }
            }
            if mode == Mode::Analyze {
                out.extend(panics::check_reachability(&ws));
                out.extend(rng::check_dataflow(&ws));
            }
        }
        Mode::Perf => {
            out.extend(perf::check(&ws));
            out.extend(locks::check(&ws));
        }
        Mode::Flow => {
            out.extend(flow::check(&ws));
        }
    }
    out.sort_by(|a, b| {
        b.rank.cmp(&a.rank).then_with(|| {
            (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
        })
    });
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

/// Directories never scanned (vendored stand-ins, build output, VCS), plus
/// this crate itself: its rule tables necessarily spell out every banned
/// pattern, and its behavior is covered by unit tests instead.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".claude"];
const SKIP_PREFIXES: &[&str] = &["crates/xtask"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref())
                || SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p))
            {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if rel_str.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p))
        {
            out.push(path);
        }
    }
}

pub(crate) fn workspace_root() -> Option<PathBuf> {
    // crates/xtask -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()?
        .parent()
        .map(Path::to_path_buf)
}

/// Loads and analyzes every workspace source file.
fn load_workspace() -> Option<Vec<AnalyzedFile>> {
    let root = workspace_root()?;
    let mut paths = Vec::new();
    collect_rs_files(&root, &root, &mut paths);
    paths.sort();
    let mut files = Vec::new();
    for p in &paths {
        let Ok(src) = std::fs::read_to_string(p) else {
            continue;
        };
        let rel = p
            .strip_prefix(&root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(AnalyzedFile::build(rel, src));
    }
    Some(files)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(diags: &[Diagnostic], format: Format, task: &str, files_scanned: usize) {
    match format {
        Format::Text => {
            for d in diags {
                println!("{d}");
            }
            if diags.is_empty() {
                println!("xtask {task}: OK ({files_scanned} files scanned)");
            } else {
                println!(
                    "xtask {task}: {} violation(s) across {files_scanned} file(s) scanned",
                    diags.len()
                );
            }
        }
        Format::Json => {
            let mut out = String::from("[");
            for (i, d) in diags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"rank\":{},\"message\":\"{}\"}}",
                    json_escape(&d.file),
                    d.line,
                    json_escape(d.rule),
                    d.rank,
                    json_escape(&d.message)
                ));
            }
            out.push(']');
            println!("{out}");
        }
        Format::Github => {
            for d in diags {
                // Workflow commands take properties before `::` and the
                // message after; messages here are single-line by
                // construction so no %0A escaping is needed.
                println!(
                    "::error file={},line={}::[{}] {}",
                    d.file, d.line, d.rule, d.message
                );
            }
            if diags.is_empty() {
                println!("::notice::xtask {task}: OK ({files_scanned} files scanned)");
            }
        }
    }
}

/// Parsed command-line options for `lint` / `analyze`.
#[derive(Debug, Default)]
pub struct Options {
    format: Format,
    list_stale_waivers: bool,
}

impl Options {
    /// Parses trailing CLI arguments; returns `Err` with a message for
    /// unknown flags or a bad `--format` value.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--list-stale-waivers" => opts.list_stale_waivers = true,
                "--format" => {
                    let v = it.next().ok_or("--format needs a value")?;
                    opts.format = Format::parse(v)
                        .ok_or_else(|| format!("unknown format `{v}` (text|json|github)"))?;
                }
                other => {
                    if let Some(v) = other.strip_prefix("--format=") {
                        opts.format = Format::parse(v)
                            .ok_or_else(|| format!("unknown format `{v}` (text|json|github)"))?;
                    } else {
                        return Err(format!("unknown option `{other}`"));
                    }
                }
            }
        }
        Ok(opts)
    }
}

/// Entry point for `cargo xtask lint` and `cargo xtask analyze`.
pub fn run(mode: Mode, opts: &Options) -> ExitCode {
    let Some(files) = load_workspace() else {
        eprintln!("xtask: cannot locate the workspace root");
        return ExitCode::from(2);
    };
    let task = match mode {
        Mode::Lint => "lint",
        Mode::Analyze => "analyze",
        Mode::Perf => "perf",
        Mode::Flow => "flow",
    };
    let waivers: Vec<Waiver> = files.iter().flat_map(collect_waivers).collect();

    if opts.list_stale_waivers {
        // Staleness is judged against the FULL rule set: a waiver for an
        // analyze-only or perf-only rule is not stale just because `lint`
        // runs fewer passes.
        let mut raw = raw_diagnostics(&files, Mode::Analyze);
        raw.extend(raw_diagnostics(&files, Mode::Perf));
        raw.extend(raw_diagnostics(&files, Mode::Flow));
        let stale = stale_waivers(&waivers, &raw);
        for w in &stale {
            println!(
                "{}:{}: stale waiver: this line no longer triggers `{}`",
                w.file, w.line, w.rule
            );
        }
        return if stale.is_empty() {
            println!(
                "xtask {task}: no stale waivers ({} waiver(s) in tree)",
                waivers.len()
            );
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let raw = raw_diagnostics(&files, mode);
    let (active, _waived) = apply_waivers(raw, &waivers);
    render(&active, opts.format, task, files.len());
    if active.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> AnalyzedFile {
        AnalyzedFile::build(path, src)
    }

    #[test]
    fn waivers_only_in_real_comments() {
        let f = file(
            "crates/core/src/x.rs",
            "let a = 1; // xtask: allow(no-unwrap)\nlet s = \"xtask: allow(seeded-rng)\";\n",
        );
        let ws = collect_waivers(&f);
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].rule, "no-unwrap");
        assert_eq!(ws[0].line, 1);
    }

    #[test]
    fn comma_separated_waivers() {
        let f = file(
            "a.rs",
            "x; // xtask: allow(panic-reachability, udf-determinism)\n",
        );
        let ws = collect_waivers(&f);
        assert_eq!(
            ws.iter().map(|w| w.rule.as_str()).collect::<Vec<_>>(),
            ["panic-reachability", "udf-determinism"]
        );
    }

    #[test]
    fn apply_and_stale_waivers() {
        let d = |line| Diagnostic {
            file: "a.rs".into(),
            line,
            rule: "no-unwrap",
            rank: 0,
            message: "m".into(),
        };
        let w = |line, rule: &str| Waiver {
            file: "a.rs".into(),
            line,
            rule: rule.into(),
        };
        let raw = vec![d(1), d(2)];
        let waivers = vec![w(1, "no-unwrap"), w(2, "seeded-rng"), w(9, "no-unwrap")];
        let (active, waived) = apply_waivers(raw.clone(), &waivers);
        assert_eq!(active.len(), 1, "only the matching waiver suppresses");
        assert_eq!(active[0].line, 2);
        assert_eq!(waived.len(), 1);
        let stale = stale_waivers(&waivers, &raw);
        assert_eq!(
            stale
                .iter()
                .map(|w| (w.line, w.rule.as_str()))
                .collect::<Vec<_>>(),
            [(2, "seeded-rng"), (9, "no-unwrap")]
        );
    }

    #[test]
    fn options_parse_formats_and_flags() {
        let o = Options::parse(&["--format".into(), "json".into()]).expect("parses");
        assert_eq!(o.format, Format::Json);
        let o = Options::parse(&["--format=github".into(), "--list-stale-waivers".into()])
            .expect("parses");
        assert_eq!(o.format, Format::Github);
        assert!(o.list_stale_waivers);
        assert!(Options::parse(&["--format".into(), "yaml".into()]).is_err());
        assert!(Options::parse(&["--bogus".into()]).is_err());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn whole_workspace_is_clean_under_analyze() {
        // The acceptance gate: `cargo xtask analyze` exits 0 on this tree.
        let files = load_workspace().expect("workspace root");
        assert!(!files.is_empty());
        let waivers: Vec<Waiver> = files.iter().flat_map(collect_waivers).collect();
        let raw = raw_diagnostics(&files, Mode::Analyze);
        let (active, _) = apply_waivers(raw.clone(), &waivers);
        assert!(
            active.is_empty(),
            "workspace has active violations:\n{}",
            active
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
        // Staleness is judged against the full rule set, like the CLI.
        let mut full = raw;
        full.extend(raw_diagnostics(&files, Mode::Perf));
        full.extend(raw_diagnostics(&files, Mode::Flow));
        let stale = stale_waivers(&waivers, &full);
        assert!(stale.is_empty(), "stale waivers in tree: {stale:?}");
    }

    #[test]
    fn whole_workspace_is_clean_under_perf() {
        // The acceptance gate: `cargo xtask perf` exits 0 on this tree —
        // hot kernels stay allocation-free (or carry audited waivers) and
        // the lock graph stays acyclic.
        let files = load_workspace().expect("workspace root");
        let waivers: Vec<Waiver> = files.iter().flat_map(collect_waivers).collect();
        let raw = raw_diagnostics(&files, Mode::Perf);
        let (active, _) = apply_waivers(raw, &waivers);
        assert!(
            active.is_empty(),
            "workspace has active perf violations:\n{}",
            active
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
