//! Workspace-wide name resolution: the resolved symbol graph behind every
//! graph pass.
//!
//! The PR-1..6 passes resolved calls by bare name inside one crate, which
//! forced a std-prelude method denylist (a workspace full of MapReduce
//! UDFs literally named `map` would otherwise alias every
//! `window.into_iter().map(…)`) and stopped reachability at crate edges.
//! This module replaces that with real — if lightweight — resolution:
//!
//! 1. **Module tree**: each file's position (`crates/<dir>/src/…`, with
//!    `lib.rs`/`main.rs` as the crate root, `foo.rs`/`foo/mod.rs` as
//!    module `foo`) plus the inline `mod` path recorded by the parser
//!    gives every item a `(crate, module-path)` address. Harness files
//!    (`tests/`, `benches/`, `examples/`, `src/bin/`) are their own leaf
//!    crates, exactly as cargo compiles them.
//! 2. **`use` resolution**: per-file use-maps (alias → absolute path,
//!    groups flattened, `as` aliases honored, `crate`/`self`/`super`
//!    prefixes folded against the file's own address) resolve imported
//!    free fns and de-alias imported type names.
//! 3. **Receiver typing**: method calls resolve only when the receiver's
//!    type is statically evident — `self` (the impl's self type),
//!    `self.field` (struct field types), a typed parameter, or a local
//!    `let x: T = …` / `let x = T::new(…)` / `let x = T { … }` binding.
//!    An unknown receiver produces **no edge**: `.map(…)` on an iterator
//!    chain can never alias a MapReduce `map` UDF, soundly replacing the
//!    old denylist.
//!
//! The product is [`Workspace`]: one node per `fn`, resolved call edges
//! `(call-index, callee)` per node, and the inverse caller adjacency —
//! shared by `hot-path-alloc`, `panic-reachability`,
//! `seeded-rng-dataflow`, `lock-discipline`, and the `cargo xtask flow`
//! taint passes. Free calls fall back conservatively: enclosing-module
//! scope, then the use-map, then a same-crate match, then a
//! workspace-unique match; anything still ambiguous resolves to nothing
//! rather than to everything.

use std::collections::BTreeMap;

use super::{AnalyzedFile, UDF_TRAITS};
use crate::lexer::TokenKind;
use crate::parse::FnInfo;

/// Index into [`Workspace::nodes`].
pub type NodeId = usize;

/// One `fn` in the workspace graph.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    /// Index into the file list the workspace was built from.
    pub file: usize,
    /// Index into that file's [`crate::parse::FileModel::fns`].
    pub func: usize,
}

/// The resolved symbol graph over one file set.
pub struct Workspace<'a> {
    files: &'a [AnalyzedFile],
    /// Every fn (test fns and bodiless decls included; passes filter).
    pub nodes: Vec<Node>,
    /// Resolved call edges per node: `(index into FnInfo::calls, callee)`.
    edges: Vec<Vec<(usize, NodeId)>>,
    /// Inverse adjacency: callers of each node.
    callers: Vec<Vec<NodeId>>,
    /// `(crate key, module path)` per file.
    file_addr: Vec<(String, Vec<String>)>,
}

/// The import ident each `crates/<dir>` crate is linked under. The core
/// crate's package is plain `skymr`; everything else is `skymr-<dir>`.
fn crate_key(dir: &str) -> String {
    match dir {
        "core" => "skymr".to_owned(),
        other => format!("skymr_{}", other.replace('-', "_")),
    }
}

/// `(crate key, module path)` of a workspace-relative file path.
///
/// Harness files — integration tests, benches, examples, `src/bin` —
/// compile as their own root crates, keyed by path so they never collide.
pub fn file_address(path: &str) -> (String, Vec<String>) {
    let segs: Vec<&str> = path.split('/').collect();
    let module_of = |rest: &[&str]| -> Vec<String> {
        let mut module: Vec<String> = rest
            .iter()
            .map(|s| s.trim_end_matches(".rs").to_owned())
            .collect();
        if module.last().is_some_and(|m| m == "mod") {
            module.pop();
        }
        module
    };
    if segs.len() >= 4 && segs[0] == "crates" && segs[2] == "src" {
        let rest = &segs[3..];
        if rest == ["lib.rs"] || rest == ["main.rs"] {
            return (crate_key(segs[1]), Vec::new());
        }
        if rest[0] == "bin" {
            return (format!("bin:{path}"), Vec::new());
        }
        return (crate_key(segs[1]), module_of(rest));
    }
    if segs.len() >= 4 && segs[0] == "crates" && matches!(segs[2], "tests" | "benches" | "examples")
    {
        return (format!("harness:{path}"), Vec::new());
    }
    if segs.len() == 2 && matches!(segs[0], "tests" | "examples") {
        return (format!("harness:{path}"), Vec::new());
    }
    (format!("file:{path}"), Vec::new())
}

/// `true` for files cargo compiles as test/bench/example harnesses (their
/// UDF impls are fixtures, not engine entry points).
pub fn is_harness_path(path: &str) -> bool {
    path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/src/bin/")
}

impl<'a> Workspace<'a> {
    /// Builds the resolved graph over `files`.
    pub fn build(files: &'a [AnalyzedFile]) -> Self {
        let file_addr: Vec<(String, Vec<String>)> =
            files.iter().map(|f| file_address(&f.path)).collect();

        // Flatten fns to nodes.
        let mut nodes = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            for gi in 0..f.model.fns.len() {
                nodes.push(Node { file: fi, func: gi });
            }
        }

        let mut ws = Self {
            files,
            nodes,
            edges: Vec::new(),
            callers: Vec::new(),
            file_addr,
        };
        let index = SymbolIndex::build(&ws);
        ws.edges = ws
            .nodes
            .iter()
            .enumerate()
            .map(|(id, _)| ws.resolve_node(id, &index))
            .collect();
        ws.callers = vec![Vec::new(); ws.nodes.len()];
        for (id, edges) in ws.edges.iter().enumerate() {
            for &(_, callee) in edges {
                ws.callers[callee].push(id);
            }
        }
        for c in &mut ws.callers {
            c.dedup();
        }
        ws
    }

    /// The file set the graph was built from.
    pub fn files(&self) -> &'a [AnalyzedFile] {
        self.files
    }

    /// The file a node lives in.
    pub fn file_of(&self, id: NodeId) -> &'a AnalyzedFile {
        &self.files[self.nodes[id].file]
    }

    /// The node's parsed fn.
    pub fn fn_info(&self, id: NodeId) -> &'a FnInfo {
        let n = self.nodes[id];
        &self.files[n.file].model.fns[n.func]
    }

    /// Resolved `(call index, callee)` edges of a node.
    pub fn callees(&self, id: NodeId) -> &[(usize, NodeId)] {
        &self.edges[id]
    }

    /// Nodes with a resolved call into `id`.
    pub fn callers(&self, id: NodeId) -> &[NodeId] {
        &self.callers[id]
    }

    /// Crate key of a node's file.
    pub fn crate_of(&self, id: NodeId) -> &str {
        &self.file_addr[self.nodes[id].file].0
    }

    /// The impl self type a node's fn is defined on, if any.
    pub fn self_ty(&self, id: NodeId) -> Option<&'a str> {
        let n = self.nodes[id];
        let f = &self.files[n.file];
        f.model.fns[n.func]
            .impl_idx
            .map(|ii| f.model.impls[ii].self_ty.as_str())
    }

    /// `true` when the node's fn is defined in an `impl <UDF trait> for …`
    /// block — a mapper/reducer/combiner/factory body.
    pub fn is_udf_impl(&self, id: NodeId) -> bool {
        let n = self.nodes[id];
        let f = &self.files[n.file];
        f.model.fns[n.func]
            .impl_idx
            .and_then(|ii| f.model.impls[ii].trait_name.as_deref())
            .is_some_and(|t| UDF_TRAITS.contains(&t))
    }

    /// Full module path of a node: file address + inline `mod` path.
    fn module_of(&self, id: NodeId) -> Vec<String> {
        let n = self.nodes[id];
        let mut m = self.file_addr[n.file].1.clone();
        m.extend(self.fn_info(id).module.iter().cloned());
        m
    }

    /// Resolves a path written in `file`'s module `module` (as it appears
    /// in a `use` or qualifier) to an absolute `(crate, module path)`,
    /// with the final segment still attached. `None` for external crates.
    fn resolve_path_abs(
        &self,
        file: usize,
        module: &[String],
        path: &[String],
    ) -> Option<(String, Vec<String>)> {
        let (krate, _) = &self.file_addr[file];
        let mut segs = path.to_vec();
        if segs.is_empty() {
            return None;
        }
        match segs[0].as_str() {
            "crate" => Some((krate.clone(), segs.split_off(1))),
            "self" => {
                let mut m = module.to_vec();
                m.extend(segs.split_off(1));
                Some((krate.clone(), m))
            }
            "super" => {
                let mut m = module.to_vec();
                let mut k = 0;
                while segs.get(k).is_some_and(|s| s == "super") {
                    m.pop()?;
                    k += 1;
                }
                m.extend(segs.split_off(k));
                Some((krate.clone(), m))
            }
            first if self.file_addr.iter().any(|(c, _)| c == first) => {
                Some((first.to_owned(), segs.split_off(1)))
            }
            _ => None, // std / external: not ours to resolve
        }
    }

    /// The use declarations visible from `module` in `file`: file-root
    /// uses plus those of every enclosing inline mod.
    fn uses_in_scope(
        &self,
        file: usize,
        module: &[String],
    ) -> impl Iterator<Item = &crate::parse::UseDecl> {
        let file_mod_len = self.file_addr[file].1.len();
        let inline: Vec<String> = module.iter().skip(file_mod_len).cloned().collect();
        self.files[file]
            .model
            .uses
            .iter()
            .filter(move |u| inline.starts_with(&u.module))
    }

    /// De-aliases a type name through the file's use map (`use x::Foo as
    /// Bar` makes `Bar` mean `Foo`); identity when not aliased.
    fn dealias_type(&self, file: usize, module: &[String], name: &str) -> String {
        for u in self.uses_in_scope(file, module) {
            if !u.is_glob && u.alias == name {
                if let Some(last) = u.path.last() {
                    if last != name {
                        return last.clone();
                    }
                }
            }
        }
        name.to_owned()
    }

    /// Resolves every call of node `id` against the symbol index.
    fn resolve_node(&self, id: NodeId, index: &SymbolIndex) -> Vec<(usize, NodeId)> {
        let n = self.nodes[id];
        let f = &self.files[n.file];
        let g = &f.model.fns[n.func];
        if g.body.is_none() {
            return Vec::new();
        }
        let module = self.module_of(id);
        let krate = self.file_addr[n.file].0.clone();
        let mut out = Vec::new();
        for (ci, call) in g.calls.iter().enumerate() {
            if call.is_macro {
                continue;
            }
            let targets = if call.is_method {
                match self.receiver_type(id, call) {
                    Some(ty) => {
                        let ty = self.dealias_type(n.file, &module, &ty);
                        index.methods(&ty, &call.name)
                    }
                    None => Vec::new(), // unknown receiver: no edge, by design
                }
            } else if let Some(q) = &call.qualifier {
                self.resolve_qualified(id, &krate, &module, q, &call.name, index)
            } else {
                self.resolve_free(n.file, &krate, &module, &call.name, index)
            };
            for t in targets {
                if t != id {
                    out.push((ci, t));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resolves a `Qual::name(…)` call.
    fn resolve_qualified(
        &self,
        id: NodeId,
        krate: &str,
        module: &[String],
        qual: &str,
        name: &str,
        index: &SymbolIndex,
    ) -> Vec<NodeId> {
        let file = self.nodes[id].file;
        // `Self::name` and `Type::name`: associated fns via the impl index.
        if qual == "Self" {
            return match self.self_ty(id) {
                Some(ty) => index.methods(ty, name),
                None => Vec::new(),
            };
        }
        if qual.chars().next().is_some_and(char::is_uppercase) {
            let ty = self.dealias_type(file, module, qual);
            return index.methods(&ty, name);
        }
        // Module qualifiers.
        let by_path = |krate: &str, module: &[String]| index.free(krate, module, name);
        match qual {
            "crate" => return by_path(krate, &[]),
            "self" => return by_path(krate, module),
            "super" => {
                let mut m = module.to_vec();
                m.pop();
                return by_path(krate, &m);
            }
            _ => {}
        }
        // An imported module alias: `use skymr_common::dominance;` then
        // `dominance::dominates(…)`.
        for u in self.uses_in_scope(file, module) {
            if !u.is_glob && u.alias == qual {
                if let Some((k, m)) = self.resolve_path_abs(file, module, &u.path) {
                    let hits = by_path(&k, &m);
                    if !hits.is_empty() {
                        return hits;
                    }
                }
            }
        }
        // A child module of the current module, or a crate-root module.
        let mut child = module.to_vec();
        child.push(qual.to_owned());
        let hits = by_path(krate, &child);
        if !hits.is_empty() {
            return hits;
        }
        let hits = by_path(krate, &[qual.to_owned()]);
        if !hits.is_empty() {
            return hits;
        }
        // The qualifier is itself a crate key (`skymr_common::init(…)`).
        if self.file_addr.iter().any(|(c, _)| c == qual) {
            let hits = by_path(qual, &[]);
            if !hits.is_empty() {
                return hits;
            }
        }
        // Last resort: a unique workspace module whose last segment is the
        // qualifier and which defines `name`.
        index.free_via_module_tail(qual, name)
    }

    /// Resolves a plain `name(…)` call.
    fn resolve_free(
        &self,
        file: usize,
        krate: &str,
        module: &[String],
        name: &str,
        index: &SymbolIndex,
    ) -> Vec<NodeId> {
        // Enclosing module chain, innermost first.
        for k in (0..=module.len()).rev() {
            let hits = index.free(krate, &module[..k], name);
            if !hits.is_empty() {
                return hits;
            }
        }
        // Explicit import, alias included.
        for u in self.uses_in_scope(file, module) {
            if u.is_glob || u.alias != name {
                continue;
            }
            let Some(target) = u.path.last() else {
                continue;
            };
            let mut base = u.path.clone();
            base.pop();
            if let Some((k, m)) = self.resolve_path_abs(file, module, &base) {
                let hits = index.free(&k, &m, target);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // Glob imports.
        for u in self.uses_in_scope(file, module) {
            if !u.is_glob {
                continue;
            }
            if let Some((k, m)) = self.resolve_path_abs(file, module, &u.path) {
                let hits = index.free(&k, &m, name);
                if !hits.is_empty() {
                    return hits;
                }
            }
        }
        // Same-crate, then workspace-unique fallbacks.
        let hits = index.free_in_crate(krate, name);
        if !hits.is_empty() {
            return hits;
        }
        index.free_unique(name)
    }

    /// Determines the receiver type of a `.name(…)` call, or `None` when
    /// it is not statically evident.
    fn receiver_type(&self, id: NodeId, call: &crate::parse::Call) -> Option<String> {
        let n = self.nodes[id];
        let f = &self.files[n.file];
        let g = &f.model.fns[n.func];
        let i = call.sig_idx;
        if i < 2 || f.sig_text(i - 1) != "." {
            return None;
        }
        let recv = i - 2;
        if !matches!(
            f.sig_kind(recv),
            Some(TokenKind::Ident | TokenKind::RawIdent)
        ) {
            return None; // `)` / `]` / literal: a chain or complex expr
        }
        let recv_name = f.sig_text(recv);
        let before = (recv > 0).then(|| f.sig_text(recv - 1));
        if before == Some(".") {
            // Only `self.field.method(…)` is typed; longer chains are not.
            if recv >= 2 && f.sig_text(recv - 2) == "self" {
                let is_chain_head = recv < 3 || f.sig_text(recv - 3) != ".";
                if is_chain_head {
                    let self_ty = self.self_ty(id)?;
                    return self.field_type(id, self_ty, recv_name);
                }
            }
            return None;
        }
        if recv_name == "self" {
            return self.self_ty(id).map(str::to_owned);
        }
        // A typed parameter.
        if let Some((_, ty)) = g.params.iter().rfind(|(p, _)| p == recv_name) {
            if !ty.is_empty() {
                return Some(ty.clone());
            }
        }
        // The latest `let [mut] x …` binding before the call site.
        let (start, _) = f.sig_range(g.body?);
        self.let_binding_type(f, start, i, recv_name)
    }

    /// Type of `field` on the struct named `self_ty`. A struct declared in
    /// the calling node's own crate and module wins outright (same-name
    /// structs in other crates cannot shadow the local one); otherwise the
    /// workspace must define exactly one consistent answer.
    fn field_type(&self, id: NodeId, self_ty: &str, field: &str) -> Option<String> {
        let caller_crate = self.crate_of(id);
        let caller_module = &self.fn_info(id).module;
        let mut local: Option<String> = None;
        let mut global: Option<String> = None;
        for (fi, f) in self.files.iter().enumerate() {
            for s in &f.model.structs {
                if s.name != self_ty {
                    continue;
                }
                let in_scope = self.file_addr[fi].0 == caller_crate && &s.module == caller_module;
                for (fname, fty) in &s.fields {
                    if fname == field && !fty.is_empty() {
                        if in_scope {
                            match &local {
                                Some(prev) if prev != fty => return None, // ambiguous
                                _ => local = Some(fty.clone()),
                            }
                        }
                        match &global {
                            Some(prev) if prev != fty => global = Some(String::new()),
                            Some(_) => {}
                            None => global = Some(fty.clone()),
                        }
                    }
                }
            }
        }
        local.or_else(|| global.filter(|g| !g.is_empty()))
    }

    /// Scans `[start, before)` for the last `let [mut] name …` binding of
    /// `name` whose type is evident: an explicit `: T` annotation, a
    /// `= T::ctor(…)` associated-fn call, or a `= T { … }` struct literal.
    fn let_binding_type(
        &self,
        f: &AnalyzedFile,
        start: usize,
        before: usize,
        name: &str,
    ) -> Option<String> {
        let mut found = None;
        let mut i = start;
        while i + 2 < before {
            if f.sig_text(i) != "let" {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if f.sig_text(j) == "mut" {
                j += 1;
            }
            if f.sig_text(j) != name {
                i += 1;
                continue;
            }
            let after = j + 1;
            if f.sig_text(after) == ":" && f.sig_text(after + 1) != ":" {
                // `let x: path::to::T<…> = …` — last path segment before
                // `<`, `=`, or `;`.
                let mut last = None;
                let mut k = after + 1;
                while k < before {
                    match f.sig_kind(k) {
                        Some(TokenKind::Ident | TokenKind::RawIdent)
                            if !matches!(f.sig_text(k), "dyn" | "impl" | "mut") =>
                        {
                            last = Some(f.sig_text(k).to_owned());
                            if f.sig_text(k + 1) == ":" && f.sig_text(k + 2) == ":" {
                                k += 3;
                                continue;
                            }
                            break;
                        }
                        Some(TokenKind::Punct) if matches!(f.sig_text(k), "&") => k += 1,
                        Some(TokenKind::Lifetime) => k += 1,
                        _ => break,
                    }
                }
                if last.is_some() {
                    found = last;
                }
            } else if f.sig_text(after) == "=" {
                let head = after + 1;
                let is_ty = f
                    .sig_text(head)
                    .chars()
                    .next()
                    .is_some_and(char::is_uppercase)
                    && matches!(
                        f.sig_kind(head),
                        Some(TokenKind::Ident | TokenKind::RawIdent)
                    );
                if is_ty {
                    let next = f.sig_text(head + 1);
                    let assoc = next == ":" && f.sig_text(head + 2) == ":";
                    let literal = next == "{";
                    if assoc || literal {
                        // Walk `A::B::ctor(…)` to the segment before the
                        // final ctor name.
                        if assoc {
                            let mut ty = f.sig_text(head).to_owned();
                            let mut k = head;
                            while f.sig_text(k + 1) == ":"
                                && f.sig_text(k + 2) == ":"
                                && matches!(
                                    f.sig_kind(k + 3),
                                    Some(TokenKind::Ident | TokenKind::RawIdent)
                                )
                            {
                                if f.sig_text(k + 3)
                                    .chars()
                                    .next()
                                    .is_some_and(char::is_uppercase)
                                {
                                    ty = f.sig_text(k + 3).to_owned();
                                }
                                k += 3;
                            }
                            found = Some(ty);
                        } else {
                            found = Some(f.sig_text(head).to_owned());
                        }
                    }
                }
            }
            i = j + 1;
        }
        found
    }
}

/// Free-fn and method lookup tables over one [`Workspace`].
struct SymbolIndex {
    /// `(crate, module path, name)` → free fns.
    by_path: BTreeMap<(String, Vec<String>, String), Vec<NodeId>>,
    /// `(crate, name)` → free fns anywhere in the crate.
    by_crate: BTreeMap<(String, String), Vec<NodeId>>,
    /// `name` → free fns anywhere.
    by_name: BTreeMap<String, Vec<NodeId>>,
    /// `(impl self type, method name)` → impl fns.
    by_method: BTreeMap<(String, String), Vec<NodeId>>,
}

impl SymbolIndex {
    fn build(ws: &Workspace<'_>) -> Self {
        let mut by_path: BTreeMap<(String, Vec<String>, String), Vec<NodeId>> = BTreeMap::new();
        let mut by_crate: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<NodeId>> = BTreeMap::new();
        let mut by_method: BTreeMap<(String, String), Vec<NodeId>> = BTreeMap::new();
        for (id, n) in ws.nodes.iter().enumerate() {
            let f = &ws.files[n.file];
            let g = &f.model.fns[n.func];
            if g.name.is_empty() {
                continue;
            }
            if let Some(ii) = g.impl_idx {
                let ty = f.model.impls[ii].self_ty.clone();
                by_method.entry((ty, g.name.clone())).or_default().push(id);
            } else {
                let (krate, _) = &ws.file_addr[n.file];
                let module = ws.module_of(id);
                by_path
                    .entry((krate.clone(), module, g.name.clone()))
                    .or_default()
                    .push(id);
                by_crate
                    .entry((krate.clone(), g.name.clone()))
                    .or_default()
                    .push(id);
                by_name.entry(g.name.clone()).or_default().push(id);
            }
        }
        Self {
            by_path,
            by_crate,
            by_name,
            by_method,
        }
    }

    fn free(&self, krate: &str, module: &[String], name: &str) -> Vec<NodeId> {
        self.by_path
            .get(&(krate.to_owned(), module.to_vec(), name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    fn free_in_crate(&self, krate: &str, name: &str) -> Vec<NodeId> {
        self.by_crate
            .get(&(krate.to_owned(), name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }

    /// A workspace-unique free fn: exactly one definition anywhere.
    fn free_unique(&self, name: &str) -> Vec<NodeId> {
        match self.by_name.get(name) {
            Some(ids) if ids.len() == 1 => ids.clone(),
            _ => Vec::new(),
        }
    }

    /// Free fns named `name` in modules whose last segment is `tail`,
    /// provided that narrows to a single module.
    fn free_via_module_tail(&self, tail: &str, name: &str) -> Vec<NodeId> {
        let mut hits: Vec<_> = self
            .by_path
            .iter()
            .filter(|((_, m, n), _)| n == name && m.last().is_some_and(|s| s == tail))
            .collect();
        if hits.len() == 1 {
            hits.remove(0).1.clone()
        } else {
            Vec::new()
        }
    }

    fn methods(&self, ty: &str, name: &str) -> Vec<NodeId> {
        self.by_method
            .get(&(ty.to_owned(), name.to_owned()))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::super::AnalyzedFile;
    use super::*;

    fn ws_files(sources: &[(&str, &str)]) -> Vec<AnalyzedFile> {
        sources
            .iter()
            .map(|(p, s)| AnalyzedFile::build(*p, *s))
            .collect()
    }

    /// Edge (caller fn name, callee fn name) pairs, for assertions.
    fn edge_names(ws: &Workspace<'_>) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for id in 0..ws.nodes.len() {
            for &(_, callee) in ws.callees(id) {
                out.push((ws.fn_info(id).name.clone(), ws.fn_info(callee).name.clone()));
            }
        }
        out.sort();
        out
    }

    #[test]
    fn file_addresses_follow_cargo_layout() {
        let cases = [
            ("crates/core/src/lib.rs", "skymr", vec![]),
            ("crates/core/src/grid.rs", "skymr", vec!["grid"]),
            (
                "crates/common/src/fault/mod.rs",
                "skymr_common",
                vec!["fault"],
            ),
            (
                "crates/mapreduce/src/fault/exec.rs",
                "skymr_mapreduce",
                vec!["fault", "exec"],
            ),
        ];
        for (path, krate, module) in cases {
            let (k, m) = file_address(path);
            assert_eq!(k, krate, "{path}");
            assert_eq!(m, module, "{path}");
        }
        // Harness files are their own crates.
        let (k, m) = file_address("tests/oracle.rs");
        assert!(k.starts_with("harness:"), "{k}");
        assert!(m.is_empty());
        let (k, _) = file_address("crates/bench/benches/dominance.rs");
        assert!(k.starts_with("harness:"));
        assert!(is_harness_path("crates/bench/benches/dominance.rs"));
        assert!(is_harness_path("examples/quickstart.rs"));
        assert!(!is_harness_path("crates/core/src/local.rs"));
    }

    #[test]
    fn cross_crate_use_import_resolves_free_calls() {
        let files = ws_files(&[
            (
                "crates/common/src/dominance.rs",
                "pub fn dominates(a: &[f64], b: &[f64]) -> bool { true }\n",
            ),
            (
                "crates/core/src/local.rs",
                "use skymr_common::dominance::dominates;\n\
                 pub fn insert(a: &[f64], b: &[f64]) -> bool { dominates(a, b) }\n",
            ),
        ]);
        let ws = Workspace::build(&files);
        assert_eq!(
            edge_names(&ws),
            [("insert".to_owned(), "dominates".to_owned())]
        );
    }

    #[test]
    fn module_qualifier_via_import_alias_resolves() {
        let files = ws_files(&[
            (
                "crates/common/src/dominance.rs",
                "pub fn compare(a: u32) -> u32 { a }\n",
            ),
            (
                "crates/core/src/local.rs",
                "use skymr_common::dominance;\n\
                 pub fn go(x: u32) -> u32 { dominance::compare(x) }\n",
            ),
        ]);
        let ws = Workspace::build(&files);
        assert_eq!(edge_names(&ws), [("go".to_owned(), "compare".to_owned())]);
    }

    #[test]
    fn method_calls_resolve_only_through_receiver_types() {
        let files = ws_files(&[(
            "crates/core/src/gpsrs.rs",
            "\
struct M;
impl MapTask for M {
    fn map(&mut self, xs: &[u32]) { self.helper(xs); }
}
impl M {
    fn helper(&self, xs: &[u32]) {}
}
fn driver(m: M, xs: Vec<u32>) {
    m.map(&xs);
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    drop(doubled);
}
",
        )]);
        let ws = Workspace::build(&files);
        let edges = edge_names(&ws);
        // `m.map(…)` on a typed param resolves to the UDF; the iterator
        // adapter `.map(…)` on a chain resolves to NOTHING.
        assert!(edges.contains(&("driver".to_owned(), "map".to_owned())));
        assert!(edges.contains(&("map".to_owned(), "helper".to_owned())));
        let map_edges = edges.iter().filter(|(_, c)| c == "map").count();
        assert_eq!(map_edges, 1, "iterator .map(…) must not alias the UDF");
    }

    #[test]
    fn let_binding_receiver_typing() {
        let files = ws_files(&[(
            "crates/core/src/grid.rs",
            "\
pub struct Grid { ppd: usize }
impl Grid {
    pub fn new(ppd: usize) -> Self { Grid { ppd } }
    pub fn partition_of(&self, x: u64) -> usize { 0 }
}
fn a() { let g = Grid::new(4); g.partition_of(9); }
fn b() { let g: Grid = make(); g.partition_of(9); }
fn c() { let g = Grid { ppd: 4 }; g.partition_of(9); }
fn d() { let g = opaque(); g.partition_of(9); }
fn make() -> Grid { Grid::new(1) }
fn opaque() -> Grid { Grid::new(1) }
",
        )]);
        let ws = Workspace::build(&files);
        let edges = edge_names(&ws);
        for caller in ["a", "b", "c"] {
            assert!(
                edges.contains(&(caller.to_owned(), "partition_of".to_owned())),
                "{caller}: {edges:?}"
            );
        }
        // `d`'s receiver comes from an untyped call: no method edge.
        assert!(!edges.contains(&("d".to_owned(), "partition_of".to_owned())));
    }

    #[test]
    fn self_field_types_resolve_through_struct_defs() {
        let files = ws_files(&[(
            "crates/mapreduce/src/job.rs",
            "\
pub struct Pool { n: usize }
impl Pool {
    pub fn run_indexed(&self, n: usize) -> usize { n }
}
pub struct Job { pool: Pool }
impl Job {
    pub fn run(&self) -> usize { self.pool.run_indexed(4) }
}
",
        )]);
        let ws = Workspace::build(&files);
        assert!(edge_names(&ws).contains(&("run".to_owned(), "run_indexed".to_owned())));
    }

    #[test]
    fn super_and_crate_qualifiers_resolve() {
        let files = ws_files(&[(
            "crates/core/src/lib.rs",
            "\
pub fn root_helper(x: u32) -> u32 { x }
mod stats {
    pub fn tally(x: u32) -> u32 { super::root_helper(x) + crate::root_helper(x) }
}
",
        )]);
        let ws = Workspace::build(&files);
        let edges = edge_names(&ws);
        assert_eq!(
            edges
                .iter()
                .filter(|(a, b)| a == "tally" && b == "root_helper")
                .count(),
            2,
            "one edge per call site: {edges:?}"
        );
    }

    #[test]
    fn aliased_imports_and_globs_resolve() {
        let files = ws_files(&[
            (
                "crates/common/src/tuple.rs",
                "pub fn parse_tuple(s: &str) -> u32 { 0 }\npub fn write_tuple(x: u32) {}\n",
            ),
            (
                "crates/core/src/io.rs",
                "use skymr_common::tuple::parse_tuple as parse;\n\
                 use skymr_common::tuple::*;\n\
                 fn load(s: &str) -> u32 { parse(s) }\n\
                 fn save(x: u32) { write_tuple(x) }\n",
            ),
        ]);
        let ws = Workspace::build(&files);
        let edges = edge_names(&ws);
        assert!(edges.contains(&("load".to_owned(), "parse_tuple".to_owned())));
        assert!(edges.contains(&("save".to_owned(), "write_tuple".to_owned())));
    }

    #[test]
    fn same_name_free_fns_in_different_crates_do_not_cross_link() {
        let files = ws_files(&[
            (
                "crates/core/src/a.rs",
                "pub fn helper() {}\npub fn go() { helper(); }\n",
            ),
            ("crates/baselines/src/b.rs", "pub fn helper() {}\n"),
        ]);
        let ws = Workspace::build(&files);
        let ids: Vec<_> = (0..ws.nodes.len())
            .filter(|&id| ws.fn_info(id).name == "go")
            .collect();
        let callees = ws.callees(ids[0]);
        assert_eq!(callees.len(), 1);
        let callee = callees[0].1;
        assert_eq!(ws.crate_of(callee), "skymr", "same-crate helper wins");
    }

    #[test]
    fn callers_are_the_inverse_of_callees() {
        let files = ws_files(&[(
            "crates/core/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); }\nfn c() {}\n",
        )]);
        let ws = Workspace::build(&files);
        let id_of = |n: &str| {
            (0..ws.nodes.len())
                .find(|&id| ws.fn_info(id).name == n)
                .expect("fn exists")
        };
        assert_eq!(ws.callers(id_of("c")), [id_of("b")]);
        assert_eq!(ws.callers(id_of("b")), [id_of("a")]);
        assert!(ws.callers(id_of("a")).is_empty());
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(96))]

        /// Round-trip: generate a nested `mod` tree with one target fn at
        /// a random module path and a caller importing it through a
        /// generated `use` chain; resolution must produce exactly the
        /// intended edge.
        #[test]
        fn module_tree_resolution_round_trips(
            depth in 1usize..4,
            which in 0usize..3,
            seed in 0u32..10_000,
        ) {
            let seed_name = format!("s{seed}");
            // Build `mod m0 { mod m1 { … pub fn target() {} … } }` in one
            // crate file, and a caller in another crate.
            let mods: Vec<String> = (0..depth).map(|i| format!("m{i}_{seed_name}")).collect();
            let mut def = String::new();
            for m in &mods {
                def.push_str(&format!("pub mod {m} {{\n"));
            }
            def.push_str("pub fn target() {}\n");
            for _ in &mods {
                def.push_str("}\n");
            }
            let full_path = {
                let mut p = vec!["skymr_common".to_owned(), "defs".to_owned()];
                p.extend(mods.iter().cloned());
                p.join("::")
            };
            // Three import styles: direct fn import, aliased import, and
            // a module import with a qualified call.
            let caller = match which {
                0 => format!("use {full_path}::target;\npub fn caller() {{ target(); }}\n"),
                1 => format!("use {full_path}::target as t;\npub fn caller() {{ t(); }}\n"),
                _ => {
                    let last_mod = mods.last().expect("at least one mod");
                    let parent = full_path;
                    format!("use {parent};\npub fn caller() {{ {last_mod}::target(); }}\n")
                }
            };
            let files = ws_files(&[
                ("crates/common/src/defs.rs", &def),
                ("crates/core/src/user.rs", &caller),
            ]);
            let ws = Workspace::build(&files);
            let edges = edge_names(&ws);
            assert_eq!(
                edges,
                [("caller".to_owned(), "target".to_owned())],
                "def:\n{def}\ncaller:\n{caller}"
            );
        }
    }
}
