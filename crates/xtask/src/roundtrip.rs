//! Losslessness tests for the lexer (test-only module).
//!
//! The analysis passes are only trustworthy if the lexer never drops or
//! duplicates source text — a swallowed span is exactly how PR 1's
//! line-based sanitizer went blind (see the `regression_*` tests in
//! `lexer.rs`). Two layers here:
//!
//! * every `.rs` file under the repository (workspace crates, examples,
//!   integration tests, *and* the vendored stand-ins — any Rust text we
//!   can find) must round-trip: the concatenation of token slices equals
//!   the input and the token stream covers every byte exactly once;
//! * proptest-generated "token soup" — adversarial concatenations of the
//!   fragments that historically break hand-rolled lexers (raw strings
//!   with hash runs, nested comments, lifetimes next to char literals,
//!   stray quotes and backslashes, unterminated literals) — must uphold
//!   the same invariants plus exact line numbering.

use std::path::{Path, PathBuf};

use crate::lexer::lex;

/// Asserts the full lossless contract on one source text.
fn assert_roundtrip(src: &str, what: &str) {
    let tokens = lex(src);
    let mut rebuilt = String::with_capacity(src.len());
    let mut cursor = 0usize;
    for t in &tokens {
        assert_eq!(
            t.start, cursor,
            "{what}: token stream must cover every byte exactly once"
        );
        assert!(t.end >= t.start, "{what}: empty-or-negative token span");
        rebuilt.push_str(t.text(src));
        cursor = t.end;
    }
    assert_eq!(cursor, src.len(), "{what}: trailing bytes not tokenized");
    assert_eq!(rebuilt, src, "{what}: concat of token slices != input");
    // Line numbers must equal 1 + newlines before the token's start.
    let mut newlines = 0usize;
    let mut at = 0usize;
    for t in &tokens {
        newlines += src[at..t.start].matches('\n').count();
        at = t.start;
        assert_eq!(t.line, newlines + 1, "{what}: line number drift");
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if matches!(name.as_ref(), "target" | ".git" | ".claude") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn every_rust_file_in_the_repository_round_trips() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let mut files = Vec::new();
    collect_rs(root, &mut files);
    files.sort();
    assert!(
        files.len() >= 50,
        "suspiciously few files found ({}); is the walk broken?",
        files.len()
    );
    for f in &files {
        let src = std::fs::read_to_string(f).expect("source files are UTF-8");
        assert_roundtrip(&src, &f.display().to_string());
    }
}

/// Fragments chosen to collide: every pair concatenates into something a
/// sloppy lexer mis-brackets (quote kinds, hash runs, comment nesting,
/// lifetimes vs chars, half-finished escapes).
const FRAGMENTS: &[&str] = &[
    "fn f() { ",
    "}",
    "let x = 1;",
    "r\"raw\"",
    "r#\"ra\"w\"#",
    "br##\"b\"#b\"##",
    "r#fn",
    "\"str \\\" esc\"",
    "b\"bytes\\n\"",
    "'a'",
    "'\\''",
    "'\\u{1F600}'",
    "<'a>",
    "'static",
    "b'x'",
    "/* nested /* deep */ out */",
    "// line comment\n",
    "/*! inner doc */",
    "/// doc\n",
    "0x1f_u64",
    "1.5e-3",
    "1.",
    "1..2",
    "x.0",
    "v[i]",
    "::",
    "->",
    "=>",
    "\n",
    "\t ",
    "\"unterminated",
    "'",
    "\\",
    "r###\"many\"###",
    "0b101",
    "ident_with_seed",
    "🦀",
    "\"多字节 utf8\"",
    "/*",
    "#![allow(dead_code)]",
];

proptest::proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(256))]

    #[test]
    fn token_soup_round_trips(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_roundtrip(&src, "token soup");
    }
}
