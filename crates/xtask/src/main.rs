//! `cargo xtask` — repo-specific developer tasks.
//!
//! The only task today is `lint`: a line-based static checker enforcing
//! workspace rules that clippy cannot express (see `lint.rs`). Wired up as
//! a cargo alias in `.cargo/config.toml`, so it runs as `cargo xtask lint`.

use std::process::ExitCode;

mod lint;

const USAGE: &str = "\
usage: cargo xtask <task>

tasks:
  lint    run the repo-specific static checks over the workspace sources
  help    show this message
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint::run(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
