//! `cargo xtask` — repo-specific developer tasks.
//!
//! Three tasks. The first two are built on the same token-level analysis
//! stack (a lossless hand-rolled lexer in `lexer.rs`, a lightweight
//! item/impl parser in `parse.rs`, rule passes under `analyze/`):
//!
//! * `lint` — the four fast legacy rules from PR 1 (`no-unwrap`,
//!   `seeded-rng`, `no-std-mutex`, `no-thread-spawn`), for tight
//!   edit-compile loops.
//! * `analyze` — everything `lint` runs plus the whole-workspace passes:
//!   `udf-determinism`, `panic-reachability`, and `seeded-rng-dataflow`.
//! * `perf` — the performance linter: `hot-path-alloc` (allocation,
//!   clone, unsized-push, and hash-map findings in fns reachable from
//!   the hot-entry registry, ranked by effective loop depth) and
//!   `lock-discipline` (guards held across dispatch/channels/locks,
//!   lock-order cycles).
//! * `flow` — the dataflow linter on the workspace-resolved symbol
//!   graph: `clock-discipline` (wall-clock readings must stay advisory),
//!   `ambient-io` (no file/env/stdio reachable from UDF entry points),
//!   and `float-ord` (comparators must use `total_cmp`).
//! * `bench-gate` — run the criterion benches and compare medians
//!   against the committed `BENCH_*.json` baselines with a noise-aware
//!   (MAD-scaled) threshold; fails on regressions.
//! * `trace-schema` — validate a `--trace` export (Chrome JSON or JSONL)
//!   against the telemetry exporters' documented shape; CI runs it on a
//!   freshly produced trace.
//!
//! Wired up as a cargo alias in `.cargo/config.toml`, so it runs as
//! `cargo xtask lint` / `cargo xtask analyze`.

use std::process::ExitCode;

mod analyze;
mod bench_gate;
mod lexer;
mod parse;
#[cfg(test)]
mod roundtrip;
mod trace_schema;

use analyze::{Mode, Options};

const USAGE: &str = "\
usage: cargo xtask <task> [options]

tasks:
  lint       run the four legacy static rules over the workspace sources
  analyze    run all rules plus the UDF-determinism, panic-reachability,
             and seeded-randomness-dataflow passes
  perf       run the performance linter: hot-path-alloc (allocations,
             clones, unsized pushes, hash maps reachable from the hot
             entry registry, ranked by loop depth) and lock-discipline
             (guards held across dispatch/channels/locks, lock cycles)
  flow       run the dataflow linter on the resolved symbol graph:
             clock-discipline (wall-clock values stay advisory-only),
             ambient-io (no file/env/stdio reachable from UDF entry
             points), float-ord (total_cmp in sort/search comparators)
  bench-gate re-run the criterion benches and compare against the
             committed BENCH_*.json baselines (median-of-samples with a
             MAD-scaled noise threshold); non-zero exit on regression
  trace-schema <file>
             validate a trace written by `skymr-cli run --trace`
             (Chrome trace_event JSON, or JSONL if the file ends
             in .jsonl)
  help       show this message

options (lint, analyze, perf, and flow):
  --format <text|json|github>   diagnostic output format (default: text)
  --list-stale-waivers          report `xtask: allow(...)` comments whose
                                line no longer triggers the waived rule

options (bench-gate):
  --update-baseline             rewrite the BENCH_*.json baselines from
                                this run instead of gating against them
  --bench <name>                gate only the named bench target
                                (default: all registered targets)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (task, rest) = match args.split_first() {
        Some((t, rest)) => (t.as_str(), rest),
        None => ("help", &[][..]),
    };
    match task {
        "lint" | "analyze" | "perf" | "flow" => {
            let opts = match Options::parse(rest) {
                Ok(o) => o,
                Err(msg) => {
                    eprintln!("xtask {task}: {msg}\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            let mode = match task {
                "lint" => Mode::Lint,
                "analyze" => Mode::Analyze,
                "perf" => Mode::Perf,
                _ => Mode::Flow,
            };
            analyze::run(mode, &opts)
        }
        "bench-gate" => bench_gate::run(rest),
        "trace-schema" => trace_schema::run(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("xtask: unknown task `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
