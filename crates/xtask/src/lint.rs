//! The repo-specific static checks behind `cargo xtask lint`.
//!
//! These are rules the workspace has standardized on but that clippy has no
//! lint for (or none that can be scoped per crate/file the way we need):
//!
//! 1. **`no-unwrap`** — `.unwrap()` / `.expect(` are banned in non-test
//!    code of `crates/mapreduce` and `crates/core`. Engine code routes
//!    fallible paths through `skymr_common::error` and expresses real
//!    invariants with `assert!`/`unreachable!`, which carry intent instead
//!    of a panic on an arbitrary `Option`/`Result`.
//! 2. **`seeded-rng`** — unseeded RNG construction (`thread_rng`,
//!    `from_entropy`, `rand::random`, `OsRng`) is banned everywhere.
//!    Every random stream derives from an explicit `u64` seed through
//!    `crates/datagen`'s seeding API so runs are reproducible; this is
//!    also what makes the schedule shaker's byte-identical-output
//!    assertion meaningful.
//! 3. **`no-std-mutex`** — `std::sync::Mutex`/`RwLock` are banned; the
//!    workspace standard is `parking_lot` (no lock poisoning to thread
//!    through engine code).
//! 4. **`no-thread-spawn`** — `thread::spawn` is banned outside
//!    `crates/mapreduce/src/pool.rs`, the single audited spawn site. All
//!    parallelism goes through the pool so the panic-propagation and
//!    thread-cap behavior stay in one place.
//!
//! The checker is deliberately line-based (the build environment has no
//! `syn`): each file is lexed just enough to drop comments and string
//! literal contents and to track `#[cfg(test)]` item bodies by brace
//! depth, then substring rules run on the sanitized lines. A violation can
//! be waived for one audited line with a trailing
//! `// xtask: allow(<rule-name>)` comment.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier, e.g. `no-unwrap`.
    pub rule: &'static str,
    /// What was found and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

// ---------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------

struct Rule {
    name: &'static str,
    /// Skip lines inside `#[cfg(test)]` items?
    skip_test_code: bool,
    /// Does the rule apply to this workspace-relative path?
    applies: fn(&str) -> bool,
    /// Returns the offending pattern if the sanitized line violates the rule.
    check: fn(&str) -> Option<&'static str>,
    /// Remediation hint appended to the diagnostic.
    help: &'static str,
}

fn in_engine_crates(path: &str) -> bool {
    path.starts_with("crates/mapreduce/src/") || path.starts_with("crates/core/src/")
}

fn everywhere(_path: &str) -> bool {
    true
}

fn outside_pool(path: &str) -> bool {
    path != "crates/mapreduce/src/pool.rs"
}

fn find_any(line: &str, needles: &[&'static str]) -> Option<&'static str> {
    needles.iter().copied().find(|n| line.contains(n))
}

fn check_unwrap(line: &str) -> Option<&'static str> {
    find_any(line, &[".unwrap()", ".expect("])
}

fn check_unseeded_rng(line: &str) -> Option<&'static str> {
    find_any(
        line,
        &["thread_rng", "from_entropy", "rand::random", "OsRng"],
    )
}

fn check_std_mutex(line: &str) -> Option<&'static str> {
    // Also catches grouped imports like `use std::sync::{Arc, Mutex};`.
    if line.contains("std::sync::") {
        if line.contains("Mutex") {
            return Some("std::sync::Mutex");
        }
        if line.contains("RwLock") {
            return Some("std::sync::RwLock");
        }
    }
    None
}

fn check_thread_spawn(line: &str) -> Option<&'static str> {
    find_any(line, &["thread::spawn"])
}

const RULES: &[Rule] = &[
    Rule {
        name: "no-unwrap",
        skip_test_code: true,
        applies: in_engine_crates,
        check: check_unwrap,
        help: "engine code must route errors through skymr_common::error \
               (or state the invariant with assert!/unreachable!)",
    },
    Rule {
        name: "seeded-rng",
        skip_test_code: false,
        applies: everywhere,
        check: check_unseeded_rng,
        help: "construct RNGs from an explicit u64 seed via \
               skymr_datagen's seeding API; unseeded randomness breaks \
               run-to-run determinism",
    },
    Rule {
        name: "no-std-mutex",
        skip_test_code: false,
        applies: everywhere,
        check: check_std_mutex,
        help: "the workspace locking standard is parking_lot",
    },
    Rule {
        name: "no-thread-spawn",
        skip_test_code: false,
        applies: outside_pool,
        check: check_thread_spawn,
        help: "all parallelism goes through skymr_mapreduce::pool, the \
               single audited spawn site",
    },
];

// ---------------------------------------------------------------------
// Lexing: strip comments and literal contents, track #[cfg(test)] bodies.
// ---------------------------------------------------------------------

/// Lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LexState {
    Code,
    /// Inside `/* ... */`; Rust block comments nest, so track depth.
    BlockComment(u32),
    /// Inside a normal `"..."` string.
    Str,
    /// Inside a raw string; the payload is the number of `#`s.
    RawStr(u8),
}

/// Returns `line` with comments removed and string/char literal contents
/// blanked, updating `state` for multi-line constructs. Stripped spans
/// become single spaces so tokens never fuse across them.
fn sanitize_line(state: &mut LexState, line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match *state {
            LexState::BlockComment(depth) => {
                if bytes[i..].starts_with(b"/*") {
                    *state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else if bytes[i..].starts_with(b"*/") {
                    *state = if depth == 1 {
                        out.push(' ');
                        LexState::Code
                    } else {
                        LexState::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push('"');
                    *state = LexState::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if bytes[i] == b'"'
                    && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count() >= hashes as usize
                {
                    out.push('"');
                    *state = LexState::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
            LexState::Code => {
                if bytes[i..].starts_with(b"//") {
                    break; // rest of the line is a comment
                }
                if bytes[i..].starts_with(b"/*") {
                    *state = LexState::BlockComment(1);
                    i += 2;
                    continue;
                }
                if bytes[i] == b'"' {
                    out.push('"');
                    *state = LexState::Str;
                    i += 1;
                    continue;
                }
                // Raw (and raw byte) string openers: r"  r#"  br"  br#" ...
                if let Some(consumed) = raw_string_open(&bytes[i..]) {
                    out.push('"');
                    *state = LexState::RawStr(consumed.1);
                    i += consumed.0;
                    continue;
                }
                if bytes[i] == b'\'' {
                    if let Some(len) = char_literal_len(&bytes[i..]) {
                        out.push('\'');
                        out.push(' ');
                        out.push('\'');
                        i += len;
                        continue;
                    }
                    // A lifetime — keep it.
                }
                out.push(bytes[i] as char);
                i += 1;
            }
        }
    }
    out
}

/// If `bytes` starts a raw string literal (`r"`, `r#"`, `br##"`, ...),
/// returns (bytes consumed through the opening quote, number of `#`s).
fn raw_string_open(bytes: &[u8]) -> Option<(usize, u8)> {
    let mut i = 0;
    if bytes.get(i) == Some(&b'b') {
        i += 1;
    }
    if bytes.get(i) != Some(&b'r') {
        return None;
    }
    i += 1;
    let hashes = bytes[i..].iter().take_while(|&&b| b == b'#').count();
    i += hashes;
    if bytes.get(i) == Some(&b'"') {
        Some((i + 1, hashes.min(255) as u8))
    } else {
        None
    }
}

/// If `bytes` starts a character literal (as opposed to a lifetime),
/// returns its total byte length.
fn char_literal_len(bytes: &[u8]) -> Option<usize> {
    debug_assert_eq!(bytes.first(), Some(&b'\''));
    if bytes.get(1) == Some(&b'\\') {
        // Escaped: scan to the closing quote.
        let close = bytes[2..].iter().position(|&b| b == b'\'')?;
        return Some(close + 3);
    }
    // Unescaped: 'x' where x is any single char (possibly multi-byte).
    let s = std::str::from_utf8(bytes).ok()?;
    let mut chars = s.char_indices().skip(1);
    let (_, c) = chars.next()?;
    let (close_idx, close) = chars.next()?;
    (close == '\'' && c != '\'').then(|| close_idx + 1)
}

/// Tracks whether the current line sits inside a `#[cfg(test)]` item.
#[derive(Debug, Default)]
struct TestRegion {
    /// Saw the attribute; waiting for the item's opening brace.
    pending: bool,
    active: bool,
    depth: i64,
}

impl TestRegion {
    /// Feeds one sanitized line; returns `true` if the line belongs to a
    /// `#[cfg(test)]` item (including the attribute line itself).
    fn update(&mut self, line: &str) -> bool {
        let opens = line.matches('{').count() as i64;
        let closes = line.matches('}').count() as i64;
        if self.active {
            self.depth += opens - closes;
            if self.depth <= 0 {
                self.active = false;
            }
            return true;
        }
        if self.pending {
            if opens > 0 {
                self.pending = false;
                self.depth = opens - closes;
                self.active = self.depth > 0;
            } else if line.trim_end().ends_with(';') {
                // e.g. `#[cfg(test)] use ...;` split across lines.
                self.pending = false;
            }
            return true;
        }
        if line.contains("#[cfg(test)]") {
            if opens > 0 && line.contains('}') {
                // Single-line item: `#[cfg(test)] mod t { ... }`.
            } else if opens > 0 {
                self.depth = opens - closes;
                self.active = self.depth > 0;
            } else {
                self.pending = true;
            }
            return true;
        }
        false
    }
}

/// Lints one file's source text. `path` is the workspace-relative path
/// (forward slashes) used for rule scoping and diagnostics.
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let rules: Vec<&Rule> = RULES.iter().filter(|r| (r.applies)(path)).collect();
    if rules.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let mut lex = LexState::Code;
    let mut region = TestRegion::default();
    for (idx, raw) in source.lines().enumerate() {
        let sanitized = sanitize_line(&mut lex, raw);
        let in_test = region.update(&sanitized);
        for rule in &rules {
            if rule.skip_test_code && in_test {
                continue;
            }
            let Some(pattern) = (rule.check)(&sanitized) else {
                continue;
            };
            if waived(raw, rule.name) {
                continue;
            }
            diags.push(Diagnostic {
                file: path.to_owned(),
                line: idx + 1,
                rule: rule.name,
                message: format!("`{pattern}` — {}", rule.help),
            });
        }
    }
    diags
}

/// `true` if the raw line carries a waiver comment for `rule`.
fn waived(raw_line: &str, rule: &str) -> bool {
    raw_line
        .find("xtask: allow(")
        .is_some_and(|i| raw_line[i + "xtask: allow(".len()..].starts_with(rule))
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

/// Directories never scanned (vendored stand-ins, build output, VCS), plus
/// this crate itself: its rule table necessarily spells out every banned
/// pattern, and its behavior is covered by the unit tests below instead.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".claude"];
const SKIP_PREFIXES: &[&str] = &["crates/xtask"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let rel = path.strip_prefix(root).unwrap_or(&path);
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref())
                || SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p))
            {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if rel_str.ends_with(".rs") && !SKIP_PREFIXES.iter().any(|p| rel_str.starts_with(p))
        {
            out.push(path);
        }
    }
}

/// Entry point for `cargo xtask lint`.
pub fn run() -> ExitCode {
    let Some(root) = workspace_root() else {
        eprintln!("xtask lint: cannot locate the workspace root");
        return ExitCode::from(2);
    };
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();
    let mut diags = Vec::new();
    for file in &files {
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        diags.extend(lint_source(&rel, &source));
    }
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        println!("xtask lint: OK ({} files scanned)", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) across {} file(s) scanned",
            diags.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

fn workspace_root() -> Option<PathBuf> {
    // crates/xtask -> crates -> workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()?
        .parent()
        .map(Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = "crates/mapreduce/src/job.rs";
    const CORE: &str = "crates/core/src/gpsrs.rs";
    const OTHER: &str = "crates/datagen/src/lib.rs";

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        lint_source(path, src).into_iter().map(|d| d.rule).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_in_engine_code() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n";
        let diags = lint_source(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "no-unwrap");
        assert_eq!(diags[0].line, 2);
        let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"msg\") }\n";
        assert_eq!(rules_hit(CORE, src), ["no-unwrap"]);
    }

    #[test]
    fn unwrap_is_allowed_outside_engine_crates_and_in_tests() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source(OTHER, src).is_empty());
        assert!(lint_source("crates/mapreduce/tests/e2e.rs", src).is_empty());
        let src = "\
fn prod() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
        assert!(lint_source(ENGINE, src).is_empty());
    }

    #[test]
    fn test_region_tracking_resumes_after_the_block() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { Some(1).unwrap(); }
}
fn prod(x: Option<u8>) -> u8 { x.unwrap() }
";
        let diags = lint_source(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn flags_unseeded_rng_everywhere_even_in_tests() {
        for src in [
            "let mut rng = rand::thread_rng();\n",
            "let rng = StdRng::from_entropy();\n",
            "let x: f64 = rand::random();\n",
            "use rand::rngs::OsRng;\n",
        ] {
            assert_eq!(rules_hit(OTHER, src), ["seeded-rng"], "{src}");
        }
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { rand::thread_rng(); }\n}\n";
        assert_eq!(rules_hit(OTHER, src), ["seeded-rng"]);
    }

    #[test]
    fn flags_std_mutex_including_grouped_imports() {
        assert_eq!(
            rules_hit(OTHER, "let m = std::sync::Mutex::new(0);\n"),
            ["no-std-mutex"]
        );
        assert_eq!(
            rules_hit(OTHER, "use std::sync::{Arc, Mutex};\n"),
            ["no-std-mutex"]
        );
        assert_eq!(
            rules_hit(OTHER, "use std::sync::RwLock;\n"),
            ["no-std-mutex"]
        );
        assert!(lint_source(OTHER, "use std::sync::Arc;\n").is_empty());
        assert!(lint_source(OTHER, "use parking_lot::Mutex;\n").is_empty());
    }

    #[test]
    fn flags_thread_spawn_outside_the_pool_only() {
        let src = "let h = std::thread::spawn(|| {});\n";
        assert_eq!(rules_hit(OTHER, src), ["no-thread-spawn"]);
        assert_eq!(rules_hit(ENGINE, src), ["no-thread-spawn"]);
        assert!(lint_source("crates/mapreduce/src/pool.rs", src).is_empty());
    }

    #[test]
    fn comments_and_string_literals_do_not_flag() {
        let src = "\
// call .unwrap() here? never.
/// let x = maybe.unwrap();
/* thread_rng() in a block comment
   spanning lines with std::sync::Mutex */
let s = \".unwrap() thread_rng std::sync::Mutex thread::spawn\";
let r = r#\"from_entropy()\"#;
let c = '\"'; let after = \"thread_rng\";
";
        assert!(
            lint_source(ENGINE, src).is_empty(),
            "{:?}",
            lint_source(ENGINE, src)
        );
    }

    #[test]
    fn code_after_a_closed_block_comment_still_flags() {
        let src = "let x = /* ok */ y.unwrap();\n";
        assert_eq!(rules_hit(ENGINE, src), ["no-unwrap"]);
    }

    #[test]
    fn waiver_comment_suppresses_only_the_named_rule() {
        let src = "let x = y.unwrap(); // xtask: allow(no-unwrap)\n";
        assert!(lint_source(ENGINE, src).is_empty());
        let src = "let x = y.unwrap(); // xtask: allow(seeded-rng)\n";
        assert_eq!(rules_hit(ENGINE, src), ["no-unwrap"]);
    }

    #[test]
    fn multiline_string_contents_are_ignored() {
        let src = "let s = \"first line\nstill a string .unwrap()\nend\";\nlet z = q.unwrap();\n";
        let diags = lint_source(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 4);
    }

    #[test]
    fn diagnostics_render_with_file_line_and_rule() {
        let d = lint_source(ENGINE, "x.unwrap();\n").remove(0);
        let rendered = d.to_string();
        assert!(rendered.starts_with("crates/mapreduce/src/job.rs:1: [no-unwrap]"));
    }
}
