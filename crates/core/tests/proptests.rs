//! Property tests for the paper's core machinery: grid geometry,
//! bitstring pruning, independent groups, and the cost model.

use proptest::prelude::*;

use skymr::bitstring::Bitstring;
use skymr::cost::{kappa_mapper, kappa_reducer, kappa_surface, rho_dom, rho_rem};
use skymr::groups::{generate_independent_groups, plan_groups, MergePolicy};
use skymr::local::{bnl_reference, compare_all_partitions, insert_into_partition, CmpStats};
use skymr::Grid;
use skymr_common::{dominance::dominates, BitGrid, Tuple};

/// A random small grid (d, n) with n^d capped to keep cases fast.
fn arb_grid() -> impl Strategy<Value = Grid> {
    (1usize..=4, 1usize..=5)
        .prop_filter("cap partitions", |(d, n)| n.pow(*d as u32) <= 700)
        .prop_map(|(d, n)| Grid::new(d, n).expect("valid grid"))
}

/// A random bit pattern over a grid.
fn arb_bitstring() -> impl Strategy<Value = Bitstring> {
    arb_grid().prop_flat_map(|grid| {
        proptest::collection::vec(any::<bool>(), grid.num_partitions()).prop_map(move |flags| {
            let mut bits = BitGrid::zeros(grid.num_partitions());
            for (i, f) in flags.iter().enumerate() {
                if *f {
                    bits.set(i);
                }
            }
            Bitstring::from_parts(grid, bits)
        })
    })
}

proptest! {
    #[test]
    fn grid_index_coordinate_roundtrip(grid in arb_grid()) {
        for i in 0..grid.num_partitions() {
            prop_assert_eq!(grid.index_of(&grid.coords_of(i)), i);
        }
    }

    #[test]
    fn adr_and_dr_are_dual(grid in arb_grid()) {
        for p in 0..grid.num_partitions() {
            for q in grid.dr(p) {
                // q is dominated by p, so p is an anti-dominator of q …
                prop_assert!(grid.in_adr(q, p), "p={p} q={q}: DR/ADR duality broken");
                // … and the dominance predicate agrees.
                prop_assert!(grid.partition_dominates(p, q));
            }
            for q in grid.adr(p) {
                prop_assert!(!grid.partition_dominates(p, q), "ADR member dominated by p");
            }
        }
    }

    #[test]
    fn adr_size_matches_iterator(grid in arb_grid()) {
        for p in 0..grid.num_partitions() {
            prop_assert_eq!(grid.adr_size(p), grid.adr(p).count() as u64);
        }
    }

    #[test]
    fn partition_of_respects_cell_bounds(grid in arb_grid(), raw in proptest::collection::vec(0.0f64..1.0, 1..=4)) {
        if raw.len() != grid.dim() {
            return Ok(());
        }
        let t = Tuple::new(0, raw);
        let p = grid.partition_of(&t);
        let coords = grid.coords_of(p);
        let w = 1.0 / grid.ppd() as f64;
        for (k, &c) in coords.iter().enumerate() {
            prop_assert!(t.values[k] >= c as f64 * w - 1e-12);
            prop_assert!(t.values[k] < (c + 1) as f64 * w + 1e-12);
        }
    }

    #[test]
    fn prune_fast_equals_naive(bs in arb_bitstring()) {
        let mut fast = bs.clone();
        let mut naive = bs;
        fast.prune_dominated();
        naive.prune_dominated_naive();
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn pruning_never_removes_undominated_partitions(bs in arb_bitstring()) {
        let mut pruned = bs.clone();
        pruned.prune_dominated();
        let grid = *bs.grid();
        for p in 0..grid.num_partitions() {
            let dominated = bs
                .iter_set()
                .any(|q| grid.partition_dominates(q, p));
            if bs.is_set(p) {
                prop_assert_eq!(
                    pruned.is_set(p),
                    !dominated,
                    "partition {} wrongly pruned/kept", p
                );
            } else {
                prop_assert!(!pruned.is_set(p));
            }
        }
    }

    #[test]
    fn pruned_partitions_never_hold_skyline_points(
        dim in 2usize..=4,
        ppd in 2usize..=4,
        raw in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 4), 1..120),
    ) {
        // Lemma 1 soundness on real data, not just bit patterns: build the
        // occupancy bitstring of a random 2–4d dataset, prune it with the
        // DR/ADR rule (Equation 2), and check that no tuple of the true
        // skyline lives in a pruned partition — pruning may only discard
        // regions that provably contain dominated tuples.
        let grid = Grid::new(dim, ppd).expect("valid grid");
        let tuples: Vec<Tuple> = raw
            .iter()
            .enumerate()
            .map(|(id, row)| Tuple::new(id as u64, row[..dim].to_vec()))
            .collect();
        let mut bits = BitGrid::zeros(grid.num_partitions());
        for t in &tuples {
            bits.set(grid.partition_of(t));
        }
        let mut bs = Bitstring::from_parts(grid, bits);
        bs.prune_dominated();
        for t in bnl_reference(&tuples) {
            let p = grid.partition_of(&t);
            prop_assert!(
                bs.is_set(p),
                "skyline tuple {} sits in pruned partition {}", t.id, p
            );
        }
    }

    #[test]
    fn groups_cover_and_are_adr_closed(bs in arb_bitstring()) {
        let mut pruned = bs;
        pruned.prune_dominated();
        let grid = *pruned.grid();
        let groups = generate_independent_groups(&pruned);
        let surviving: std::collections::BTreeSet<u32> =
            pruned.iter_set().map(|p| p as u32).collect();
        let covered: std::collections::BTreeSet<u32> =
            groups.iter().flat_map(|g| g.partitions.iter().copied()).collect();
        prop_assert_eq!(&covered, &surviving);
        for g in &groups {
            let members: std::collections::BTreeSet<u32> =
                g.partitions.iter().copied().collect();
            for &p in &g.partitions {
                for q in grid.adr(p as usize) {
                    if pruned.is_set(q) {
                        prop_assert!(members.contains(&(q as u32)));
                    }
                }
            }
        }
    }

    #[test]
    fn plans_designate_every_partition_once(
        bs in arb_bitstring(),
        reducers in 1usize..6,
        comm in any::<bool>(),
    ) {
        let mut pruned = bs;
        pruned.prune_dominated();
        let policy = if comm { MergePolicy::CommunicationCost } else { MergePolicy::ComputationCost };
        let plan = plan_groups(&pruned, reducers, policy);
        let surviving: std::collections::BTreeSet<u32> =
            pruned.iter_set().map(|p| p as u32).collect();
        prop_assert_eq!(
            plan.designated.keys().copied().collect::<std::collections::BTreeSet<u32>>(),
            surviving
        );
        for (&p, &b) in &plan.designated {
            prop_assert!(b < plan.num_buckets());
            prop_assert!(plan.buckets[b].partitions.contains(&p));
        }
        // Every group lands in exactly one bucket.
        let mut assigned = std::collections::BTreeSet::new();
        for bucket in &plan.buckets {
            for &gi in &bucket.group_indices {
                prop_assert!(assigned.insert(gi));
            }
        }
        prop_assert_eq!(assigned.len(), plan.groups.len());
    }

    #[test]
    fn local_skyline_machinery_equals_flat_bnl(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 0..150),
        ppd in 1usize..5,
    ) {
        let tuples: Vec<Tuple> = rows
            .into_iter()
            .enumerate()
            .map(|(i, v)| Tuple::new(i as u64, v))
            .collect();
        let grid = Grid::new(3, ppd).expect("valid grid");
        let mut skylines = skymr::local::LocalSkylines::new();
        let mut stats = CmpStats::default();
        for t in &tuples {
            let p = grid.partition_of(t) as u32;
            insert_into_partition(&mut skylines, p, t.clone(), &mut stats);
        }
        compare_all_partitions(&grid, &mut skylines, &mut stats);
        let mut got: Vec<Tuple> = skylines.into_values().flatten().collect();
        got.sort_by_key(|t| t.id);
        prop_assert_eq!(got, bnl_reference(&tuples));
    }

    #[test]
    fn window_is_always_an_antichain(
        rows in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 2), 0..100),
    ) {
        let mut window = Vec::new();
        let mut stats = CmpStats::default();
        for (i, v) in rows.into_iter().enumerate() {
            skymr::local::insert_tuple(&mut window, Tuple::new(i as u64, v), &mut stats);
            for a in &window {
                for b in &window {
                    prop_assert!(!dominates(a, b), "window holds a dominated tuple");
                }
            }
        }
    }

    #[test]
    fn cost_model_identities(n in 1u64..8, d in 1u32..6) {
        // ρ_rem counts the union of the d origin surfaces.
        let grid = Grid::new(d as usize, n as usize).expect("valid grid");
        let on_surface = (0..grid.num_partitions())
            .filter(|&p| grid.coords_of(p).contains(&0))
            .count() as u64;
        prop_assert_eq!(rho_rem(n, d), on_surface);
        // κ_mapper sums ρ_dom over exactly those partitions.
        let brute: u128 = (0..grid.num_partitions())
            .filter(|&p| grid.coords_of(p).contains(&0))
            .map(|p| {
                let coords: Vec<u64> =
                    grid.coords_of(p).iter().map(|&c| c as u64 + 1).collect();
                rho_dom(&coords)
            })
            .sum();
        prop_assert_eq!(kappa_mapper(n, d), brute);
        // κ_reducer is the first surface and at least every later one.
        for j in 1..=d {
            prop_assert!(kappa_surface(n, d, j) <= kappa_reducer(n, d));
        }
    }
}
