//! PPD auto-selection (paper Section 3.3).
//!
//! The ideal partitions-per-dimension value balances partition-dominance
//! pruning against per-partition tuple work. The paper's heuristic extends
//! the bitstring job: every mapper builds one local bitstring per candidate
//! PPD `j ∈ 2..=n_m` (with `n_m = ⌈c^(1/d)⌉`); the reducer merges them per
//! candidate, estimates tuples-per-partition as `TPP_e = c/ρ_j` from the
//! non-empty count `ρ_j`, and picks the candidate whose estimate is closest
//! to the uniform-assumption target `c/j^d` (Equations 3–4).
//!
//! **Engineering caps.** On low-dimensional, high-cardinality data
//! `n_m = c^(1/d)` makes mappers materialize hundreds of megabytes of
//! candidate bitstrings, so the candidate list is capped by `max_ppd` and
//! by `j^d ≤ max_partitions` (see `PpdPolicy::auto` and DESIGN.md). The
//! caps only ever shrink the candidate set; the selection rule is the
//! paper's.

use skymr_common::{BitGrid, Counters, Error, Tuple};
use skymr_mapreduce::{
    run_job, ClusterConfig, Collector, Emitter, FaultTolerance, JobConfig, JobMetrics, MapFactory,
    MapTask, OutputCollector, ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::bitstring::job::BitstringInfo;
use crate::bitstring::Bitstring;
use crate::grid::Grid;

/// The candidate PPDs `2..=n_m` for a dataset of `cardinality` tuples in
/// `dim` dimensions, capped by `max_ppd` and `max_partitions`.
pub fn candidate_ppds(
    cardinality: usize,
    dim: usize,
    max_ppd: usize,
    max_partitions: usize,
) -> Vec<usize> {
    let nm_real = (cardinality.max(1) as f64).powf(1.0 / dim as f64).floor() as usize;
    let mut nm = nm_real.clamp(2, max_ppd.max(2));
    // Shrink until the largest candidate grid fits the partition budget.
    while nm > 2
        && nm
            .checked_pow(dim as u32)
            .map_or(true, |p| p > max_partitions)
    {
        nm -= 1;
    }
    (2..=nm).collect()
}

/// Mapper: one local bitstring per candidate PPD, emitted keyed by the
/// candidate index.
#[derive(Debug)]
pub struct MultiPpdMapFactory {
    grids: Vec<Grid>,
}

impl MultiPpdMapFactory {
    /// A factory over the candidate grids.
    pub fn new(grids: Vec<Grid>) -> Self {
        Self { grids }
    }
}

/// Per-split mapper state: the candidate-indexed local bitstrings.
#[derive(Debug)]
pub struct MultiPpdMapTask {
    grids: Vec<Grid>,
    locals: Vec<BitGrid>,
    counters: Counters,
}

impl MapTask for MultiPpdMapTask {
    type In = Tuple;
    type K = u32;
    type V = BitGrid;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u32, BitGrid>) {
        for (grid, local) in self.grids.iter().zip(self.locals.iter_mut()) {
            local.set(grid.partition_of(input));
        }
    }

    fn finish(&mut self, out: &mut Emitter<u32, BitGrid>) {
        // Grid-cell occupancy of the finest candidate grid — the same
        // signal the fixed-PPD mapper records, on the grid that resolves
        // skew best.
        if let Some(local) = self.locals.last() {
            self.counters
                .add("map.local_partitions_set", local.count_ones() as u64);
        }
        for (j, local) in self.locals.drain(..).enumerate() {
            out.emit(j as u32, local);
        }
    }
}

impl MapFactory for MultiPpdMapFactory {
    type Task = MultiPpdMapTask;
    fn create(&self, ctx: &TaskContext) -> MultiPpdMapTask {
        MultiPpdMapTask {
            locals: self
                .grids
                .iter()
                .map(|g| BitGrid::zeros(g.num_partitions()))
                .collect(),
            grids: self.grids.clone(),
            counters: ctx.counters.clone(),
        }
    }
}

/// Reducer: merges per-candidate bitstrings, scores each candidate, and
/// outputs the winner's (pruned) bitstring.
#[derive(Debug)]
pub struct MultiPpdReduceFactory {
    grids: Vec<Grid>,
    cardinality: usize,
    prune: bool,
}

impl MultiPpdReduceFactory {
    /// A factory producing the single selection reducer.
    pub fn new(grids: Vec<Grid>, cardinality: usize, prune: bool) -> Self {
        Self {
            grids,
            cardinality,
            prune,
        }
    }
}

/// Selection output: the winning candidate and its bitstring.
#[derive(Debug, Clone)]
pub struct PpdSelection {
    /// The chosen PPD.
    pub ppd: usize,
    /// Non-empty partition count `ρ` of the winning grid before pruning.
    pub non_empty: u64,
    /// The winning grid's (pruned) bit pattern.
    pub bits: BitGrid,
}

/// The selection reducer's state: merged bitstrings per candidate.
#[derive(Debug)]
pub struct MultiPpdReduceTask {
    grids: Vec<Grid>,
    cardinality: usize,
    prune: bool,
    merged: Vec<Option<BitGrid>>,
    counters: Counters,
}

impl ReduceTask for MultiPpdReduceTask {
    type K = u32;
    type V = BitGrid;
    type Out = PpdSelection;

    fn reduce(&mut self, key: u32, values: Vec<BitGrid>, _out: &mut OutputCollector<PpdSelection>) {
        let slot = &mut self.merged[key as usize];
        for local in values {
            match slot {
                Some(acc) => acc.or_assign(&local),
                None => *slot = Some(local),
            }
        }
    }

    fn finish(&mut self, out: &mut OutputCollector<PpdSelection>) {
        // Score every candidate: |c/ρ_j − c/j^d|, smaller is better.
        // Ties break toward the *larger* grid: on near-uniform data every
        // fully occupied candidate scores ~0 (ρ_j = j^d), and among those
        // the finest grid prunes strictly more while being equally
        // consistent with the uniform assumption.
        let c = self.cardinality as f64;
        let mut best: Option<(f64, usize)> = None;
        for (j, slot) in self.merged.iter().enumerate() {
            let Some(bits) = slot else { continue };
            let rho = bits.count_ones();
            if rho == 0 {
                continue;
            }
            let grid = &self.grids[j];
            let target = c / grid.num_partitions() as f64;
            let estimate = c / rho as f64;
            let score = (estimate - target).abs();
            if best.map_or(true, |(s, _)| score <= s) {
                best = Some((score, j));
            }
        }
        let Some((_, j)) = best else { return };
        let grid = self.grids[j];
        // The winner was scored above, so its slot is occupied.
        let Some(bits) = self.merged[j].take() else {
            return;
        };
        let non_empty = bits.count_ones() as u64;
        let mut bs = Bitstring::from_parts(grid, bits);
        if self.prune {
            bs.prune_dominated();
        }
        // Same occupancy / DR-pruning story the fixed-PPD reducer records,
        // plus the PPD the selection settled on.
        let surviving = bs.count_set() as u64;
        self.counters.add("reduce.selected_ppd", grid.ppd() as u64);
        self.counters.add("reduce.non_empty_partitions", non_empty);
        self.counters.add("reduce.surviving_partitions", surviving);
        self.counters.add(
            "reduce.dr_pruned_partitions",
            non_empty.saturating_sub(surviving),
        );
        out.collect(PpdSelection {
            ppd: grid.ppd(),
            non_empty,
            bits: bs.bits().clone(),
        });
    }
}

impl ReduceFactory for MultiPpdReduceFactory {
    type Task = MultiPpdReduceTask;
    fn create(&self, ctx: &TaskContext) -> MultiPpdReduceTask {
        MultiPpdReduceTask {
            merged: vec![None; self.grids.len()],
            grids: self.grids.clone(),
            cardinality: self.cardinality,
            prune: self.prune,
            counters: ctx.counters.clone(),
        }
    }
}

/// Runs the multi-PPD bitstring job and returns the winning bitstring.
#[allow(clippy::too_many_arguments)]
pub fn run_ppd_selection_job(
    cluster: &ClusterConfig,
    splits: &[Vec<Tuple>],
    dim: usize,
    cardinality: usize,
    max_ppd: usize,
    max_partitions: usize,
    prune: bool,
    ft: &FaultTolerance,
    telemetry: Option<&Collector>,
) -> skymr_common::Result<(Bitstring, BitstringInfo, JobMetrics)> {
    let candidates = candidate_ppds(cardinality, dim, max_ppd, max_partitions);
    let grids: Vec<Grid> = candidates
        .iter()
        .map(|&n| Grid::new(dim, n))
        .collect::<Result<_, _>>()?;
    if grids.is_empty() {
        return Err(Error::InvalidConfig("no PPD candidates".into()));
    }
    let config = JobConfig::new("bitstring-ppd", 1)
        .with_fault_tolerance(ft)
        .with_collector(telemetry.cloned());
    let outcome = run_job(
        cluster,
        &config,
        splits,
        &MultiPpdMapFactory::new(grids.clone()),
        &MultiPpdReduceFactory::new(grids.clone(), cardinality, prune),
        &SingleReducerPartitioner,
    )?;
    let metrics = outcome.metrics.clone();
    let selection = outcome.into_flat_output().into_iter().next();
    let (grid, bits, non_empty) = match selection {
        Some(sel) => {
            let grid = grids
                .iter()
                .copied()
                .find(|g| g.ppd() == sel.ppd)
                .ok_or_else(|| {
                    Error::InvalidConfig(format!("selected PPD {} is not a candidate", sel.ppd))
                })?;
            (grid, sel.bits, sel.non_empty as usize)
        }
        // Empty input: fall back to the smallest candidate grid.
        None => (grids[0], BitGrid::zeros(grids[0].num_partitions()), 0),
    };
    let bs = Bitstring::from_parts(grid, bits);
    let info = BitstringInfo {
        ppd: grid.ppd(),
        non_empty,
        surviving: bs.count_set(),
    };
    Ok((bs, info, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_follow_root_rule() {
        // c = 10_000, d = 2 -> nm = 100, capped at 32.
        assert_eq!(
            candidate_ppds(10_000, 2, 32, 1 << 18),
            (2..=32).collect::<Vec<_>>()
        );
        // c = 10_000, d = 4 -> nm = 10.
        assert_eq!(
            candidate_ppds(10_000, 4, 32, 1 << 18),
            (2..=10).collect::<Vec<_>>()
        );
        // Tiny cardinality still yields the minimal candidate.
        assert_eq!(candidate_ppds(3, 5, 32, 1 << 18), vec![2]);
    }

    #[test]
    fn candidates_respect_partition_budget() {
        // d = 8: j^8 <= 4096 forces j <= 2.
        assert_eq!(candidate_ppds(1_000_000, 8, 32, 4096), vec![2]);
        // d = 4: j^4 <= 10_000 allows j up to 10.
        let c = candidate_ppds(1_000_000, 4, 32, 10_000);
        assert_eq!(*c.last().unwrap(), 10);
    }

    #[test]
    fn selection_runs_and_picks_a_candidate() {
        use skymr_datagen::{generate, Distribution};
        let ds = generate(Distribution::Independent, 2, 2_000, 1);
        let (bs, info, metrics) = run_ppd_selection_job(
            &ClusterConfig::test(),
            &ds.split(4),
            2,
            ds.len(),
            16,
            1 << 16,
            true,
            &FaultTolerance::none(),
            None,
        )
        .unwrap();
        assert!(info.ppd >= 2 && info.ppd <= 16);
        assert_eq!(bs.grid().ppd(), info.ppd);
        assert!(info.non_empty > 0);
        assert!(info.surviving <= info.non_empty);
        assert_eq!(metrics.reduce_tasks, 1);
        // The shuffle carried one bitstring per candidate per mapper.
        assert_eq!(metrics.map_output_records, 4 * 15);
    }

    #[test]
    fn selection_prefers_tpp_match() {
        // With c = 4096 in 2-D, the target TPP for grid j is c/j²; a
        // uniform-ish dataset should make the reducer pick a mid-size grid
        // where occupancy ρ_j tracks j² closely. We only assert the scoring
        // is sane: the winner's |c/ρ − c/j²| is minimal among candidates.
        use skymr_datagen::{generate, Distribution};
        let ds = generate(Distribution::Independent, 2, 4_096, 9);
        let candidates = candidate_ppds(ds.len(), 2, 16, 1 << 16);
        let cluster = ClusterConfig::test();
        let ft = FaultTolerance::none();
        let (bs, _, _) = run_ppd_selection_job(
            &cluster,
            &ds.split(2),
            2,
            ds.len(),
            16,
            1 << 16,
            false,
            &ft,
            None,
        )
        .unwrap();
        // Recompute every candidate's score locally.
        let c = ds.len() as f64;
        let mut best = f64::INFINITY;
        let mut best_ppd = 0;
        for &j in &candidates {
            let grid = Grid::new(2, j).unwrap();
            let local = Bitstring::from_tuples(grid, ds.tuples());
            let rho = local.count_set() as f64;
            let score = (c / rho - c / grid.num_partitions() as f64).abs();
            if score <= best {
                best = score;
                best_ppd = j;
            }
        }
        assert_eq!(bs.grid().ppd(), best_ppd);
    }

    #[test]
    fn empty_input_falls_back_gracefully() {
        let splits: Vec<Vec<Tuple>> = vec![vec![]];
        let ft = FaultTolerance::none();
        let (bs, info, _) = run_ppd_selection_job(
            &ClusterConfig::test(),
            &splits,
            3,
            0,
            8,
            1 << 12,
            true,
            &ft,
            None,
        )
        .unwrap();
        assert_eq!(info.non_empty, 0);
        assert_eq!(bs.count_set(), 0);
    }
}
