//! The bitstring-generation MapReduce job (paper Algorithms 1 and 2,
//! Figure 3) and the shared driver used by both skyline algorithms.

use skymr_common::{BitGrid, Counters, Tuple};
use skymr_mapreduce::{
    run_job, ClusterConfig, Collector, Emitter, FaultTolerance, JobConfig, JobMetrics, MapFactory,
    MapTask, OutputCollector, ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::bitstring::ppd::run_ppd_selection_job;
use crate::bitstring::Bitstring;
use crate::config::{PpdPolicy, SkylineConfig};
use crate::grid::Grid;

/// What the bitstring pre-job learned about the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitstringInfo {
    /// PPD of the grid that was (chosen and) used.
    pub ppd: usize,
    /// Non-empty partitions before pruning (the paper's `ρ`).
    pub non_empty: usize,
    /// Partitions surviving dominance pruning (Equation 2).
    pub surviving: usize,
}

/// Mapper (Algorithm 1): builds a local bitstring for its split and emits
/// it once the split is exhausted.
#[derive(Debug)]
pub struct BitstringMapFactory {
    grid: Grid,
}

impl BitstringMapFactory {
    /// A factory producing mappers for `grid`.
    pub fn new(grid: Grid) -> Self {
        Self { grid }
    }
}

/// Per-split mapper state: the local bitstring `BS_{R_i}`.
#[derive(Debug)]
pub struct BitstringMapTask {
    grid: Grid,
    local: BitGrid,
    counters: Counters,
}

impl MapTask for BitstringMapTask {
    type In = Tuple;
    type K = u8;
    type V = BitGrid;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u8, BitGrid>) {
        self.local.set(self.grid.partition_of(input));
    }

    fn finish(&mut self, out: &mut Emitter<u8, BitGrid>) {
        // Grid-cell occupancy of this split's local bitstring.
        self.counters
            .add("map.local_partitions_set", self.local.count_ones() as u64);
        out.emit(0, std::mem::replace(&mut self.local, BitGrid::zeros(0)));
    }
}

impl MapFactory for BitstringMapFactory {
    type Task = BitstringMapTask;
    fn create(&self, ctx: &TaskContext) -> BitstringMapTask {
        BitstringMapTask {
            grid: self.grid,
            local: BitGrid::zeros(self.grid.num_partitions()),
            counters: ctx.counters.clone(),
        }
    }
}

/// Reducer (Algorithm 2): ORs all local bitstrings and prunes dominated
/// partitions.
#[derive(Debug)]
pub struct BitstringReduceFactory {
    grid: Grid,
    prune: bool,
}

impl BitstringReduceFactory {
    /// A factory producing the single merge reducer.
    pub fn new(grid: Grid, prune: bool) -> Self {
        Self { grid, prune }
    }
}

/// The single reducer's state.
#[derive(Debug)]
pub struct BitstringReduceTask {
    grid: Grid,
    prune: bool,
    counters: Counters,
}

/// Reducer output: the global bitstring plus its pre-pruning occupancy.
#[derive(Debug, Clone)]
pub struct BitstringJobOutput {
    /// The (pruned) global bitstring's bit pattern.
    pub bits: BitGrid,
    /// Non-empty partition count before pruning.
    pub non_empty: u64,
}

impl ReduceTask for BitstringReduceTask {
    type K = u8;
    type V = BitGrid;
    type Out = BitstringJobOutput;

    fn reduce(
        &mut self,
        _key: u8,
        values: Vec<BitGrid>,
        out: &mut OutputCollector<BitstringJobOutput>,
    ) {
        let mut merged = BitGrid::zeros(self.grid.num_partitions());
        for local in &values {
            merged.or_assign(local);
        }
        let non_empty = merged.count_ones() as u64;
        let mut bs = Bitstring::from_parts(self.grid, merged);
        if self.prune {
            bs.prune_dominated();
        }
        // Occupancy and DR-pruning effect of the merged global bitstring
        // (Equation 2): non-empty cells, survivors, and cells pruned.
        let surviving = bs.count_set() as u64;
        self.counters.add("reduce.non_empty_partitions", non_empty);
        self.counters.add("reduce.surviving_partitions", surviving);
        self.counters.add(
            "reduce.dr_pruned_partitions",
            non_empty.saturating_sub(surviving),
        );
        out.collect(BitstringJobOutput {
            bits: bs.bits().clone(),
            non_empty,
        });
    }
}

impl ReduceFactory for BitstringReduceFactory {
    type Task = BitstringReduceTask;
    fn create(&self, ctx: &TaskContext) -> BitstringReduceTask {
        BitstringReduceTask {
            grid: self.grid,
            prune: self.prune,
            counters: ctx.counters.clone(),
        }
    }
}

/// Runs the bitstring-generation job for a fixed grid.
///
/// Fails with [`skymr_common::Error::JobFailed`] when a task exhausts the
/// retry budget of `ft`.
pub fn run_bitstring_job(
    cluster: &ClusterConfig,
    splits: &[Vec<Tuple>],
    grid: Grid,
    prune: bool,
    ft: &FaultTolerance,
    telemetry: Option<&Collector>,
) -> skymr_common::Result<(Bitstring, BitstringInfo, JobMetrics)> {
    let config = JobConfig::new("bitstring", 1)
        .with_fault_tolerance(ft)
        .with_collector(telemetry.cloned());
    let outcome = run_job(
        cluster,
        &config,
        splits,
        &BitstringMapFactory::new(grid),
        &BitstringReduceFactory::new(grid, prune),
        &SingleReducerPartitioner,
    )?;
    let metrics = outcome.metrics.clone();
    let output = outcome
        .into_flat_output()
        .into_iter()
        .next()
        .unwrap_or_else(|| BitstringJobOutput {
            bits: BitGrid::zeros(grid.num_partitions()),
            non_empty: 0,
        });
    let bs = Bitstring::from_parts(grid, output.bits);
    let info = BitstringInfo {
        ppd: grid.ppd(),
        non_empty: output.non_empty as usize,
        surviving: bs.count_set(),
    };
    Ok((bs, info, metrics))
}

/// Runs whichever bitstring pre-job the configuration asks for: the fixed-
/// PPD job (Algorithms 1–2) or the Section 3.3 multi-PPD selection job.
///
/// `dim`/`cardinality` describe the full dataset the splits were cut from.
pub fn generate_bitstring(
    splits: &[Vec<Tuple>],
    dim: usize,
    cardinality: usize,
    config: &SkylineConfig,
) -> skymr_common::Result<(Bitstring, BitstringInfo, JobMetrics)> {
    match config.ppd {
        PpdPolicy::Fixed(n) => {
            let grid = Grid::new(dim, n)?;
            run_bitstring_job(
                &config.cluster,
                splits,
                grid,
                config.prune_bitstring,
                &config.fault_tolerance,
                config.telemetry.as_ref(),
            )
        }
        PpdPolicy::Auto {
            max_ppd,
            max_partitions,
        } => run_ppd_selection_job(
            &config.cluster,
            splits,
            dim,
            cardinality,
            max_ppd,
            max_partitions,
            config.prune_bitstring,
            &config.fault_tolerance,
            config.telemetry.as_ref(),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_common::Dataset;
    use skymr_mapreduce::FaultPlan;

    fn dataset() -> Dataset {
        // 3×3 grid occupancy mirroring Figure 2: partitions 1,2,3,4,6.
        let tuples = vec![
            Tuple::new(0, vec![0.4, 0.1]),   // (1,0) -> 1
            Tuple::new(1, vec![0.8, 0.2]),   // (2,0) -> 2
            Tuple::new(2, vec![0.1, 0.5]),   // (0,1) -> 3
            Tuple::new(3, vec![0.5, 0.5]),   // (1,1) -> 4
            Tuple::new(4, vec![0.2, 0.9]),   // (0,2) -> 6
            Tuple::new(5, vec![0.45, 0.15]), // (1,0) -> 1 again
        ];
        Dataset::new(2, tuples).unwrap()
    }

    #[test]
    fn job_reproduces_figure2_bitstring() {
        let ds = dataset();
        let grid = Grid::new(2, 3).unwrap();
        let (bs, info, metrics) = run_bitstring_job(
            &ClusterConfig::test(),
            &ds.split(3),
            grid,
            false,
            &FaultTolerance::none(),
            None,
        )
        .unwrap();
        let rendered: String = (0..9)
            .map(|i| if bs.is_set(i) { '1' } else { '0' })
            .collect();
        assert_eq!(rendered, "011110100");
        assert_eq!(info.non_empty, 5);
        assert_eq!(info.surviving, 5);
        assert_eq!(metrics.map_tasks, 3);
        assert_eq!(metrics.reduce_tasks, 1);
    }

    #[test]
    fn pruning_runs_in_reducer() {
        // Add a far-corner tuple dominated by partition 4's contents.
        let mut tuples = dataset().into_tuples();
        tuples.push(Tuple::new(6, vec![0.95, 0.95])); // (2,2) -> 8
        let ds = Dataset::new(2, tuples).unwrap();
        let grid = Grid::new(2, 3).unwrap();
        let (bs, info, _) = run_bitstring_job(
            &ClusterConfig::test(),
            &ds.split(2),
            grid,
            true,
            &FaultTolerance::none(),
            None,
        )
        .unwrap();
        assert!(
            !bs.is_set(8),
            "partition 8 is dominated by partition 4 and must be pruned"
        );
        assert_eq!(info.non_empty, 6);
        assert_eq!(info.surviving, 5);
    }

    #[test]
    fn job_is_split_invariant() {
        let ds = dataset();
        let grid = Grid::new(2, 3).unwrap();
        let cluster = ClusterConfig::test();
        let ft = FaultTolerance::none();
        let (a, _, _) = run_bitstring_job(&cluster, &ds.split(1), grid, true, &ft, None).unwrap();
        let (b, _, _) = run_bitstring_job(&cluster, &ds.split(5), grid, true, &ft, None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_empty_bitstring() {
        let grid = Grid::new(2, 3).unwrap();
        let splits: Vec<Vec<Tuple>> = vec![vec![], vec![]];
        let (bs, info, _) = run_bitstring_job(
            &ClusterConfig::test(),
            &splits,
            grid,
            true,
            &FaultTolerance::none(),
            None,
        )
        .unwrap();
        assert_eq!(bs.count_set(), 0);
        assert_eq!(info.non_empty, 0);
    }

    #[test]
    fn generate_bitstring_respects_fixed_policy() {
        let ds = dataset();
        let config = SkylineConfig::test().with_ppd(2);
        let (bs, info, _) = generate_bitstring(&ds.split(2), ds.dim(), ds.len(), &config).unwrap();
        assert_eq!(bs.grid().ppd(), 2);
        assert_eq!(info.ppd, 2);
    }

    #[test]
    fn job_survives_injected_map_failures() {
        let ds = dataset();
        let grid = Grid::new(2, 3).unwrap();
        let cluster = ClusterConfig::test();
        let config = JobConfig::new("bitstring", 1).with_faults(FaultPlan::fail_maps([0]));
        let outcome = run_job(
            &cluster,
            &config,
            &ds.split(3),
            &BitstringMapFactory::new(grid),
            &BitstringReduceFactory::new(grid, false),
            &SingleReducerPartitioner,
        )
        .unwrap();
        assert_eq!(outcome.metrics.map_retries, 1);
        let output = outcome.into_flat_output().pop().unwrap();
        let bs = Bitstring::from_parts(grid, output.bits);
        assert_eq!(bs.count_set(), 5);
    }
}
