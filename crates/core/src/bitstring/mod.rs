//! The bitstring representation of a grid partitioning (paper Section 3.2).
//!
//! A [`Bitstring`] pairs a [`Grid`] with a [`BitGrid`] whose bit `i` says
//! whether partition `p_i` is non-empty (Equation 1). After the MapReduce
//! generation job merges all local bitstrings, [`Bitstring::prune_dominated`]
//! clears every partition that lies in some non-empty partition's
//! dominating region (Equation 2), so dominated partitions — and all their
//! tuples — never reach the skyline computation.

pub mod job;
pub mod ppd;

use skymr_common::{BitGrid, Tuple};

use crate::grid::Grid;

/// A grid plus the non-empty/surviving flags of its partitions.
///
/// ```
/// use skymr::{Bitstring, Grid};
/// use skymr_common::Tuple;
///
/// // The paper's Figure 2: a 3×3 grid whose non-empty partitions
/// // {1,2,3,4,6} render as the column-major bitstring 011110100.
/// let grid = Grid::new(2, 3).unwrap();
/// let tuples = [
///     Tuple::new(0, vec![0.4, 0.1]),
///     Tuple::new(1, vec![0.8, 0.2]),
///     Tuple::new(2, vec![0.1, 0.5]),
///     Tuple::new(3, vec![0.5, 0.5]),
///     Tuple::new(4, vec![0.2, 0.9]),
/// ];
/// let bs = Bitstring::from_tuples(grid, &tuples);
/// let rendered: String = (0..9).map(|i| if bs.is_set(i) { '1' } else { '0' }).collect();
/// assert_eq!(rendered, "011110100");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstring {
    grid: Grid,
    bits: BitGrid,
}

impl Bitstring {
    /// An all-zero bitstring for `grid`.
    pub fn empty(grid: Grid) -> Self {
        Self {
            bits: BitGrid::zeros(grid.num_partitions()),
            grid,
        }
    }

    /// Builds a local bitstring from a subset of tuples — the mapper of the
    /// bitstring-generation job (Algorithm 1).
    pub fn from_tuples<'a>(grid: Grid, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut bs = Self::empty(grid);
        for t in tuples {
            bs.bits.set(grid.partition_of(t));
        }
        bs
    }

    /// Reconstructs a bitstring from its parts (used when the bit pattern
    /// travelled through the MapReduce shuffle detached from its grid).
    pub fn from_parts(grid: Grid, bits: BitGrid) -> Self {
        assert_eq!(
            bits.len(),
            grid.num_partitions(),
            "bit pattern does not fit grid"
        );
        Self { grid, bits }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The raw bit pattern.
    #[inline]
    pub fn bits(&self) -> &BitGrid {
        &self.bits
    }

    /// `true` iff partition `i` is flagged (non-empty, and — after pruning —
    /// not dominated).
    #[inline]
    pub fn is_set(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Number of flagged partitions (the paper's `ρ`).
    pub fn count_set(&self) -> usize {
        self.bits.count_ones()
    }

    /// Merges another local bitstring (bitwise OR — Algorithm 2, line 3).
    pub fn merge(&mut self, other: &Bitstring) {
        assert_eq!(
            self.grid, other.grid,
            "cannot merge bitstrings of different grids"
        );
        self.bits.or_assign(&other.bits);
    }

    /// Clears every partition dominated by some non-empty partition
    /// (Equation 2, Algorithm 2 lines 4–7).
    ///
    /// Runs in `O(n^d · d)` via a d-dimensional prefix-OR: partition `q` is
    /// dominated iff some non-empty `p` satisfies `p.c ≤ q.c − 1`
    /// componentwise, i.e. iff the prefix-OR of the non-empty flags is set
    /// at `q.c − (1,…,1)`. Equivalent to the naive
    /// [`Bitstring::prune_dominated_naive`] sweep (property-tested), which
    /// is `O(n^d · |DR|)`.
    pub fn prune_dominated(&mut self) {
        let n = self.grid.ppd();
        let d = self.grid.dim();
        let np = self.grid.num_partitions();
        if n < 2 {
            return; // No partition can dominate another.
        }
        // reach[c] := OR of non-empty over all p with p.c <= c.
        let mut reach: Vec<bool> = (0..np).map(|i| self.bits.get(i)).collect();
        let mut stride = 1usize;
        for _ in 0..d {
            for idx in 0..np {
                // Cell coordinate on this dimension: n >= 2 (early return
                // above) and stride >= 1, so the division cannot panic, and
                // a nonzero coordinate implies idx >= stride.
                let coord = (idx / stride) % n; // xtask: allow(panic-reachability)
                if coord >= 1 {
                    reach[idx] |= reach[idx - stride]; // xtask: allow(panic-reachability)
                }
            }
            stride *= n;
        }
        // offset of (1,1,…,1) in column-major indexing.
        let mut one_offset = 0usize;
        let mut s = 1usize;
        for _ in 0..d {
            one_offset += s;
            s *= n;
        }
        let mut coords = vec![0usize; d];
        for q in 0..np {
            if !self.bits.get(q) {
                continue;
            }
            self.grid.coords_into(q, &mut coords);
            if coords.iter().all(|&c| c >= 1) {
                // Every coordinate >= 1 implies q >= one_offset, the offset
                // of (1,…,1).
                let dominated = reach[q - one_offset]; // xtask: allow(panic-reachability)
                if dominated {
                    self.bits.clear(q);
                }
            }
        }
    }

    /// Reference implementation of Equation 2: for every non-empty `p`,
    /// clear all of `DR(p)`. Quadratic; kept for testing and tiny grids.
    pub fn prune_dominated_naive(&mut self) {
        let non_empty: Vec<usize> = self.bits.iter_ones().collect();
        for &p in &non_empty {
            for q in self.grid.dr(p) {
                if self.bits.get(q) {
                    self.bits.clear(q);
                }
            }
        }
    }

    /// Iterates over flagged partition indexes in increasing order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(d: usize, n: usize) -> Grid {
        Grid::new(d, n).unwrap()
    }

    #[test]
    fn from_tuples_flags_occupied_partitions() {
        let g = grid(2, 3);
        let tuples = vec![
            Tuple::new(0, vec![0.1, 0.1]),   // partition 0
            Tuple::new(1, vec![0.5, 0.5]),   // partition 4
            Tuple::new(2, vec![0.55, 0.45]), // partition 4 again
        ];
        let bs = Bitstring::from_tuples(g, &tuples);
        assert!(bs.is_set(0) && bs.is_set(4));
        assert_eq!(bs.count_set(), 2);
    }

    #[test]
    fn merge_is_bitwise_or() {
        let g = grid(2, 3);
        let mut a = Bitstring::from_tuples(g, &[Tuple::new(0, vec![0.1, 0.1])]);
        let b = Bitstring::from_tuples(g, &[Tuple::new(1, vec![0.9, 0.9])]);
        a.merge(&b);
        assert!(a.is_set(0) && a.is_set(8));
    }

    #[test]
    fn figure2_prune_example() {
        // Figure 2 / Section 6: with non-empty {p1,p2,p3,p4,p6} in the 3×3
        // grid, p4 (center) has DR {p8} — p8 is empty, so pruning keeps all
        // five partitions.
        let g = grid(2, 3);
        let mut bs = Bitstring::empty(g);
        for i in [1, 2, 3, 4, 6] {
            let mut b = bs.bits().clone();
            b.set(i);
            bs = Bitstring::from_parts(g, b);
        }
        let mut pruned = bs.clone();
        pruned.prune_dominated();
        assert_eq!(pruned, bs);
    }

    #[test]
    fn full_grid_prunes_to_origin_surfaces() {
        // Section 6: on a fully occupied 3×3 grid, pruning leaves the two
        // origin-side surfaces (5 partitions: p0,p1,p2,p3,p6 in the paper's
        // labeling); the inner 2×2 block {p4,p5,p7,p8} is dominated by p0.
        let g = grid(2, 3);
        let mut bits = BitGrid::zeros(9);
        for i in 0..9 {
            bits.set(i);
        }
        let mut bs = Bitstring::from_parts(g, bits);
        bs.prune_dominated();
        let survivors: Vec<usize> = bs.iter_set().collect();
        assert_eq!(survivors, vec![0, 1, 2, 3, 6]);
        assert_eq!(survivors.len() as u64, crate::cost::rho_rem(3, 2));
    }

    #[test]
    fn prune_fast_equals_naive_on_dense_grids() {
        for (d, n) in [(1, 5), (2, 4), (3, 3), (4, 2)] {
            let g = grid(d, n);
            // Deterministic pseudo-random occupancy.
            let mut bits = BitGrid::zeros(g.num_partitions());
            let mut state = 0x9e3779b97f4a7c15u64;
            for i in 0..g.num_partitions() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state >> 62 != 0 {
                    bits.set(i);
                }
            }
            let mut fast = Bitstring::from_parts(g, bits.clone());
            let mut naive = Bitstring::from_parts(g, bits);
            fast.prune_dominated();
            naive.prune_dominated_naive();
            assert_eq!(fast, naive, "prune mismatch d={d} n={n}");
        }
    }

    #[test]
    fn prune_noop_on_single_cell_grid() {
        let g = grid(3, 1);
        let mut bs = Bitstring::from_tuples(g, &[Tuple::new(0, vec![0.5, 0.5, 0.5])]);
        bs.prune_dominated();
        assert_eq!(bs.count_set(), 1);
    }

    #[test]
    fn origin_partition_survives_and_dominates_interior() {
        let g = grid(2, 4);
        let tuples = vec![
            Tuple::new(0, vec![0.1, 0.1]),  // (0,0)
            Tuple::new(1, vec![0.6, 0.6]),  // (2,2) — dominated by (0,0)
            Tuple::new(2, vec![0.9, 0.05]), // (3,0) — same row block, survives
        ];
        let mut bs = Bitstring::from_tuples(g, &tuples);
        bs.prune_dominated();
        assert!(bs.is_set(g.index_of(&[0, 0])));
        assert!(
            !bs.is_set(g.index_of(&[2, 2])),
            "interior partition must be pruned"
        );
        assert!(
            bs.is_set(g.index_of(&[3, 0])),
            "same-block partitions cannot be pruned"
        );
    }

    #[test]
    fn pruning_is_idempotent() {
        let g = grid(3, 3);
        let tuples: Vec<Tuple> = (0..50)
            .map(|i| {
                let f = i as f64 / 50.0;
                Tuple::new(i, vec![f, (f * 7.0) % 1.0, (f * 13.0) % 1.0])
            })
            .collect();
        let mut bs = Bitstring::from_tuples(g, &tuples);
        bs.prune_dominated();
        let once = bs.clone();
        bs.prune_dominated();
        assert_eq!(bs, once);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_parts_validates_length() {
        let g = grid(2, 3);
        Bitstring::from_parts(g, BitGrid::zeros(8));
    }
}
