//! k-skyband computation in MapReduce — an extension of the paper's
//! framework (`k = 1` is exactly the skyline).
//!
//! The *k-skyband* of `R` is the set of tuples dominated by fewer than `k`
//! others; it underlies top-k variants of every skyline application. The
//! paper's machinery generalizes cleanly:
//!
//! * the **bitstring** becomes a [`Countstring`]: per-partition *tuple
//!   counts* instead of occupancy bits. A partition `p` can be pruned when
//!   the total count of partitions that dominate it reaches `k` — every
//!   tuple of those partitions dominates every tuple of `p` (Lemma 1), so
//!   each of `p`'s tuples already has ≥ k dominators.
//! * mappers keep a **BNL-k window** per partition: a tuple is discarded
//!   once it has accumulated `k` observed dominators; window tuples track
//!   a (possibly under-counted) dominator tally.
//! * a single reducer merges the windows and **re-counts exactly** over
//!   the retained candidates, using anti-dominating regions to limit the
//!   partition pairs inspected, and outputs tuples with fewer than `k`
//!   candidate dominators.
//!
//! **Why re-counting over retained candidates is exact** (the witness
//! theorem): consider any tuple `x` with dominator set `D` inside one
//! mapper's split, and suppose some `y ∈ D` was discarded. Pick the
//! discarded `y ∈ D` with the smallest observed count; `y` had ≥ k
//! dominators, all of which dominate `x` too (transitivity) and all of
//! which have strictly smaller dominator sets than `y` — so by minimality
//! they were all retained. Hence the retained candidates of every split
//! contain at least `min(|D|, k)` dominators of `x`, and the reducer's
//! threshold test `count < k` over all candidates agrees with the truth.

use std::collections::BTreeMap;
use std::sync::Arc;

use skymr_common::dominance::dominates;
use skymr_common::{dataset::canonicalize, ByteSized, Counters, Dataset, Tuple, Wire, WireCursor};
use skymr_mapreduce::{
    run_job, Emitter, JobConfig, JobMetrics, MapFactory, MapTask, OutputCollector, PipelineMetrics,
    ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::config::{PpdPolicy, SkylineConfig};
use crate::grid::Grid;
use crate::result::{RunInfo, SkylineRun};

// ---------------------------------------------------------------------
// Countstring: the counting generalization of the bitstring.
// ---------------------------------------------------------------------

/// Per-partition tuple counts over a grid, with `k`-dominance pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Countstring {
    grid: Grid,
    counts: Vec<u64>,
    /// Partitions pruned by the k-dominated-count rule (empty until
    /// [`Countstring::prune_dominated`] runs).
    pruned: Vec<bool>,
}

impl Countstring {
    /// An all-zero countstring for `grid`.
    pub fn empty(grid: Grid) -> Self {
        Self {
            grid,
            counts: vec![0; grid.num_partitions()],
            pruned: vec![false; grid.num_partitions()],
        }
    }

    /// Counts a subset of tuples (the mapper of the countstring job).
    pub fn from_tuples<'a>(grid: Grid, tuples: impl IntoIterator<Item = &'a Tuple>) -> Self {
        let mut cs = Self::empty(grid);
        for t in tuples {
            cs.counts[grid.partition_of(t)] += 1;
        }
        cs
    }

    /// The grid this countstring describes.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Tuple count of partition `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Merges another local countstring (element-wise addition — the
    /// counting analogue of the bitwise OR).
    pub fn merge(&mut self, other: &Countstring) {
        assert_eq!(
            self.grid, other.grid,
            "cannot merge countstrings of different grids"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Marks every partition whose dominating partitions hold at least `k`
    /// tuples in total. Runs in `O(n^d · d)` via d-dimensional prefix
    /// sums: the dominated-by count of `p` is the box sum of counts over
    /// `[0, p.c − 1]` componentwise.
    pub fn prune_dominated(&mut self, k: u64) {
        let dim = self.grid.dim();
        let n = self.grid.ppd();
        let np = self.counts.len();
        if n < 2 {
            return;
        }
        // prefix[c] = Σ counts over all q with q.c <= c (componentwise).
        let mut prefix: Vec<u64> = self.counts.clone();
        let mut stride = 1usize;
        for _ in 0..dim {
            for idx in 0..np {
                // n >= 2 (early return above) and stride >= 1, so the
                // division cannot panic, and a nonzero coordinate implies
                // idx >= stride.
                let coord = (idx / stride) % n; // xtask: allow(panic-reachability)
                if coord >= 1 {
                    let below = prefix[idx - stride]; // xtask: allow(panic-reachability)
                    prefix[idx] = prefix[idx].saturating_add(below);
                }
            }
            stride *= n;
        }
        let mut one_offset = 0usize;
        let mut s = 1usize;
        for _ in 0..dim {
            one_offset += s;
            s *= n;
        }
        for idx in 0..np {
            // All coordinates >= 1?
            let mut rest = idx;
            let mut all_ge1 = true;
            for _ in 0..dim {
                let coord = rest % n; // xtask: allow(panic-reachability) — n >= 2 above
                if coord == 0 {
                    all_ge1 = false;
                    break;
                }
                rest /= n;
            }
            if all_ge1 {
                // All coordinates >= 1 implies idx >= one_offset, the
                // offset of (1,…,1).
                let dominators = prefix[idx - one_offset]; // xtask: allow(panic-reachability)
                if dominators >= k {
                    self.pruned[idx] = true;
                }
            }
        }
    }

    /// `true` iff partition `i` holds tuples and is not pruned.
    pub fn is_active(&self, i: usize) -> bool {
        self.counts[i] > 0 && !self.pruned[i]
    }

    /// Number of active partitions.
    pub fn active_count(&self) -> usize {
        (0..self.counts.len())
            .filter(|&i| self.is_active(i))
            .count()
    }

    /// Number of non-empty partitions.
    pub fn non_empty_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

impl ByteSized for Countstring {
    fn byte_size(&self) -> u64 {
        8 + self.counts.len() as u64 * 8 + self.pruned.len() as u64
    }
}

impl Wire for Countstring {
    fn wire_encode(&self, out: &mut Vec<u8>) {
        (self.grid.dim() as u32).wire_encode(out);
        (self.grid.ppd() as u32).wire_encode(out);
        self.counts.wire_encode(out);
        self.pruned.wire_encode(out);
    }

    fn wire_decode(r: &mut WireCursor<'_>) -> Option<Self> {
        let dim = u32::wire_decode(r)? as usize;
        let ppd = u32::wire_decode(r)? as usize;
        let grid = Grid::new(dim, ppd).ok()?;
        let counts = Vec::<u64>::wire_decode(r)?;
        let pruned = Vec::<bool>::wire_decode(r)?;
        if counts.len() != grid.num_partitions() || pruned.len() != grid.num_partitions() {
            return None;
        }
        Some(Self {
            grid,
            counts,
            pruned,
        })
    }
}

// ---------------------------------------------------------------------
// BNL-k window.
// ---------------------------------------------------------------------

/// A window entry: the tuple plus its observed dominator tally.
pub type BandEntry = (Tuple, u32);

/// Inserts `t` into a BNL-k window: discarded once `k` dominators have
/// been observed; evicts entries whose tally reaches `k`.
pub fn band_insert(window: &mut Vec<BandEntry>, t: Tuple, k: u32) {
    let mut incoming_count = 0u32;
    let mut i = 0;
    while i < window.len() {
        if dominates(&window[i].0, &t) {
            incoming_count += 1;
            if incoming_count >= k {
                return;
            }
        }
        if dominates(&t, &window[i].0) {
            window[i].1 += 1;
            if window[i].1 >= k {
                window.swap_remove(i);
                continue;
            }
        }
        i += 1;
    }
    window.push((t, incoming_count));
}

/// Centralized k-skyband by exhaustive counting — the oracle for tests
/// and the reference the MapReduce pipeline is verified against.
pub fn skyband_reference(tuples: &[Tuple], k: u32) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = tuples
        .iter()
        .filter(|t| {
            let dominators = tuples.iter().filter(|o| dominates(o, t)).count();
            (dominators as u32) < k
        })
        .cloned()
        .collect();
    out.sort_by_key(|t| t.id);
    out
}

// ---------------------------------------------------------------------
// MapReduce jobs.
// ---------------------------------------------------------------------

struct CountMapFactory {
    grid: Grid,
}

struct CountMapTask {
    grid: Grid,
    local: Countstring,
}

impl MapTask for CountMapTask {
    type In = Tuple;
    type K = u8;
    type V = Countstring;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u8, Countstring>) {
        let p = self.grid.partition_of(input);
        self.local.counts[p] += 1;
    }

    fn finish(&mut self, out: &mut Emitter<u8, Countstring>) {
        out.emit(
            0,
            std::mem::replace(&mut self.local, Countstring::empty(self.grid)),
        );
    }
}

impl MapFactory for CountMapFactory {
    type Task = CountMapTask;
    fn create(&self, _ctx: &TaskContext) -> CountMapTask {
        CountMapTask {
            grid: self.grid,
            local: Countstring::empty(self.grid),
        }
    }
}

struct CountReduceFactory {
    grid: Grid,
    /// `Some(k)` marks k-dominated partitions pruned; `None` skips
    /// pruning (top-k dominating needs raw counts — every tuple is a
    /// potential dominated target).
    prune_k: Option<u64>,
}

struct CountReduceTask {
    grid: Grid,
    prune_k: Option<u64>,
}

impl ReduceTask for CountReduceTask {
    type K = u8;
    type V = Countstring;
    type Out = Countstring;

    fn reduce(
        &mut self,
        _key: u8,
        values: Vec<Countstring>,
        out: &mut OutputCollector<Countstring>,
    ) {
        let mut merged = Countstring::empty(self.grid);
        for local in &values {
            merged.merge(local);
        }
        if let Some(k) = self.prune_k {
            merged.prune_dominated(k);
        }
        out.collect(merged);
    }
}

impl ReduceFactory for CountReduceFactory {
    type Task = CountReduceTask;
    fn create(&self, _ctx: &TaskContext) -> CountReduceTask {
        CountReduceTask {
            grid: self.grid,
            prune_k: self.prune_k,
        }
    }
}

pub(crate) fn run_countstring_job(
    config: &SkylineConfig,
    splits: &[Vec<Tuple>],
    grid: Grid,
    prune_k: Option<u64>,
) -> skymr_common::Result<(Countstring, JobMetrics)> {
    let job = JobConfig::new("countstring", 1)
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let outcome = run_job(
        &config.cluster,
        &job,
        splits,
        &CountMapFactory { grid },
        &CountReduceFactory { grid, prune_k },
        &SingleReducerPartitioner,
    )?;
    let metrics = outcome.metrics.clone();
    let cs = outcome
        .into_flat_output()
        .into_iter()
        .next()
        .unwrap_or_else(|| Countstring::empty(grid));
    Ok((cs, metrics))
}

/// A mapper's emitted value: per-partition BNL-k windows.
pub type BandPayload = Vec<(u32, Vec<BandEntry>)>;

struct BandMapFactory {
    countstring: Arc<Countstring>,
    k: u32,
}

struct BandMapTask {
    grid: Grid,
    countstring: Arc<Countstring>,
    k: u32,
    windows: BTreeMap<u32, Vec<BandEntry>>,
    counters: Counters,
}

impl MapTask for BandMapTask {
    type In = Tuple;
    type K = u8;
    type V = BandPayload;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u8, BandPayload>) {
        let p = self.grid.partition_of(input);
        if self.countstring.is_active(p) {
            band_insert(
                self.windows.entry(p as u32).or_default(),
                input.clone(),
                self.k,
            );
        }
    }

    fn finish(&mut self, out: &mut Emitter<u8, BandPayload>) {
        self.counters.add(
            "band.map.candidates",
            self.windows.values().map(|w| w.len() as u64).sum(),
        );
        let payload: BandPayload = std::mem::take(&mut self.windows).into_iter().collect();
        out.emit(0, payload);
    }
}

impl MapFactory for BandMapFactory {
    type Task = BandMapTask;
    fn create(&self, ctx: &TaskContext) -> BandMapTask {
        BandMapTask {
            grid: self.countstring.grid(),
            countstring: Arc::clone(&self.countstring),
            k: self.k,
            windows: BTreeMap::new(),
            counters: ctx.counters.clone(),
        }
    }
}

struct BandReduceFactory {
    grid: Grid,
    k: u32,
}

struct BandReduceTask {
    grid: Grid,
    k: u32,
}

impl ReduceTask for BandReduceTask {
    type K = u8;
    type V = BandPayload;
    type Out = Tuple;

    fn reduce(&mut self, _key: u8, values: Vec<BandPayload>, out: &mut OutputCollector<Tuple>) {
        // Union of candidates per partition (tallies are re-derived).
        let mut candidates: BTreeMap<u32, Vec<Tuple>> = BTreeMap::new();
        for payload in values {
            for (p, window) in payload {
                candidates
                    .entry(p)
                    .or_default()
                    .extend(window.into_iter().map(|(t, _)| t));
            }
        }
        // Exact re-count per tuple over candidates in the partition itself
        // and its anti-dominating region (dominators live nowhere else).
        let mut p_coords = vec![0usize; self.grid.dim()];
        let mut q_coords = vec![0usize; self.grid.dim()];
        for (&p, tuples) in &candidates {
            self.grid.coords_into(p as usize, &mut p_coords);
            for t in tuples {
                let mut count = 0u32;
                'outer: for (&q, others) in &candidates {
                    self.grid.coords_into(q as usize, &mut q_coords);
                    let relevant =
                        q == p || q_coords.iter().zip(p_coords.iter()).all(|(&b, &a)| b <= a);
                    if !relevant {
                        continue;
                    }
                    for o in others {
                        if dominates(o, t) {
                            count += 1;
                            if count >= self.k {
                                break 'outer;
                            }
                        }
                    }
                }
                if count < self.k {
                    out.collect(t.clone());
                }
            }
        }
    }
}

impl ReduceFactory for BandReduceFactory {
    type Task = BandReduceTask;
    fn create(&self, _ctx: &TaskContext) -> BandReduceTask {
        BandReduceTask {
            grid: self.grid,
            k: self.k,
        }
    }
}

// ---------------------------------------------------------------------
// Multi-reducer variant (the MR-GPMRS topology generalized to bands).
// ---------------------------------------------------------------------

struct BandMultiMapFactory {
    countstring: Arc<Countstring>,
    plan: Arc<crate::groups::GroupPlan>,
    k: u32,
}

struct BandMultiMapTask {
    inner: BandMapTask,
    plan: Arc<crate::groups::GroupPlan>,
}

impl MapTask for BandMultiMapTask {
    type In = Tuple;
    type K = u32;
    type V = BandPayload;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u32, BandPayload>) {
        let p = self.inner.grid.partition_of(input);
        if self.inner.countstring.is_active(p) {
            band_insert(
                self.inner.windows.entry(p as u32).or_default(),
                input.clone(),
                self.inner.k,
            );
        }
    }

    fn finish(&mut self, out: &mut Emitter<u32, BandPayload>) {
        // Split the per-partition windows along the bucket partition sets
        // (replication included), exactly like MR-GPMRS's Algorithm 8.
        for (bucket_index, bucket) in self.plan.buckets.iter().enumerate() {
            let payload: BandPayload = self
                .inner
                .windows
                .iter()
                .filter(|(p, _)| bucket.partitions.contains(p))
                .map(|(p, w)| (*p, w.clone()))
                .collect();
            out.emit(bucket_index as u32, payload);
        }
    }
}

impl MapFactory for BandMultiMapFactory {
    type Task = BandMultiMapTask;
    fn create(&self, ctx: &TaskContext) -> BandMultiMapTask {
        BandMultiMapTask {
            inner: BandMapTask {
                grid: self.countstring.grid(),
                countstring: Arc::clone(&self.countstring),
                k: self.k,
                windows: BTreeMap::new(),
                counters: ctx.counters.clone(),
            },
            plan: Arc::clone(&self.plan),
        }
    }
}

struct BandMultiReduceFactory {
    grid: Grid,
    plan: Arc<crate::groups::GroupPlan>,
    k: u32,
}

struct BandMultiReduceTask {
    grid: Grid,
    plan: Arc<crate::groups::GroupPlan>,
    k: u32,
}

impl ReduceTask for BandMultiReduceTask {
    type K = u32;
    type V = BandPayload;
    type Out = Tuple;

    fn reduce(&mut self, key: u32, values: Vec<BandPayload>, out: &mut OutputCollector<Tuple>) {
        let bucket_index = key as usize;
        let mut candidates: BTreeMap<u32, Vec<Tuple>> = BTreeMap::new();
        for payload in values {
            for (p, window) in payload {
                candidates
                    .entry(p)
                    .or_default()
                    .extend(window.into_iter().map(|(t, _)| t));
            }
        }
        // Exact re-count for designated partitions only (Section 5.4.2
        // generalized): every candidate dominator of a designated
        // partition lives in its own group, hence in this bucket.
        let mut p_coords = vec![0usize; self.grid.dim()];
        let mut q_coords = vec![0usize; self.grid.dim()];
        for (&p, tuples) in &candidates {
            if self.plan.designated.get(&p) != Some(&bucket_index) {
                continue;
            }
            self.grid.coords_into(p as usize, &mut p_coords);
            for t in tuples {
                let mut count = 0u32;
                'outer: for (&q, others) in &candidates {
                    self.grid.coords_into(q as usize, &mut q_coords);
                    let relevant =
                        q == p || q_coords.iter().zip(p_coords.iter()).all(|(&b, &a)| b <= a);
                    if !relevant {
                        continue;
                    }
                    for o in others {
                        if dominates(o, t) {
                            count += 1;
                            if count >= self.k {
                                break 'outer;
                            }
                        }
                    }
                }
                if count < self.k {
                    out.collect(t.clone());
                }
            }
        }
    }
}

impl ReduceFactory for BandMultiReduceFactory {
    type Task = BandMultiReduceTask;
    fn create(&self, _ctx: &TaskContext) -> BandMultiReduceTask {
        BandMultiReduceTask {
            grid: self.grid,
            plan: Arc::clone(&self.plan),
            k: self.k,
        }
    }
}

fn skyband_grid(dataset: &Dataset, config: &SkylineConfig) -> skymr_common::Result<Grid> {
    match config.ppd {
        PpdPolicy::Fixed(n) => Grid::new(dataset.dim(), n),
        // The Section 3.3 heuristic targets occupancy, which counts also
        // capture; reuse its candidate rule on the fixed-size path.
        PpdPolicy::Auto {
            max_ppd,
            max_partitions,
        } => {
            let candidates = crate::bitstring::ppd::candidate_ppds(
                dataset.len(),
                dataset.dim(),
                max_ppd,
                max_partitions,
            );
            Grid::new(dataset.dim(), candidates.last().copied().unwrap_or(2))
        }
    }
}

/// Runs the k-skyband pipeline: countstring job, then a single-reducer
/// band job (the MR-GPSRS topology generalized to `k ≥ 1`).
///
/// ```
/// use skymr::{mr_skyband, SkylineConfig};
/// use skymr_datagen::{generate, Distribution};
///
/// let data = generate(Distribution::Independent, 3, 2_000, 1);
/// let config = SkylineConfig::test();
/// let skyline = mr_skyband(&data, 1, &config).unwrap(); // k = 1 is the skyline
/// let band3 = mr_skyband(&data, 3, &config).unwrap();
/// assert!(band3.skyline.len() >= skyline.skyline.len());
/// ```
///
/// # Errors
///
/// Fails on invalid configuration or `k == 0`.
pub fn mr_skyband(
    dataset: &Dataset,
    k: u32,
    config: &SkylineConfig,
) -> skymr_common::Result<SkylineRun> {
    config.validate()?;
    if k == 0 {
        return Err(skymr_common::Error::InvalidConfig(
            "k must be at least 1".into(),
        ));
    }
    let grid = skyband_grid(dataset, config)?;
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();

    let (countstring, cs_metrics) = run_countstring_job(config, &splits, grid, Some(k as u64))?;
    metrics.push(cs_metrics);
    let info = RunInfo {
        ppd: grid.ppd(),
        partitions: grid.num_partitions(),
        non_empty_partitions: countstring.non_empty_count(),
        surviving_partitions: countstring.active_count(),
        independent_groups: 0,
        buckets: 1,
    };

    let countstring = Arc::new(countstring);
    let job = JobConfig::new("skyband", 1)
        .with_cache_bytes(countstring.byte_size())
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let outcome = metrics.track(run_job(
        &config.cluster,
        &job,
        &splits,
        &BandMapFactory {
            countstring: Arc::clone(&countstring),
            k,
        },
        &BandReduceFactory { grid, k },
        &SingleReducerPartitioner,
    ))?;
    let mut counters = BTreeMap::new();
    for (key, v) in outcome.counters.snapshot() {
        counters.insert(format!("skyband.{key}"), v);
    }

    Ok(SkylineRun {
        skyline: canonicalize(outcome.into_flat_output()),
        metrics,
        counters,
        info,
    })
}

/// Runs the multi-reducer k-skyband pipeline: countstring job, independent
/// partition groups over the *active* partitions, then `config.reducers`
/// reducers finalizing their designated partitions in parallel (the
/// MR-GPMRS topology generalized to `k ≥ 1`).
///
/// Exactness note: a designated partition's candidate dominators live in
/// active partitions of its anti-dominating region, which are inside its
/// own independent group and therefore inside its bucket; the witness
/// theorem (module docs) covers dominators lost to pruning and windows.
///
/// # Errors
///
/// Fails on invalid configuration or `k == 0`.
pub fn mr_skyband_multi(
    dataset: &Dataset,
    k: u32,
    config: &SkylineConfig,
) -> skymr_common::Result<SkylineRun> {
    config.validate()?;
    if k == 0 {
        return Err(skymr_common::Error::InvalidConfig(
            "k must be at least 1".into(),
        ));
    }
    let grid = skyband_grid(dataset, config)?;
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();

    let (countstring, cs_metrics) = run_countstring_job(config, &splits, grid, Some(k as u64))?;
    metrics.push(cs_metrics);

    // Independent groups over the active partitions: the bitstring of the
    // active set feeds the unchanged group machinery.
    let mut active_bits = skymr_common::BitGrid::zeros(grid.num_partitions());
    for i in 0..grid.num_partitions() {
        if countstring.is_active(i) {
            active_bits.set(i);
        }
    }
    let active = crate::bitstring::Bitstring::from_parts(grid, active_bits);
    let plan = crate::groups::plan_groups(&active, config.reducers, config.merge_policy);
    let info = RunInfo {
        ppd: grid.ppd(),
        partitions: grid.num_partitions(),
        non_empty_partitions: countstring.non_empty_count(),
        surviving_partitions: countstring.active_count(),
        independent_groups: plan.groups.len(),
        buckets: plan.num_buckets(),
    };
    if plan.num_buckets() == 0 {
        return Ok(SkylineRun {
            skyline: Vec::new(),
            metrics,
            counters: BTreeMap::new(),
            info,
        });
    }

    let countstring = Arc::new(countstring);
    let plan = Arc::new(plan);
    let job = JobConfig::new("skyband-multi", plan.num_buckets())
        .with_cache_bytes(countstring.byte_size())
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let outcome = metrics.track(run_job(
        &config.cluster,
        &job,
        &splits,
        &BandMultiMapFactory {
            countstring: Arc::clone(&countstring),
            plan: Arc::clone(&plan),
            k,
        },
        &BandMultiReduceFactory {
            grid,
            plan: Arc::clone(&plan),
            k,
        },
        &skymr_mapreduce::ModuloPartitioner,
    ))?;
    let mut counters = BTreeMap::new();
    for (key, v) in outcome.counters.snapshot() {
        counters.insert(format!("skyband.{key}"), v);
    }

    Ok(SkylineRun {
        skyline: canonicalize(outcome.into_flat_output()),
        metrics,
        counters,
        info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_datagen::{generate, Distribution};

    fn t(id: u64, vals: &[f64]) -> Tuple {
        Tuple::new(id, vals.to_vec())
    }

    #[test]
    fn reference_band_known_case() {
        // Chain a ≺ b ≺ c: dominator counts 0, 1, 2.
        let tuples = vec![t(0, &[0.1, 0.1]), t(1, &[0.2, 0.2]), t(2, &[0.3, 0.3])];
        assert_eq!(skyband_reference(&tuples, 1).len(), 1);
        assert_eq!(skyband_reference(&tuples, 2).len(), 2);
        assert_eq!(skyband_reference(&tuples, 3).len(), 3);
    }

    #[test]
    fn band_insert_discards_after_k_dominators() {
        let mut window = Vec::new();
        band_insert(&mut window, t(0, &[0.1, 0.1]), 2);
        band_insert(&mut window, t(1, &[0.15, 0.15]), 2);
        // Dominated by both -> not inserted at k=2.
        band_insert(&mut window, t(2, &[0.2, 0.2]), 2);
        assert_eq!(window.len(), 2);
        // At k=3 it would be kept.
        let mut window = Vec::new();
        band_insert(&mut window, t(0, &[0.1, 0.1]), 3);
        band_insert(&mut window, t(1, &[0.15, 0.15]), 3);
        band_insert(&mut window, t(2, &[0.2, 0.2]), 3);
        assert_eq!(window.len(), 3);
    }

    #[test]
    fn band_insert_evicts_when_tally_reaches_k() {
        let mut window = Vec::new();
        band_insert(&mut window, t(0, &[0.5, 0.5]), 2);
        band_insert(&mut window, t(1, &[0.3, 0.3]), 2); // 1 dominator of t0
        assert_eq!(window.len(), 2);
        band_insert(&mut window, t(2, &[0.2, 0.2]), 2); // 2nd dominator: evict t0
        assert!(
            !window.iter().any(|(t, _)| t.id == 0),
            "t0 should be evicted at k=2"
        );
    }

    #[test]
    fn countstring_counts_and_merges() {
        let grid = Grid::new(2, 3).unwrap();
        let a = Countstring::from_tuples(grid, &[t(0, &[0.1, 0.1]), t(1, &[0.15, 0.12])]);
        let mut b = Countstring::from_tuples(grid, &[t(2, &[0.9, 0.9])]);
        b.merge(&a);
        assert_eq!(b.count(0), 2);
        assert_eq!(b.count(8), 1);
        assert_eq!(b.non_empty_count(), 2);
    }

    #[test]
    fn countstring_pruning_respects_k() {
        let grid = Grid::new(2, 3).unwrap();
        // Two tuples in partition 0 dominate partition 8 (far corner).
        let mut cs = Countstring::from_tuples(
            grid,
            &[t(0, &[0.1, 0.1]), t(1, &[0.2, 0.2]), t(2, &[0.9, 0.9])],
        );
        let mut cs1 = cs.clone();
        cs1.prune_dominated(1);
        assert!(!cs1.is_active(8), "k=1: one dominating tuple suffices");
        let mut cs2 = cs.clone();
        cs2.prune_dominated(2);
        assert!(!cs2.is_active(8), "k=2: two dominating tuples exist");
        cs.prune_dominated(3);
        assert!(
            cs.is_active(8),
            "k=3: only two dominating tuples, must survive"
        );
    }

    #[test]
    fn matches_reference_across_k() {
        let ds = generate(Distribution::Anticorrelated, 3, 400, 161);
        for k in [1u32, 2, 3, 5, 10] {
            let run = mr_skyband(&ds, k, &SkylineConfig::test()).unwrap();
            assert_eq!(
                run.skyline,
                skyband_reference(ds.tuples(), k),
                "k-skyband mismatch at k={k}"
            );
        }
    }

    #[test]
    fn k1_equals_skyline() {
        let ds = generate(Distribution::Independent, 4, 500, 162);
        let band = mr_skyband(&ds, 1, &SkylineConfig::test()).unwrap();
        let sky = crate::gpsrs::mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(band.skyline_ids(), sky.skyline_ids());
    }

    #[test]
    fn band_grows_with_k() {
        let ds = generate(Distribution::Independent, 3, 400, 163);
        let mut last = 0usize;
        for k in [1u32, 2, 4, 8] {
            let run = mr_skyband(&ds, k, &SkylineConfig::test()).unwrap();
            assert!(run.skyline.len() >= last, "band must be monotone in k");
            last = run.skyline.len();
        }
        assert!(
            last > mr_skyband(&ds, 1, &SkylineConfig::test())
                .unwrap()
                .skyline
                .len()
        );
    }

    #[test]
    fn invariant_to_job_shape() {
        let ds = generate(Distribution::Clustered { clusters: 3 }, 3, 300, 164);
        let oracle = skyband_reference(ds.tuples(), 3);
        for mappers in [1usize, 2, 5] {
            for ppd in [1usize, 2, 4] {
                let config = SkylineConfig::test().with_mappers(mappers).with_ppd(ppd);
                let run = mr_skyband(&ds, 3, &config).unwrap();
                assert_eq!(run.skyline, oracle, "m={mappers} ppd={ppd} broke the band");
            }
        }
    }

    #[test]
    fn duplicates_count_as_dominators_of_no_one() {
        // Equal tuples never dominate each other: all three stay at k=1.
        let ds = Dataset::new(
            2,
            vec![t(0, &[0.4, 0.4]), t(1, &[0.4, 0.4]), t(2, &[0.4, 0.4])],
        )
        .unwrap();
        let run = mr_skyband(&ds, 1, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline.len(), 3);
    }

    #[test]
    fn rejects_k_zero_and_empty_input_is_fine() {
        let ds = generate(Distribution::Independent, 2, 50, 165);
        assert!(mr_skyband(&ds, 0, &SkylineConfig::test()).is_err());
        let empty = Dataset::new(2, vec![]).unwrap();
        assert!(mr_skyband(&empty, 2, &SkylineConfig::test())
            .unwrap()
            .skyline
            .is_empty());
    }

    #[test]
    fn survives_injected_failures() {
        let ds = generate(Distribution::Anticorrelated, 3, 300, 166);
        let clean = mr_skyband(&ds, 2, &SkylineConfig::test()).unwrap();
        let mut config = SkylineConfig::test();
        config.fault_tolerance =
            skymr_mapreduce::FaultTolerance::with_plan(skymr_mapreduce::FaultPlan::fail_maps([
                0, 1,
            ]));
        let failed = mr_skyband(&ds, 2, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
    }

    #[test]
    fn multi_reducer_matches_single_and_reference() {
        let ds = generate(Distribution::Anticorrelated, 3, 500, 167);
        for k in [1u32, 2, 4] {
            let oracle = skyband_reference(ds.tuples(), k);
            for reducers in [1usize, 2, 4, 7] {
                let config = SkylineConfig::test().with_reducers(reducers);
                let run = mr_skyband_multi(&ds, k, &config).unwrap();
                assert_eq!(
                    run.skyline, oracle,
                    "multi band wrong at k={k} r={reducers}"
                );
                assert!(run.info.buckets <= reducers);
            }
        }
    }

    #[test]
    fn multi_reducer_reports_group_structure_and_dedups() {
        let ds = generate(Distribution::Anticorrelated, 2, 800, 168);
        let config = SkylineConfig::test().with_reducers(4).with_ppd(6);
        let run = mr_skyband_multi(&ds, 3, &config).unwrap();
        assert!(run.info.independent_groups >= 1);
        let mut ids = run.skyline_ids();
        let n = ids.len();
        ids.dedup();
        assert_eq!(
            ids.len(),
            n,
            "replicated partitions must be output exactly once"
        );
        assert_eq!(run.skyline, skyband_reference(ds.tuples(), 3));
    }

    #[test]
    fn multi_reducer_empty_input() {
        let empty = Dataset::new(3, vec![]).unwrap();
        let run = mr_skyband_multi(&empty, 2, &SkylineConfig::test()).unwrap();
        assert!(run.skyline.is_empty());
        assert_eq!(run.info.buckets, 0);
    }
}
