//! A hybrid MR-GPSRS/MR-GPMRS planner (paper Section 8, future work).
//!
//! The paper's experiments show MR-GPMRS winning when a large fraction of
//! tuples are in the skyline and MR-GPSRS winning when the fraction is
//! small, and its conclusion calls for "a hybrid method … able to switch
//! between the two algorithms automatically". The bitstring the pre-job
//! already computes is a free signal for that switch: the fraction of
//! non-empty partitions that *survive* dominance pruning upper-bounds the
//! skyline's spread across the data space. Dominated partitions hold no
//! skyline tuples, so when most non-empty partitions are pruned the
//! skyline is confined to a thin boundary and a single reducer suffices;
//! when most survive, the final merge is the bottleneck and multiple
//! reducers pay off.

use skymr_common::Dataset;

use crate::bitstring::Bitstring;
use crate::config::SkylineConfig;
use crate::gpmrs::mr_gpmrs;
use crate::gpsrs::mr_gpsrs;
use crate::result::SkylineRun;

/// The planner's decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridChoice {
    /// Run MR-GPSRS (small expected skyline).
    SingleReducer,
    /// Run MR-GPMRS with this many reducers.
    MultiReducer {
        /// Reducer count to use.
        reducers: usize,
    },
}

/// Decides between the two algorithms from bitstring statistics.
///
/// `survival_threshold` is the surviving/non-empty partition ratio above
/// which multiple reducers are used; the paper's crossovers (Figures 7–9)
/// correspond to roughly one third of non-empty partitions surviving.
pub fn choose(
    bitstring: &Bitstring,
    non_empty: usize,
    config: &SkylineConfig,
    survival_threshold: f64,
) -> HybridChoice {
    if non_empty == 0 {
        return HybridChoice::SingleReducer;
    }
    let surviving = bitstring.count_set();
    let ratio = surviving as f64 / non_empty as f64;
    if ratio > survival_threshold && config.reducers > 1 {
        HybridChoice::MultiReducer {
            reducers: config.reducers,
        }
    } else {
        HybridChoice::SingleReducer
    }
}

/// Default survival-ratio threshold (see [`choose`]).
pub const DEFAULT_SURVIVAL_THRESHOLD: f64 = 0.35;

/// Runs the hybrid pipeline: one bitstring probe job on a coarse grid,
/// then whichever skyline algorithm the probe favours.
///
/// The probe reuses the configured PPD policy; its cost is not double
/// counted because the chosen algorithm re-runs its own bitstring job
/// (conservative — a production system would reuse the probe's bitstring,
/// and `choose` is public precisely so callers can do that).
pub fn mr_hybrid(dataset: &Dataset, config: &SkylineConfig) -> skymr_common::Result<SkylineRun> {
    config.validate()?;
    let splits = dataset.split(config.mappers);
    let (bitstring, info, _probe_metrics) =
        crate::bitstring::job::generate_bitstring(&splits, dataset.dim(), dataset.len(), config)?;
    match choose(
        &bitstring,
        info.non_empty,
        config,
        DEFAULT_SURVIVAL_THRESHOLD,
    ) {
        HybridChoice::SingleReducer => mr_gpsrs(dataset, config),
        HybridChoice::MultiReducer { reducers } => {
            let config = config.clone().with_reducers(reducers);
            mr_gpmrs(dataset, &config)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::bnl_reference;
    use skymr_datagen::{generate, Distribution};

    fn probe(ds: &Dataset, config: &SkylineConfig) -> (Bitstring, usize) {
        let splits = ds.split(config.mappers);
        let (bs, info, _) =
            crate::bitstring::job::generate_bitstring(&splits, ds.dim(), ds.len(), config).unwrap();
        (bs, info.non_empty)
    }

    #[test]
    fn correlated_data_prefers_single_reducer() {
        let ds = generate(Distribution::Correlated, 3, 2000, 31);
        let config = SkylineConfig::test().with_ppd(4);
        let (bs, non_empty) = probe(&ds, &config);
        assert_eq!(
            choose(&bs, non_empty, &config, DEFAULT_SURVIVAL_THRESHOLD),
            HybridChoice::SingleReducer
        );
    }

    #[test]
    fn anticorrelated_high_dim_prefers_multi_reducer() {
        let ds = generate(Distribution::Anticorrelated, 6, 2000, 32);
        let config = SkylineConfig::test().with_ppd(2);
        let (bs, non_empty) = probe(&ds, &config);
        assert_eq!(
            choose(&bs, non_empty, &config, DEFAULT_SURVIVAL_THRESHOLD),
            HybridChoice::MultiReducer {
                reducers: config.reducers
            }
        );
    }

    #[test]
    fn single_reducer_config_never_chooses_multi() {
        let ds = generate(Distribution::Anticorrelated, 6, 1000, 33);
        let config = SkylineConfig::test().with_ppd(2).with_reducers(1);
        let (bs, non_empty) = probe(&ds, &config);
        assert_eq!(
            choose(&bs, non_empty, &config, DEFAULT_SURVIVAL_THRESHOLD),
            HybridChoice::SingleReducer
        );
    }

    #[test]
    fn empty_input_chooses_single_reducer() {
        let ds = Dataset::new(2, vec![]).unwrap();
        let config = SkylineConfig::test();
        let (bs, non_empty) = probe(&ds, &config);
        assert_eq!(
            choose(&bs, non_empty, &config, 0.5),
            HybridChoice::SingleReducer
        );
    }

    #[test]
    fn hybrid_produces_the_exact_skyline_either_way() {
        for dist in [Distribution::Correlated, Distribution::Anticorrelated] {
            let ds = generate(dist, 4, 800, 34);
            let run = mr_hybrid(&ds, &SkylineConfig::test()).unwrap();
            assert_eq!(
                run.skyline,
                bnl_reference(ds.tuples()),
                "hybrid wrong on {dist:?}"
            );
        }
    }
}
