//! Per-partition local skylines: `InsertTuple` (Algorithm 4) and
//! `ComparePartitions` (Algorithm 5).
//!
//! Both MR-GPSRS and MR-GPMRS maintain, per grid partition, the skyline of
//! the tuples seen so far ([`insert_tuple`], a BNL-style window update) and
//! then eliminate *false positives* — local skyline tuples dominated by a
//! tuple of another partition — by comparing each partition only against
//! the partitions in its anti-dominating region ([`compare_partitions`]).
//!
//! The module also tracks the two comparison counts the paper's cost model
//! and Figure 11 are about: partition-wise comparisons (executions of
//! Algorithm 5's line 3 body, one per `(p, p_i ∈ ADR(p))` pair) and
//! tuple-wise dominance checks.

use std::collections::BTreeMap;

use skymr_common::dominance::{compare, dominates, DomOrdering};
use skymr_common::Tuple;

use crate::grid::Grid;

/// Comparison-work tally for one task (mapper or reducer).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CmpStats {
    /// Partition-wise comparisons: pairs `(p, p_i)` with `p_i ∈ ADR(p)`
    /// whose skylines were compared (the paper's κ unit).
    pub partition_cmps: u64,
    /// Tuple-dominance checks performed.
    pub tuple_cmps: u64,
}

impl CmpStats {
    /// Accumulates another tally into this one.
    pub fn absorb(&mut self, other: CmpStats) {
        self.partition_cmps += other.partition_cmps;
        self.tuple_cmps += other.tuple_cmps;
    }
}

/// The local skylines of one task, keyed by partition index.
///
/// A `BTreeMap` keeps partition order deterministic, which in turn makes
/// emitted MapReduce values — and therefore the whole pipeline — exactly
/// reproducible across runs and retries.
pub type LocalSkylines = BTreeMap<u32, Vec<Tuple>>;

/// Algorithm 4 (`InsertTuple`): BNL window update of a local skyline.
///
/// Adds `t` to `s` unless some tuple of `s` dominates it; removes tuples of
/// `s` that `t` dominates. Returns `true` iff `t` was inserted. Each window
/// tuple is examined once with a single joint comparison.
pub fn insert_tuple(s: &mut Vec<Tuple>, t: Tuple, stats: &mut CmpStats) -> bool {
    let mut i = 0;
    while i < s.len() {
        stats.tuple_cmps += 1;
        match compare(&s[i], &t) {
            // An existing tuple dominates t: t is discarded. No earlier
            // removals can have happened (s was a skyline and dominance is
            // transitive), so returning here is safe.
            DomOrdering::Dominates => return false,
            // t dominates an existing tuple: evict it.
            DomOrdering::DominatedBy => {
                s.swap_remove(i);
            }
            DomOrdering::Incomparable => i += 1,
        }
    }
    s.push(t); // xtask: allow(hot-path-alloc) — amortized window growth; skyline size is data-dependent, callers pre-size when a bound is known
    true
}

/// Inserts `t` into the local skyline of its grid partition, respecting the
/// bitstring filter the caller applied (Algorithm 3 / 8, lines 2–8).
pub fn insert_into_partition(
    skylines: &mut LocalSkylines,
    partition: u32,
    t: Tuple,
    stats: &mut CmpStats,
) {
    insert_tuple(skylines.entry(partition).or_default(), t, stats);
}

/// Reusable coordinate buffers for [`compare_partitions_scratch`]: two
/// allocations per *task* instead of two per compared partition — the
/// `hot-path-alloc` pass flags the per-call version at loop depth ≥ 1.
#[derive(Debug)]
pub struct CoordScratch {
    p: Vec<usize>,
    q: Vec<usize>,
}

impl CoordScratch {
    /// Scratch sized for `grid`'s dimensionality.
    pub fn new(grid: &Grid) -> Self {
        Self {
            p: vec![0usize; grid.dim()],
            q: vec![0usize; grid.dim()],
        }
    }
}

/// Algorithm 5 (`ComparePartitions`): removes from partition `p`'s local
/// skyline every tuple dominated by a tuple of another partition's skyline,
/// considering only partitions in `ADR(p)`.
///
/// `others` yields `(partition, skyline)` pairs; entries not in `ADR(p)`
/// are skipped (and not counted). Returns the number of tuples removed.
/// Allocating convenience wrapper over [`compare_partitions_scratch`] —
/// hot callers comparing many partitions hoist the scratch instead.
pub fn compare_partitions<'a>(
    grid: &Grid,
    p: u32,
    sp: &mut Vec<Tuple>,
    others: impl Iterator<Item = (u32, &'a [Tuple])>,
    stats: &mut CmpStats,
) -> usize {
    compare_partitions_scratch(grid, p, sp, others, stats, &mut CoordScratch::new(grid))
}

/// [`compare_partitions`] with caller-owned coordinate scratch; the body
/// is allocation-free.
pub fn compare_partitions_scratch<'a>(
    grid: &Grid,
    p: u32,
    sp: &mut Vec<Tuple>,
    others: impl Iterator<Item = (u32, &'a [Tuple])>,
    stats: &mut CmpStats,
    scratch: &mut CoordScratch,
) -> usize {
    let before = sp.len();
    grid.coords_into(p as usize, &mut scratch.p);
    for (q, sq) in others {
        if q == p {
            continue;
        }
        grid.coords_into(q as usize, &mut scratch.q);
        // q ∈ ADR(p) ⟺ q.c ≤ p.c componentwise.
        if !scratch
            .q
            .iter()
            .zip(scratch.p.iter())
            .all(|(&b, &a)| b <= a)
        {
            continue;
        }
        stats.partition_cmps += 1;
        sp.retain(|t| {
            for tq in sq {
                stats.tuple_cmps += 1;
                if dominates(tq, t) {
                    return false;
                }
            }
            true
        });
        if sp.is_empty() {
            break;
        }
    }
    before - sp.len()
}

/// Applies [`compare_partitions`] to every partition of `skylines` against
/// all the others (Algorithm 3 lines 9–10 and Algorithm 6 lines 7–8).
/// Partitions emptied by the comparison are dropped from the map.
pub fn compare_all_partitions(grid: &Grid, skylines: &mut LocalSkylines, stats: &mut CmpStats) {
    let partitions: Vec<u32> = skylines.keys().copied().collect();
    let mut scratch = CoordScratch::new(grid);
    for &p in &partitions {
        let Some(mut sp) = skylines.remove(&p) else {
            continue;
        };
        compare_partitions_scratch(
            grid,
            p,
            &mut sp,
            skylines.iter().map(|(&q, sq)| (q, sq.as_slice())),
            stats,
            &mut scratch,
        );
        if !sp.is_empty() {
            skylines.insert(p, sp);
        }
    }
}

/// Computes the skyline of `tuples` with plain BNL — the reference used by
/// unit tests in this crate (the full baseline lives in `skymr-baselines`).
pub fn bnl_reference(tuples: &[Tuple]) -> Vec<Tuple> {
    let mut window: Vec<Tuple> = Vec::new();
    let mut stats = CmpStats::default();
    for t in tuples {
        insert_tuple(&mut window, t.clone(), &mut stats);
    }
    window.sort_by_key(|t| t.id);
    window
}

/// The algorithm a mapper uses for its per-partition local skylines.
///
/// The paper leaves single-node skyline computation as future work ("it is
/// still interesting to optimize the local skyline computations and
/// explore how such optimizations would affect the overall performance");
/// this knob makes that exploration a configuration change. BNL streams
/// (constant state per partition, no buffering); the sort-based kernels
/// buffer the split and pay a sort for a strictly filter-only pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalAlgo {
    /// Streaming block-nested-loops window (the paper's `InsertTuple`).
    #[default]
    Bnl,
    /// Sort-filter-skyline: presort by the entropy score, filter once;
    /// window tuples are never evicted.
    Sfs,
    /// Divide and conquer on the buffered partition contents.
    Dnc,
}

/// Initial window reservation for the local-skyline kernels: generous for
/// the per-partition skylines the grid produces, small enough that tiny
/// partitions don't pay for it.
const WINDOW_CAPACITY_HINT: usize = 64;

/// Computes one partition's local skyline with the chosen kernel,
/// counting tuple comparisons into `stats`.
pub fn local_skyline(mut tuples: Vec<Tuple>, algo: LocalAlgo, stats: &mut CmpStats) -> Vec<Tuple> {
    // The window can only hold incomparable tuples, so it is bounded by
    // the input; cap the hint so huge splits don't over-reserve.
    let window_hint = tuples.len().min(WINDOW_CAPACITY_HINT);
    match algo {
        LocalAlgo::Bnl => {
            let mut window = Vec::with_capacity(window_hint);
            for t in tuples {
                insert_tuple(&mut window, t, stats);
            }
            window
        }
        LocalAlgo::Sfs => {
            tuples.sort_by(|a, b| {
                a.score_entropy()
                    .total_cmp(&b.score_entropy())
                    .then(a.id.cmp(&b.id))
            });
            let mut window: Vec<Tuple> = Vec::with_capacity(window_hint);
            'next: for t in tuples {
                for w in &window {
                    stats.tuple_cmps += 1;
                    if dominates(w, &t) {
                        continue 'next;
                    }
                }
                window.push(t);
            }
            window
        }
        LocalAlgo::Dnc => dnc_local(&mut tuples, 0, stats),
    }
}

/// Median-split divide and conquer over one partition's tuples.
fn dnc_local(tuples: &mut Vec<Tuple>, depth: usize, stats: &mut CmpStats) -> Vec<Tuple> {
    const BASE_CASE: usize = 48;
    if tuples.is_empty() {
        return Vec::new();
    }
    let dim = tuples[0].dim();
    if tuples.len() <= BASE_CASE || depth >= 2 * dim {
        return local_skyline(std::mem::take(tuples), LocalAlgo::Bnl, stats);
    }
    let split_dim = depth % dim; // xtask: allow(panic-reachability) — dim == 0 hits the base case above (depth >= 2 * dim)
    let mid = tuples.len() / 2;
    tuples.select_nth_unstable_by(mid, |a, b| {
        a.values[split_dim]
            .total_cmp(&b.values[split_dim])
            .then(a.id.cmp(&b.id))
    });
    let mut upper = tuples.split_off(mid);
    let mut sky_lower = dnc_local(tuples, depth + 1, stats);
    let sky_upper = dnc_local(&mut upper, depth + 1, stats);
    let boundary = sky_lower
        .iter()
        .map(|t| t.values[split_dim])
        .fold(f64::NEG_INFINITY, f64::max);
    let survivors: Vec<Tuple> = sky_upper
        .into_iter()
        .filter(|u| {
            !sky_lower.iter().any(|l| {
                stats.tuple_cmps += 1;
                dominates(l, u)
            })
        })
        .collect();
    sky_lower.retain(|l| {
        l.values[split_dim] < boundary
            || !survivors.iter().any(|u| {
                stats.tuple_cmps += 1;
                dominates(u, l)
            })
    });
    sky_lower.extend(survivors);
    sky_lower
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u64, vals: &[f64]) -> Tuple {
        Tuple::new(id, vals.to_vec())
    }

    #[test]
    fn insert_keeps_incomparable_tuples() {
        let mut s = vec![];
        let mut stats = CmpStats::default();
        assert!(insert_tuple(&mut s, t(0, &[0.1, 0.9]), &mut stats));
        assert!(insert_tuple(&mut s, t(1, &[0.9, 0.1]), &mut stats));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn insert_rejects_dominated_tuple() {
        let mut s = vec![t(0, &[0.1, 0.1])];
        let mut stats = CmpStats::default();
        assert!(!insert_tuple(&mut s, t(1, &[0.5, 0.5]), &mut stats));
        assert_eq!(s.len(), 1);
        assert_eq!(stats.tuple_cmps, 1);
    }

    #[test]
    fn insert_evicts_dominated_window_tuples() {
        let mut s = vec![t(0, &[0.5, 0.5]), t(1, &[0.4, 0.9])];
        let mut stats = CmpStats::default();
        assert!(insert_tuple(&mut s, t(2, &[0.1, 0.1]), &mut stats));
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].id, 2);
    }

    #[test]
    fn insert_keeps_duplicates() {
        // Equal vectors do not dominate each other (Definition 1 requires a
        // strictly better dimension), so both stay — consistent with BNL.
        let mut s = vec![t(0, &[0.3, 0.3])];
        let mut stats = CmpStats::default();
        assert!(insert_tuple(&mut s, t(1, &[0.3, 0.3]), &mut stats));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn bnl_reference_small_case() {
        let tuples = vec![
            t(0, &[0.2, 0.8]),
            t(1, &[0.8, 0.2]),
            t(2, &[0.5, 0.5]),
            t(3, &[0.9, 0.9]),
            t(4, &[0.1, 0.9]),
        ];
        let sky = bnl_reference(&tuples);
        let ids: Vec<u64> = sky.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 4]);
    }

    #[test]
    fn compare_partitions_removes_false_positives() {
        let grid = Grid::new(2, 3).unwrap();
        // p4 (center) vs p0 (origin): p0's tuple dominates one of p4's.
        let p0 = grid.index_of(&[0, 0]) as u32;
        let p4 = grid.index_of(&[1, 1]) as u32;
        let s0 = vec![t(0, &[0.1, 0.4])];
        let mut s4 = vec![t(1, &[0.4, 0.5]), t(2, &[0.6, 0.35])];
        let mut stats = CmpStats::default();
        let removed = compare_partitions(
            &grid,
            p4,
            &mut s4,
            std::iter::once((p0, s0.as_slice())),
            &mut stats,
        );
        // t1 = (0.4,0.5) is dominated by (0.1,0.4); t2 = (0.6,0.35) is not.
        assert_eq!(removed, 1);
        assert_eq!(s4.len(), 1);
        assert_eq!(s4[0].id, 2);
        assert_eq!(stats.partition_cmps, 1);
    }

    #[test]
    fn compare_partitions_skips_non_adr_partitions() {
        let grid = Grid::new(2, 3).unwrap();
        let p4 = grid.index_of(&[1, 1]) as u32;
        let p2 = grid.index_of(&[2, 0]) as u32; // not in ADR(p4)
        let s2 = vec![t(0, &[0.7, 0.01])];
        let mut s4 = vec![t(1, &[0.4, 0.4])];
        let mut stats = CmpStats::default();
        compare_partitions(
            &grid,
            p4,
            &mut s4,
            std::iter::once((p2, s2.as_slice())),
            &mut stats,
        );
        assert_eq!(s4.len(), 1, "non-ADR partition must not affect p4");
        assert_eq!(stats.partition_cmps, 0, "non-ADR pairs are not counted");
    }

    #[test]
    fn compare_all_drops_emptied_partitions() {
        let grid = Grid::new(2, 2).unwrap();
        let mut skylines = LocalSkylines::new();
        skylines.insert(grid.index_of(&[0, 0]) as u32, vec![t(0, &[0.05, 0.05])]);
        // Partition (1,1): its only tuple is dominated by p0's.
        skylines.insert(grid.index_of(&[1, 1]) as u32, vec![t(1, &[0.8, 0.8])]);
        let mut stats = CmpStats::default();
        compare_all_partitions(&grid, &mut skylines, &mut stats);
        assert_eq!(skylines.len(), 1);
        assert!(skylines.contains_key(&(grid.index_of(&[0, 0]) as u32)));
    }

    #[test]
    fn compare_all_matches_global_bnl() {
        // Partition-aware elimination must agree with a flat BNL skyline.
        let grid = Grid::new(2, 4).unwrap();
        let tuples: Vec<Tuple> = (0..200)
            .map(|i| {
                let a = ((i * 37) % 199) as f64 / 199.0;
                let b = ((i * 83) % 197) as f64 / 197.0;
                t(i as u64, &[a, b])
            })
            .collect();
        let mut skylines = LocalSkylines::new();
        let mut stats = CmpStats::default();
        for tup in &tuples {
            let p = grid.partition_of(tup) as u32;
            insert_into_partition(&mut skylines, p, tup.clone(), &mut stats);
        }
        compare_all_partitions(&grid, &mut skylines, &mut stats);
        let mut got: Vec<Tuple> = skylines.into_values().flatten().collect();
        got.sort_by_key(|x| x.id);
        assert_eq!(got, bnl_reference(&tuples));
        assert!(stats.partition_cmps > 0);
        assert!(stats.tuple_cmps > 0);
    }

    #[test]
    fn all_local_kernels_agree_with_bnl() {
        let tuples: Vec<Tuple> = (0..300)
            .map(|i| {
                let a = ((i * 37) % 199) as f64 / 199.0;
                let b = ((i * 83) % 197) as f64 / 197.0;
                let c = ((i * 11) % 193) as f64 / 193.0;
                t(i as u64, &[a, b, c])
            })
            .collect();
        let expected = bnl_reference(&tuples);
        for algo in [LocalAlgo::Bnl, LocalAlgo::Sfs, LocalAlgo::Dnc] {
            let mut stats = CmpStats::default();
            let mut got = local_skyline(tuples.clone(), algo, &mut stats);
            got.sort_by_key(|x| x.id);
            assert_eq!(got, expected, "{algo:?} kernel disagrees with BNL");
            assert!(stats.tuple_cmps > 0, "{algo:?} counted no comparisons");
        }
    }

    #[test]
    fn local_kernels_handle_duplicates_and_empties() {
        for algo in [LocalAlgo::Bnl, LocalAlgo::Sfs, LocalAlgo::Dnc] {
            let mut stats = CmpStats::default();
            assert!(local_skyline(vec![], algo, &mut stats).is_empty());
            let dupes = vec![t(0, &[0.3, 0.3]), t(1, &[0.3, 0.3]), t(2, &[0.5, 0.5])];
            let got = local_skyline(dupes, algo, &mut stats);
            assert_eq!(got.len(), 2, "{algo:?} mishandled duplicates");
        }
    }

    #[test]
    fn cmp_stats_absorb_adds() {
        let mut a = CmpStats {
            partition_cmps: 1,
            tuple_cmps: 10,
        };
        a.absorb(CmpStats {
            partition_cmps: 2,
            tuple_cmps: 5,
        });
        assert_eq!(
            a,
            CmpStats {
                partition_cmps: 3,
                tuple_cmps: 15
            }
        );
    }
}
