//! The result of running a skyline pipeline.

use std::collections::BTreeMap;

use skymr_common::Tuple;
use skymr_mapreduce::PipelineMetrics;

/// Structural facts about a pipeline run, for reports and assertions.
#[derive(Debug, Clone, Default)]
pub struct RunInfo {
    /// PPD actually used (after auto-selection, if any).
    pub ppd: usize,
    /// Total grid partitions `n^d`.
    pub partitions: usize,
    /// Partitions flagged non-empty before pruning.
    pub non_empty_partitions: usize,
    /// Partitions surviving bitstring pruning (Equation 2).
    pub surviving_partitions: usize,
    /// Independent partition groups generated (MR-GPMRS only).
    pub independent_groups: usize,
    /// Reducer buckets after group merging (MR-GPMRS only).
    pub buckets: usize,
}

/// Output of one skyline computation: the skyline itself plus metrics.
#[derive(Debug)]
pub struct SkylineRun {
    /// The global skyline, sorted by tuple id (canonical order).
    pub skyline: Vec<Tuple>,
    /// Per-job simulated/measured metrics, in job order.
    pub metrics: PipelineMetrics,
    /// Merged job counters (comparison counts etc.).
    pub counters: BTreeMap<String, u64>,
    /// Structural run facts.
    pub info: RunInfo,
}

impl SkylineRun {
    /// The skyline tuple ids, sorted — the canonical comparison form.
    pub fn skyline_ids(&self) -> Vec<u64> {
        self.skyline.iter().map(|t| t.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skyline_ids_reflect_tuples() {
        let run = SkylineRun {
            skyline: vec![Tuple::new(2, vec![0.1]), Tuple::new(5, vec![0.2])],
            metrics: PipelineMetrics::new(),
            counters: BTreeMap::new(),
            info: RunInfo::default(),
        };
        assert_eq!(run.skyline_ids(), vec![2, 5]);
    }
}
