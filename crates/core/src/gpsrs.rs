//! MR-GPSRS: Grid Partitioning based Single-Reducer Skyline computation
//! (paper Section 4, Algorithms 3–6, Figure 4).
//!
//! Mappers receive disjoint subsets of `R` plus the global bitstring
//! (distributed-cache broadcast). Each mapper drops tuples whose partition
//! was pruned, maintains a BNL-style local skyline per surviving partition
//! (`InsertTuple`), removes cross-partition false positives
//! (`ComparePartitions` over anti-dominating regions), and emits its
//! partition-organized local skyline. A **single reducer** merges the
//! per-partition skylines from all mappers and repeats the false-positive
//! elimination globally, producing the exact global skyline.

use std::sync::Arc;

use skymr_common::dataset::canonicalize;
use skymr_common::{Counters, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, ByteSized, Emitter, JobConfig, MapFactory, MapTask, OutputCollector, PipelineMetrics,
    ReduceFactory, ReduceTask, SingleReducerPartitioner, TaskContext,
};

use crate::bitstring::job::generate_bitstring;
use crate::bitstring::Bitstring;
use crate::checkpoint::BitstringStage;
use crate::config::SkylineConfig;
use crate::grid::Grid;
use crate::local::{
    compare_all_partitions, insert_into_partition, local_skyline, CmpStats, LocalAlgo,
    LocalSkylines,
};
use crate::result::{RunInfo, SkylineRun};

/// A mapper's emitted value: its local skyline, organized per partition
/// (the paper's `S`, a set of `S_{p_j}` for non-empty partitions).
pub type PartitionSkylines = Vec<(u32, Vec<Tuple>)>;

pub(crate) fn skylines_to_payload(skylines: LocalSkylines) -> PartitionSkylines {
    skylines.into_iter().collect()
}

pub(crate) fn record_task_stats(counters: &Counters, side: &str, stats: CmpStats) {
    counters.add(&format!("{side}.partition_cmps"), stats.partition_cmps);
    counters.add(&format!("{side}.tuple_cmps"), stats.tuple_cmps);
    counters.record_max(&format!("{side}.partition_cmps.max"), stats.partition_cmps);
    counters.record_max(&format!("{side}.tuple_cmps.max"), stats.tuple_cmps);
}

/// Map side of MR-GPSRS (Algorithm 3). Shared across both this algorithm
/// and MR-GPMRS, whose map phase is identical up to output routing.
#[derive(Debug)]
pub struct GpsrsMapFactory {
    bitstring: Arc<Bitstring>,
    local_algo: LocalAlgo,
}

impl GpsrsMapFactory {
    /// A factory shipping `bitstring` to every mapper, computing local
    /// skylines with `local_algo`.
    pub fn new(bitstring: Arc<Bitstring>, local_algo: LocalAlgo) -> Self {
        Self {
            bitstring,
            local_algo,
        }
    }
}

/// Per-split mapper state.
#[derive(Debug)]
pub struct GpsrsMapTask {
    bitstring: Arc<Bitstring>,
    local_algo: LocalAlgo,
    /// Incrementally maintained windows (BNL kernel).
    skylines: LocalSkylines,
    /// Buffered partition contents (sort-based kernels).
    buffers: std::collections::BTreeMap<u32, Vec<Tuple>>,
    stats: CmpStats,
    /// Tuples dropped because their partition's bit was pruned (the
    /// dominating-region test, Equation 2).
    dr_pruned: u64,
    counters: Counters,
}

impl GpsrsMapTask {
    pub(crate) fn new(
        bitstring: Arc<Bitstring>,
        counters: Counters,
        local_algo: LocalAlgo,
    ) -> Self {
        Self {
            bitstring,
            local_algo,
            skylines: LocalSkylines::new(),
            buffers: Default::default(),
            stats: CmpStats::default(),
            dr_pruned: 0,
            counters,
        }
    }

    /// Algorithm 3 lines 2–8: filter through the bitstring and update the
    /// partition's local skyline (streaming for BNL; buffered for the
    /// sort-based kernels).
    pub(crate) fn consume(&mut self, t: &Tuple) {
        let p = self.bitstring.grid().partition_of(t);
        if !self.bitstring.is_set(p) {
            self.dr_pruned += 1;
            return;
        }
        match self.local_algo {
            LocalAlgo::Bnl => {
                insert_into_partition(&mut self.skylines, p as u32, t.clone(), &mut self.stats);
            }
            LocalAlgo::Sfs | LocalAlgo::Dnc => {
                self.buffers.entry(p as u32).or_default().push(t.clone());
            }
        }
    }

    /// Algorithm 3 lines 9–10: per-partition skylines (for buffered
    /// kernels) and cross-partition false-positive elimination.
    pub(crate) fn finalize(&mut self) -> LocalSkylines {
        for (p, tuples) in std::mem::take(&mut self.buffers) {
            let skyline = local_skyline(tuples, self.local_algo, &mut self.stats);
            if !skyline.is_empty() {
                self.skylines.insert(p, skyline);
            }
        }
        let grid = *self.bitstring.grid();
        let before: u64 = self.skylines.values().map(|s| s.len() as u64).sum();
        compare_all_partitions(&grid, &mut self.skylines, &mut self.stats);
        let after: u64 = self.skylines.values().map(|s| s.len() as u64).sum();
        record_task_stats(&self.counters, "map", self.stats);
        self.counters.add("map.dr_pruned_tuples", self.dr_pruned);
        self.counters
            .add("map.adr_removed_tuples", before.saturating_sub(after));
        std::mem::take(&mut self.skylines)
    }
}

impl MapTask for GpsrsMapTask {
    type In = Tuple;
    type K = u8;
    type V = PartitionSkylines;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u8, PartitionSkylines>) {
        self.consume(input);
    }

    fn finish(&mut self, out: &mut Emitter<u8, PartitionSkylines>) {
        let skylines = self.finalize();
        out.emit(0, skylines_to_payload(skylines));
    }
}

impl MapFactory for GpsrsMapFactory {
    type Task = GpsrsMapTask;
    fn create(&self, ctx: &TaskContext) -> GpsrsMapTask {
        GpsrsMapTask::new(
            Arc::clone(&self.bitstring),
            ctx.counters.clone(),
            self.local_algo,
        )
    }
}

/// Reduce side of MR-GPSRS (Algorithm 6): merge all mappers' local
/// skylines per partition, then eliminate false positives globally.
#[derive(Debug)]
pub struct GpsrsReduceFactory {
    grid: Grid,
}

impl GpsrsReduceFactory {
    /// A factory for the single global-merge reducer.
    pub fn new(grid: Grid) -> Self {
        Self { grid }
    }
}

/// The single reducer's state.
#[derive(Debug)]
pub struct GpsrsReduceTask {
    grid: Grid,
    counters: Counters,
}

impl ReduceTask for GpsrsReduceTask {
    type K = u8;
    type V = PartitionSkylines;
    type Out = Tuple;

    // xtask: hot
    fn reduce(
        &mut self,
        _key: u8,
        values: Vec<PartitionSkylines>,
        out: &mut OutputCollector<Tuple>,
    ) {
        let mut stats = CmpStats::default();
        let mut skylines = LocalSkylines::new();
        // Lines 1–6: merge the k per-partition arrays with InsertTuple.
        for payload in values {
            for (p, tuples) in payload {
                for t in tuples {
                    insert_into_partition(&mut skylines, p, t, &mut stats);
                }
            }
        }
        // Lines 7–8: global ComparePartitions sweep.
        let before: u64 = skylines.values().map(|s| s.len() as u64).sum();
        compare_all_partitions(&self.grid, &mut skylines, &mut stats);
        let after: u64 = skylines.values().map(|s| s.len() as u64).sum();
        record_task_stats(&self.counters, "reduce", stats);
        self.counters
            .add("reduce.adr_removed_tuples", before.saturating_sub(after));
        // Line 9: output the union.
        for tuples in skylines.into_values() {
            for t in tuples {
                out.collect(t);
            }
        }
    }
}

impl ReduceFactory for GpsrsReduceFactory {
    type Task = GpsrsReduceTask;
    fn create(&self, ctx: &TaskContext) -> GpsrsReduceTask {
        GpsrsReduceTask {
            grid: self.grid,
            counters: ctx.counters.clone(),
        }
    }
}

/// Runs the full MR-GPSRS pipeline: bitstring generation job followed by
/// the single-reducer skyline job (runtime includes both, as in the
/// paper's experiments).
///
/// ```
/// use skymr::{mr_gpsrs, SkylineConfig};
/// use skymr_datagen::{generate, Distribution};
///
/// let data = generate(Distribution::Independent, 3, 2_000, 5);
/// let run = mr_gpsrs(&data, &SkylineConfig::test()).unwrap();
/// assert!(!run.skyline.is_empty());
/// assert_eq!(run.metrics.jobs.len(), 2); // bitstring job + skyline job
/// ```
pub fn mr_gpsrs(dataset: &Dataset, config: &SkylineConfig) -> skymr_common::Result<SkylineRun> {
    config.validate()?;
    // The whole two-job pipeline runs under one algorithm-level span.
    let _scope = config
        .telemetry
        .as_ref()
        .map(|c| c.scope("algo", "mr-gpsrs"));
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();
    let mut counters = std::collections::BTreeMap::new();
    let mut runner = config.checkpoint.runner()?;

    let BitstringStage {
        bitstring,
        info: bs_info,
    } = runner.stage("bitstring", &mut metrics, |metrics| {
        let (bitstring, info, bs_metrics) =
            generate_bitstring(&splits, dataset.dim(), dataset.len(), config)?;
        metrics.push(bs_metrics);
        Ok(BitstringStage { bitstring, info })
    })?;

    let grid = *bitstring.grid();
    let bitstring = Arc::new(bitstring);
    let job_config = JobConfig::new("gpsrs", 1)
        .with_cache_bytes(bitstring.bits().byte_size())
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let skyline = runner.stage("gpsrs", &mut metrics, |metrics| {
        let outcome = metrics.track(run_job(
            &config.cluster,
            &job_config,
            &splits,
            &GpsrsMapFactory::new(Arc::clone(&bitstring), config.local_algo),
            &GpsrsReduceFactory::new(grid),
            &SingleReducerPartitioner,
        ))?;
        for (k, v) in outcome.counters.snapshot() {
            counters.insert(format!("gpsrs.{k}"), v);
        }
        Ok(canonicalize(outcome.into_flat_output()))
    })?;
    if cfg!(debug_assertions) {
        if let Err(v) = skymr_mapreduce::analysis::check_skyline(&skyline) {
            panic!("mr_gpsrs produced a non-skyline: {v}");
        }
    }
    Ok(SkylineRun {
        skyline,
        metrics,
        counters,
        info: RunInfo {
            ppd: bs_info.ppd,
            partitions: grid.num_partitions(),
            non_empty_partitions: bs_info.non_empty,
            surviving_partitions: bs_info.surviving,
            independent_groups: 0,
            buckets: 1,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::bnl_reference;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn matches_bnl_oracle_on_independent_data() {
        let ds = generate(Distribution::Independent, 3, 800, 4);
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline, bnl_reference(ds.tuples()));
        assert!(!run.skyline.is_empty());
    }

    #[test]
    fn matches_bnl_oracle_on_anticorrelated_data() {
        let ds = generate(Distribution::Anticorrelated, 4, 600, 5);
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline, bnl_reference(ds.tuples()));
        // Anti-correlated skylines are a sizable fraction of the input.
        assert!(run.skyline.len() > ds.len() / 50);
    }

    #[test]
    fn result_is_invariant_to_mapper_count() {
        let ds = generate(Distribution::Correlated, 3, 500, 6);
        let base = mr_gpsrs(&ds, &SkylineConfig::test().with_mappers(1)).unwrap();
        for m in [2, 5, 9] {
            let run = mr_gpsrs(&ds, &SkylineConfig::test().with_mappers(m)).unwrap();
            assert_eq!(
                run.skyline_ids(),
                base.skyline_ids(),
                "mismatch with {m} mappers"
            );
        }
    }

    #[test]
    fn result_is_invariant_to_ppd() {
        let ds = generate(Distribution::Independent, 2, 400, 7);
        let base = bnl_reference(ds.tuples());
        for ppd in [1, 2, 4, 8, 16] {
            let run = mr_gpsrs(&ds, &SkylineConfig::test().with_ppd(ppd)).unwrap();
            assert_eq!(run.skyline, base, "mismatch with PPD {ppd}");
        }
    }

    #[test]
    fn all_local_kernels_give_identical_results() {
        let ds = generate(Distribution::Anticorrelated, 4, 700, 11);
        let base = bnl_reference(ds.tuples());
        for algo in [LocalAlgo::Bnl, LocalAlgo::Sfs, LocalAlgo::Dnc] {
            let mut config = SkylineConfig::test();
            config.local_algo = algo;
            let run = mr_gpsrs(&ds, &config).unwrap();
            assert_eq!(
                run.skyline, base,
                "{algo:?} local kernel changed the skyline"
            );
        }
    }

    #[test]
    fn auto_ppd_policy_works_end_to_end() {
        let ds = generate(Distribution::Independent, 3, 700, 8);
        let mut config = SkylineConfig::test();
        config.ppd = crate::config::PpdPolicy::auto();
        let run = mr_gpsrs(&ds, &config).unwrap();
        assert_eq!(run.skyline, bnl_reference(ds.tuples()));
        assert!(run.info.ppd >= 2);
    }

    #[test]
    fn pipeline_has_two_jobs_and_counters() {
        let ds = generate(Distribution::Independent, 3, 300, 9);
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(run.metrics.jobs.len(), 2);
        assert_eq!(run.metrics.jobs[0].name, "bitstring");
        assert_eq!(run.metrics.jobs[1].name, "gpsrs");
        assert!(run.counters.contains_key("gpsrs.map.tuple_cmps"));
        assert!(run.counters.contains_key("gpsrs.reduce.tuple_cmps"));
        // The bitstring was broadcast to mappers.
        assert!(run.metrics.jobs[1].cache_bytes > 0);
    }

    #[test]
    fn empty_dataset_yields_empty_skyline() {
        let ds = Dataset::new(3, vec![]).unwrap();
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert!(run.skyline.is_empty());
    }

    #[test]
    fn single_tuple_is_its_own_skyline() {
        let ds = Dataset::new(2, vec![Tuple::new(7, vec![0.3, 0.4])]).unwrap();
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline_ids(), vec![7]);
    }

    #[test]
    fn duplicates_all_survive() {
        let ds = Dataset::new(
            2,
            vec![
                Tuple::new(0, vec![0.2, 0.2]),
                Tuple::new(1, vec![0.2, 0.2]),
                Tuple::new(2, vec![0.8, 0.8]),
            ],
        )
        .unwrap();
        let run = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline_ids(), vec![0, 1]);
    }

    #[test]
    fn survives_injected_failures() {
        let ds = generate(Distribution::Independent, 3, 400, 10);
        let clean = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        let mut config = SkylineConfig::test();
        config.fault_tolerance = skymr_mapreduce::FaultTolerance::with_plan(
            skymr_mapreduce::FaultPlan::fail_maps([0, 1]).for_job("gpsrs"),
        );
        let failed = mr_gpsrs(&ds, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
        assert_eq!(failed.metrics.jobs[1].map_retries, 2);
        assert_eq!(
            failed.metrics.jobs[0].map_retries, 0,
            "plan is scoped to the gpsrs job"
        );
    }
}
