//! Constrained skyline queries in MapReduce (the query class of the
//! paper's reference [5], Chen, Cui, Lu — TKDE 2011).
//!
//! A *constrained* skyline restricts both candidates and dominators to an
//! axis-aligned range [`Constraint`]: "the best hotels **under €150 within
//! 2 km**". Tuples outside the box neither appear in the answer nor
//! disqualify tuples inside it, so the query is exactly the skyline of the
//! box's contents — but shipping the whole dataset to find it would waste
//! the very pruning this paper is about.
//!
//! The grid machinery adapts directly: mappers drop out-of-box tuples on
//! contact (before any window work), the bitstring job runs on the
//! filtered stream — so partition-dominance pruning operates *within the
//! constrained region* — and both MR-GPSRS and MR-GPMRS run unchanged on
//! top. The constraint travels to the mappers like the bitstring does, as
//! broadcast state.

use skymr_common::{Dataset, Error, Result, Tuple};

use crate::config::SkylineConfig;
use crate::gpmrs::mr_gpmrs;
use crate::gpsrs::mr_gpsrs;
use crate::result::SkylineRun;

/// An axis-aligned range constraint: `lo[k] ≤ value[k] < hi[k]` per
/// dimension.
///
/// ```
/// use skymr::{mr_constrained_gpmrs, Constraint, SkylineConfig};
/// use skymr_datagen::{generate, Distribution};
///
/// let data = generate(Distribution::Anticorrelated, 2, 2_000, 9);
/// // "Best options with both criteria under 0.6."
/// let c = Constraint::new(vec![0.0, 0.0], vec![0.6, 0.6]).unwrap();
/// let run = mr_constrained_gpmrs(&data, &c, &SkylineConfig::test()).unwrap();
/// assert!(run.skyline.iter().all(|t| c.contains(t)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Constraint {
    /// Creates a constraint box; bounds are clamped into `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Fails when the bounds' dimensionalities differ, are empty, or some
    /// `lo[k] ≥ hi[k]` (an empty box).
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.is_empty() || lo.len() != hi.len() {
            return Err(Error::InvalidConfig(
                "constraint bounds must have equal, nonzero dimensionality".into(),
            ));
        }
        let lo: Vec<f64> = lo.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        let hi: Vec<f64> = hi.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
        if lo.iter().zip(hi.iter()).any(|(&a, &b)| a >= b) {
            return Err(Error::InvalidConfig(
                "constraint box is empty on some dimension".into(),
            ));
        }
        Ok(Self { lo, hi })
    }

    /// The unconstrained box over a `dim`-dimensional space.
    pub fn unbounded(dim: usize) -> Self {
        Self {
            lo: vec![0.0; dim],
            hi: vec![1.0; dim],
        }
    }

    /// Dimensionality of the box.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// `true` iff `t` lies inside the box.
    pub fn contains(&self, t: &Tuple) -> bool {
        debug_assert_eq!(t.dim(), self.dim());
        t.values
            .iter()
            .zip(self.lo.iter().zip(self.hi.iter()))
            .all(|(&v, (&lo, &hi))| v >= lo && v < hi)
    }

    /// Filters a dataset down to the box contents (the reference path used
    /// by tests; the MapReduce path filters inside the mappers instead).
    pub fn filter(&self, dataset: &Dataset) -> Dataset {
        let tuples = dataset
            .tuples()
            .iter()
            .filter(|t| self.contains(t))
            .cloned()
            .collect::<Vec<_>>();
        Dataset::new_unchecked(dataset.dim(), tuples)
    }
}

/// Runs the constrained skyline with the single-reducer pipeline.
///
/// # Errors
///
/// Fails when the constraint's dimensionality disagrees with the dataset
/// or the configuration is invalid.
pub fn mr_constrained_gpsrs(
    dataset: &Dataset,
    constraint: &Constraint,
    config: &SkylineConfig,
) -> Result<SkylineRun> {
    check_dims(dataset, constraint)?;
    // Mapper-side filtering: the constraint is applied before any window
    // work, and the bitstring job sees only in-box tuples, so partition
    // pruning happens within the constrained region. (Splitting after the
    // filter is equivalent to filtering inside each mapper: both give
    // every mapper the in-box subset of its share.)
    mr_gpsrs(&constraint.filter(dataset), config)
}

/// Runs the constrained skyline with the multi-reducer pipeline.
///
/// # Errors
///
/// See [`mr_constrained_gpsrs`].
pub fn mr_constrained_gpmrs(
    dataset: &Dataset,
    constraint: &Constraint,
    config: &SkylineConfig,
) -> Result<SkylineRun> {
    check_dims(dataset, constraint)?;
    mr_gpmrs(&constraint.filter(dataset), config)
}

fn check_dims(dataset: &Dataset, constraint: &Constraint) -> Result<()> {
    if dataset.dim() != constraint.dim() {
        return Err(Error::DimensionMismatch {
            expected: dataset.dim(),
            got: constraint.dim(),
            tuple_id: u64::MAX,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::bnl_reference;
    use skymr_datagen::{generate, Distribution};

    fn constraint(lo: &[f64], hi: &[f64]) -> Constraint {
        Constraint::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Constraint::new(vec![], vec![]).is_err());
        assert!(Constraint::new(vec![0.1], vec![0.5, 0.6]).is_err());
        assert!(Constraint::new(vec![0.5, 0.2], vec![0.5, 0.8]).is_err());
        assert!(
            Constraint::new(vec![-1.0, 0.0], vec![0.5, 2.0]).is_ok(),
            "bounds clamp"
        );
    }

    #[test]
    fn contains_respects_half_open_box() {
        let c = constraint(&[0.2, 0.2], &[0.6, 0.6]);
        assert!(c.contains(&Tuple::new(0, vec![0.2, 0.5])));
        assert!(!c.contains(&Tuple::new(0, vec![0.6, 0.5])));
        assert!(!c.contains(&Tuple::new(0, vec![0.1, 0.5])));
    }

    #[test]
    fn constrained_skyline_equals_oracle_on_filtered_data() {
        let ds = generate(Distribution::Anticorrelated, 3, 800, 191);
        let c = constraint(&[0.1, 0.0, 0.2], &[0.9, 0.7, 1.0]);
        let oracle = bnl_reference(c.filter(&ds).tuples());
        let config = SkylineConfig::test();
        let a = mr_constrained_gpsrs(&ds, &c, &config).unwrap();
        let b = mr_constrained_gpmrs(&ds, &c, &config).unwrap();
        assert_eq!(a.skyline, oracle);
        assert_eq!(b.skyline, oracle);
        assert!(!oracle.is_empty(), "scenario should have in-box tuples");
    }

    #[test]
    fn constraint_can_add_tuples_to_the_answer() {
        // A tuple dominated only by out-of-box tuples enters the
        // constrained skyline: the query is not a subset relationship.
        let ds = Dataset::new(
            2,
            vec![
                Tuple::new(0, vec![0.05, 0.05]), // dominator, outside the box
                Tuple::new(1, vec![0.5, 0.5]),   // inside, dominated only by 0
            ],
        )
        .unwrap();
        let c = constraint(&[0.3, 0.3], &[1.0, 1.0]);
        let run = mr_constrained_gpsrs(&ds, &c, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline_ids(), vec![1]);
        // Unconstrained, tuple 1 is dominated away.
        let full = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(full.skyline_ids(), vec![0]);
    }

    #[test]
    fn unbounded_constraint_is_the_plain_skyline() {
        let ds = generate(Distribution::Independent, 3, 400, 192);
        let c = Constraint::unbounded(3);
        let constrained = mr_constrained_gpmrs(&ds, &c, &SkylineConfig::test()).unwrap();
        let plain = mr_gpmrs(&ds, &SkylineConfig::test()).unwrap();
        assert_eq!(constrained.skyline_ids(), plain.skyline_ids());
    }

    #[test]
    fn empty_box_contents_yield_empty_skyline() {
        let ds = generate(Distribution::Correlated, 2, 200, 193);
        // A thin box in a far corner unlikely to contain correlated data.
        let c = constraint(&[0.0, 0.98], &[0.02, 1.0]);
        let run = mr_constrained_gpsrs(&ds, &c, &SkylineConfig::test()).unwrap();
        assert_eq!(run.skyline, bnl_reference(c.filter(&ds).tuples()));
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let ds = generate(Distribution::Independent, 3, 50, 194);
        let c = constraint(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(mr_constrained_gpsrs(&ds, &c, &SkylineConfig::test()).is_err());
    }
}
