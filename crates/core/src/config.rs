//! Configuration for the skyline pipelines.

use std::path::PathBuf;
use std::time::Duration;

use skymr_common::{Error, Result};
use skymr_mapreduce::{
    AdmissionConfig, AdmissionController, Checkpoint, ClusterConfig, Collector, FaultTolerance,
    Runner,
};

use crate::groups::MergePolicy;
use crate::local::LocalAlgo;

/// Pipeline checkpoint/resume controls (all off by default).
///
/// The drivers run their two-job chains through a
/// [`Runner`]; these knobs decide whether the runner persists checkpoints
/// to a file, resumes from one, and/or kills itself at a deterministic
/// point for chaos testing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Checkpoint file, rewritten after every completed job (and read back
    /// on resume). `None` keeps checkpoints in memory only.
    pub file: Option<PathBuf>,
    /// Resume from `file` when it holds a valid checkpoint. A missing file
    /// falls back to a fresh run; a file that fails its CRC32C payload
    /// verification aborts with
    /// [`Error::CheckpointCorrupt`] instead — bit rot
    /// is surfaced, never silently re-run over.
    pub resume: bool,
    /// Chaos kill-point: abort with
    /// [`Error::PipelineKilled`] when entering the
    /// stage after this many completed jobs.
    pub kill_after: Option<usize>,
    /// Admission-queue depth for the chain's stages. When set, every
    /// stage — including stages replayed from a checkpoint on resume —
    /// re-enters an admission gate of this depth instead of bypassing
    /// capacity checks; overflow surfaces
    /// [`Error::AdmissionRejected`](skymr_common::Error::AdmissionRejected).
    pub admission_queue: Option<usize>,
}

impl CheckpointConfig {
    /// Builds the [`Runner`] these controls describe.
    ///
    /// # Errors
    ///
    /// [`Error::CheckpointCorrupt`] when resuming from a checkpoint file
    /// whose payloads fail CRC32C verification.
    pub fn runner(&self) -> Result<Runner> {
        let mut runner = match (self.resume, self.file.as_deref()) {
            (true, Some(path)) => Checkpoint::load(path)?.map_or_else(Runner::new, Runner::resume),
            _ => Runner::new(),
        };
        if let Some(n) = self.kill_after {
            runner = runner.with_kill_after(n);
        }
        if let Some(path) = &self.file {
            runner = runner.with_checkpoint_file(path);
        }
        if let Some(depth) = self.admission_queue {
            runner = runner.with_admission(AdmissionController::new(
                AdmissionConfig::with_queue_depth(depth),
            ));
        }
        Ok(runner)
    }
}

/// How the grid's partitions-per-dimension (PPD) value is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum PpdPolicy {
    /// Use exactly this PPD.
    Fixed(usize),
    /// The paper's Section 3.3 heuristic: mappers emit one bitstring per
    /// candidate PPD `j ∈ 2..=n_m`, the reducer counts non-empty partitions
    /// `ρ_j` per candidate, and the candidate minimizing
    /// `|c/ρ_j − c/j^d|` wins.
    Auto {
        /// Hard cap on the candidate PPD (`n_m = min(⌈c^(1/d)⌉, max_ppd)`);
        /// keeps mapper-side bitstring memory bounded on large cardinality /
        /// low dimensionality inputs where `c^(1/d)` explodes.
        max_ppd: usize,
        /// Hard cap on `j^d` per candidate bitstring, for the same reason.
        max_partitions: usize,
    },
}

impl PpdPolicy {
    /// The paper's heuristic with engineering caps suitable for this
    /// simulation (documented in DESIGN.md).
    pub fn auto() -> Self {
        PpdPolicy::Auto {
            max_ppd: 32,
            max_partitions: 1 << 18,
        }
    }
}

/// Configuration shared by MR-GPSRS, MR-GPMRS, and the baselines' drivers.
#[derive(Debug, Clone)]
pub struct SkylineConfig {
    /// Number of mappers `m` (input splits).
    pub mappers: usize,
    /// Number of reducers for MR-GPMRS (the paper defaults to one per
    /// cluster node). MR-GPSRS always uses a single reducer.
    pub reducers: usize,
    /// Grid PPD selection.
    pub ppd: PpdPolicy,
    /// How independent groups are merged when there are more groups than
    /// reducers (paper Section 5.4.1).
    pub merge_policy: MergePolicy,
    /// Whether to prune dominated partitions from the bitstring
    /// (Equation 2). Disabled only by the ablation benchmarks.
    pub prune_bitstring: bool,
    /// The local-skyline kernel mappers run per partition (the paper's
    /// future-work knob; BNL is the paper's own choice).
    pub local_algo: LocalAlgo,
    /// The simulated cluster.
    pub cluster: ClusterConfig,
    /// Fault injection, retry budget, and speculation for the pipeline's
    /// jobs (benign by default).
    pub fault_tolerance: FaultTolerance,
    /// Optional span collector: when set, every job in the pipeline emits
    /// its deterministic span timeline (and metrics registry) into it.
    /// `None` costs nothing — registries are still built per job.
    pub telemetry: Option<Collector>,
    /// Pipeline checkpoint/resume controls (off by default).
    pub checkpoint: CheckpointConfig,
}

impl Default for SkylineConfig {
    fn default() -> Self {
        let cluster = ClusterConfig::default();
        Self {
            mappers: cluster.map_slots,
            reducers: cluster.reduce_slots,
            ppd: PpdPolicy::auto(),
            merge_policy: MergePolicy::ComputationCost,
            prune_bitstring: true,
            local_algo: LocalAlgo::Bnl,
            cluster,
            fault_tolerance: FaultTolerance::none(),
            telemetry: None,
            checkpoint: CheckpointConfig::default(),
        }
    }
}

impl SkylineConfig {
    /// Small, fast configuration for tests: 4-node cluster with negligible
    /// simulated overheads and a fixed 3-PPD grid.
    pub fn test() -> Self {
        Self {
            mappers: 4,
            reducers: 4,
            ppd: PpdPolicy::Fixed(3),
            merge_policy: MergePolicy::ComputationCost,
            prune_bitstring: true,
            local_algo: LocalAlgo::Bnl,
            cluster: ClusterConfig::test(),
            fault_tolerance: FaultTolerance::none(),
            telemetry: None,
            checkpoint: CheckpointConfig::default(),
        }
    }

    /// Sets a fixed PPD.
    pub fn with_ppd(mut self, ppd: usize) -> Self {
        self.ppd = PpdPolicy::Fixed(ppd);
        self
    }

    /// Sets the mapper count.
    pub fn with_mappers(mut self, mappers: usize) -> Self {
        self.mappers = mappers;
        self
    }

    /// Sets the reducer count (MR-GPMRS).
    pub fn with_reducers(mut self, reducers: usize) -> Self {
        self.reducers = reducers;
        self
    }

    /// Sets the fault-tolerance configuration.
    pub fn with_fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault_tolerance = ft;
        self
    }

    /// Enables (or disables) Hadoop-style skip-bad-records recovery on the
    /// simulated cluster: a record that deterministically fails its task is
    /// narrowed to and skipped, and the job completes with
    /// `degraded: true` instead of aborting. Off by default — skipping
    /// changes the job's output.
    pub fn with_skip_bad_records(mut self, skip: bool) -> Self {
        self.cluster.skip_bad_records = skip;
        self
    }

    /// Sets the simulated-clock progress timeout after which a hung
    /// attempt is killed and retried.
    pub fn with_progress_timeout(mut self, timeout: Duration) -> Self {
        self.cluster.progress_timeout = timeout;
        self
    }

    /// Caps each map task's output buffer at `bytes`, spilling sorted runs
    /// to disk and external-merging them on the reduce side (the
    /// out-of-core storage plane). `None` keeps all intermediates in
    /// memory.
    pub fn with_memory_budget(mut self, bytes: Option<u64>) -> Self {
        self.cluster.storage.memory_budget = bytes;
        self
    }

    /// Directory for spill files (default: the OS temp directory). Only
    /// meaningful together with [`Self::with_memory_budget`].
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cluster.storage.spill_dir = Some(dir.into());
        self
    }

    /// Attaches (or detaches) a span collector for the pipeline's jobs.
    pub fn with_telemetry(mut self, collector: Option<Collector>) -> Self {
        self.telemetry = collector;
        self
    }

    /// Persists pipeline checkpoints to `path` after every completed job.
    pub fn with_checkpoint_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint.file = Some(path.into());
        self
    }

    /// Resumes from the checkpoint file (no-op without one, or when the
    /// file is missing or stale).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.checkpoint.resume = resume;
        self
    }

    /// Chaos kill-point: the pipeline aborts with
    /// [`Error::PipelineKilled`] when entering the
    /// job after `n` completed jobs.
    pub fn with_kill_after(mut self, n: usize) -> Self {
        self.checkpoint.kill_after = Some(n);
        self
    }

    /// Gates every pipeline stage (replayed or executed) behind an
    /// admission queue of the given depth.
    pub fn with_admission_queue(mut self, depth: usize) -> Self {
        self.checkpoint.admission_queue = Some(depth);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.mappers == 0 {
            return Err(Error::InvalidConfig("mappers must be >= 1".into()));
        }
        if self.reducers == 0 {
            return Err(Error::InvalidConfig("reducers must be >= 1".into()));
        }
        match self.ppd {
            PpdPolicy::Fixed(0) => Err(Error::InvalidConfig("fixed PPD must be >= 1".into())),
            PpdPolicy::Auto {
                max_ppd,
                max_partitions,
            } if max_ppd < 2 || max_partitions < 4 => {
                Err(Error::InvalidConfig("auto PPD caps too small".into()))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mirrors_cluster_shape() {
        let c = SkylineConfig::default();
        assert_eq!(c.mappers, 13);
        assert_eq!(c.reducers, 13);
        assert!(c.prune_bitstring);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builders_update_fields() {
        let c = SkylineConfig::test()
            .with_ppd(5)
            .with_mappers(2)
            .with_reducers(3)
            .with_skip_bad_records(true)
            .with_progress_timeout(Duration::from_millis(9))
            .with_memory_budget(Some(1 << 20))
            .with_spill_dir("/tmp/spills")
            .with_admission_queue(2);
        assert_eq!(c.checkpoint.admission_queue, Some(2));
        assert!(c
            .checkpoint
            .runner()
            .expect("runner builds")
            .admission()
            .is_some());
        assert_eq!(c.ppd, PpdPolicy::Fixed(5));
        assert_eq!(c.mappers, 2);
        assert_eq!(c.reducers, 3);
        assert!(c.cluster.skip_bad_records);
        assert_eq!(c.cluster.progress_timeout, Duration::from_millis(9));
        assert_eq!(c.cluster.storage.memory_budget, Some(1 << 20));
        assert_eq!(
            c.cluster.storage.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/spills"))
        );
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = SkylineConfig::test();
        c.mappers = 0;
        assert!(c.validate().is_err());
        let mut c = SkylineConfig::test();
        c.reducers = 0;
        assert!(c.validate().is_err());
        let mut c = SkylineConfig::test();
        c.ppd = PpdPolicy::Fixed(0);
        assert!(c.validate().is_err());
        let mut c = SkylineConfig::test();
        c.ppd = PpdPolicy::Auto {
            max_ppd: 1,
            max_partitions: 100,
        };
        assert!(c.validate().is_err());
    }
}
