//! MR-GPMRS: Grid Partitioning based Multiple-Reducer Skyline computation
//! (paper Section 5, Algorithms 8–9, Figure 5).
//!
//! The map phase is MR-GPSRS's (per-partition local skylines plus
//! false-positive elimination) with different output routing: every mapper
//! deterministically derives the same [`GroupPlan`] from the global
//! bitstring — independent partition groups (Algorithm 7), merged into at
//! most `r` buckets (Section 5.4.1) — splits its local skyline along the
//! buckets' partition sets, and emits one payload per bucket. Reducer `j`
//! then owns an ADR-closed set of partitions: by Lemma 2 it can finalize
//! their skylines *without coordination*, and multiple reducers emit
//! disjoint parts of the global skyline in parallel. Partitions replicated
//! across buckets are output only by their designated bucket
//! (Section 5.4.2), so the union over reducers is exact and duplicate-free.

use std::sync::Arc;

use skymr_common::dataset::canonicalize;
use skymr_common::{Counters, Dataset, Tuple};
use skymr_mapreduce::{
    run_job, ByteSized, Emitter, JobConfig, MapFactory, MapTask, ModuloPartitioner,
    OutputCollector, PipelineMetrics, ReduceFactory, ReduceTask, TaskContext,
};

use crate::bitstring::job::generate_bitstring;
use crate::bitstring::Bitstring;
use crate::checkpoint::BitstringStage;
use crate::config::SkylineConfig;
use crate::gpsrs::{record_task_stats, GpsrsMapTask, PartitionSkylines};
use crate::groups::{plan_groups, GroupPlan};
use crate::local::{insert_into_partition, CmpStats, CoordScratch, LocalSkylines};
use crate::result::{RunInfo, SkylineRun};

/// Map side of MR-GPMRS (Algorithm 8).
#[derive(Debug)]
pub struct GpmrsMapFactory {
    bitstring: Arc<Bitstring>,
    plan: Arc<GroupPlan>,
    local_algo: crate::local::LocalAlgo,
}

impl GpmrsMapFactory {
    /// A factory shipping the bitstring and the (deterministically derived)
    /// group plan to every mapper.
    pub fn new(
        bitstring: Arc<Bitstring>,
        plan: Arc<GroupPlan>,
        local_algo: crate::local::LocalAlgo,
    ) -> Self {
        Self {
            bitstring,
            plan,
            local_algo,
        }
    }
}

/// Per-split mapper state: the shared GPSRS local-skyline logic plus the
/// group plan used to route output.
#[derive(Debug)]
pub struct GpmrsMapTask {
    inner: GpsrsMapTask,
    plan: Arc<GroupPlan>,
}

impl MapTask for GpmrsMapTask {
    type In = Tuple;
    type K = u32;
    type V = PartitionSkylines;

    fn map(&mut self, input: &Tuple, _out: &mut Emitter<u32, PartitionSkylines>) {
        self.inner.consume(input);
    }

    fn finish(&mut self, out: &mut Emitter<u32, PartitionSkylines>) {
        // Algorithm 8 lines 9–10 (false-positive elimination) …
        let skylines = self.inner.finalize();
        // … lines 11–19: split the local skyline along the bucket partition
        // sets and send each piece to its reducer. A partition lying in
        // several buckets is replicated, exactly as the paper requires.
        for (bucket_index, bucket) in self.plan.buckets.iter().enumerate() {
            let payload: PartitionSkylines = skylines
                .iter()
                .filter(|(p, _)| bucket.partitions.contains(p))
                .map(|(p, s)| (*p, s.clone()))
                .collect();
            // Empty payloads are still emitted: every reducer must hear
            // from every mapper so merge order stays deterministic.
            out.emit(bucket_index as u32, payload);
        }
    }
}

impl MapFactory for GpmrsMapFactory {
    type Task = GpmrsMapTask;
    fn create(&self, ctx: &TaskContext) -> GpmrsMapTask {
        GpmrsMapTask {
            inner: GpsrsMapTask::new(
                Arc::clone(&self.bitstring),
                ctx.counters.clone(),
                self.local_algo,
            ),
            plan: Arc::clone(&self.plan),
        }
    }
}

/// Reduce side of MR-GPMRS (Algorithm 9): finalize one bucket's partitions
/// independently and output only designated partitions.
#[derive(Debug)]
pub struct GpmrsReduceFactory {
    bitstring: Arc<Bitstring>,
    plan: Arc<GroupPlan>,
}

impl GpmrsReduceFactory {
    /// A factory over the shared bitstring and plan.
    pub fn new(bitstring: Arc<Bitstring>, plan: Arc<GroupPlan>) -> Self {
        Self { bitstring, plan }
    }
}

/// Reducer state for one bucket.
#[derive(Debug)]
pub struct GpmrsReduceTask {
    bitstring: Arc<Bitstring>,
    plan: Arc<GroupPlan>,
    counters: Counters,
}

impl ReduceTask for GpmrsReduceTask {
    type K = u32;
    type V = PartitionSkylines;
    type Out = Tuple;

    // xtask: hot
    fn reduce(
        &mut self,
        key: u32,
        values: Vec<PartitionSkylines>,
        out: &mut OutputCollector<Tuple>,
    ) {
        let bucket_index = key as usize;
        let grid = *self.bitstring.grid();
        let mut stats = CmpStats::default();
        // Section 5.4.2: a reducer "only computes and outputs the local
        // skyline for a replicated partition if it receives the designation
        // notification". Partitions designated elsewhere serve purely as
        // *comparison sources* here, so their per-mapper pieces are
        // concatenated without the quadratic merge — a tuple dominated
        // within such a concatenation can only ever remove tuples its own
        // dominator would remove too, so using the raw union is sound.
        let mut sources: std::collections::BTreeMap<u32, Vec<Tuple>> =
            std::collections::BTreeMap::new();
        for payload in values {
            for (p, tuples) in payload {
                debug_assert!(
                    self.plan.buckets[bucket_index].partitions.contains(&p),
                    "partition {p} routed to wrong bucket {bucket_index}"
                );
                sources.entry(p).or_default().extend(tuples);
            }
        }
        // Lines 1–8 for the designated partitions only: merge the
        // per-mapper local skylines with InsertTuple. Designated entries
        // are *moved* out of `sources` rather than cloned: the merged
        // skyline eliminates everything the raw union would (a dropped
        // union tuple's dominator survives the merge, and dominance is
        // transitive), so the union is not needed afterwards.
        let designated: Vec<u32> = sources
            .keys()
            .copied()
            .filter(|p| self.plan.designated.get(p) == Some(&bucket_index))
            .collect();
        let mut skylines = LocalSkylines::new();
        for p in designated {
            let Some(tuples) = sources.remove(&p) else {
                continue;
            };
            for t in tuples {
                insert_into_partition(&mut skylines, p, t, &mut stats);
            }
        }
        // Lines 9–10: false-positive elimination for designated partitions
        // against every partition of the bucket — the raw unions still in
        // `sources` plus the other designated partitions' merged skylines.
        // Every designated partition's surviving ADR lies inside its own
        // independent group, hence inside this bucket (Lemma 2) — no other
        // data is needed.
        let mut scratch = CoordScratch::new(&grid);
        let finalized: Vec<u32> = skylines.keys().copied().collect();
        for p in finalized {
            let Some(mut sp) = skylines.remove(&p) else {
                continue;
            };
            crate::local::compare_partitions_scratch(
                &grid,
                p,
                &mut sp,
                sources
                    .iter()
                    .map(|(&q, s)| (q, s.as_slice()))
                    .chain(skylines.iter().map(|(&q, s)| (q, s.as_slice()))),
                &mut stats,
                &mut scratch,
            );
            if !sp.is_empty() {
                skylines.insert(p, sp);
            }
        }
        record_task_stats(&self.counters, "reduce", stats);
        // Per-bucket (partition-group) comparison counts: each bucket is an
        // ADR-closed set of partitions, so these expose the per-group
        // balance the merge policy aimed for.
        self.counters.add(
            &format!("reduce.bucket.{bucket_index}.partition_cmps"),
            stats.partition_cmps,
        );
        self.counters.add(
            &format!("reduce.bucket.{bucket_index}.tuple_cmps"),
            stats.tuple_cmps,
        );
        self.counters.add(
            &format!("reduce.bucket.{bucket_index}.designated_partitions"),
            skylines.len() as u64,
        );
        // Line 11: emit the finalized designated partitions.
        for tuples in skylines.into_values() {
            for t in tuples {
                out.collect(t);
            }
        }
    }
}

impl ReduceFactory for GpmrsReduceFactory {
    type Task = GpmrsReduceTask;
    fn create(&self, ctx: &TaskContext) -> GpmrsReduceTask {
        GpmrsReduceTask {
            bitstring: Arc::clone(&self.bitstring),
            plan: Arc::clone(&self.plan),
            counters: ctx.counters.clone(),
        }
    }
}

/// Runs the full MR-GPMRS pipeline: bitstring generation job followed by
/// the multi-reducer skyline job.
pub fn mr_gpmrs(dataset: &Dataset, config: &SkylineConfig) -> skymr_common::Result<SkylineRun> {
    config.validate()?;
    // The whole two-job pipeline runs under one algorithm-level span.
    let _scope = config
        .telemetry
        .as_ref()
        .map(|c| c.scope("algo", "mr-gpmrs"));
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();
    let mut counters = std::collections::BTreeMap::new();
    let mut runner = config.checkpoint.runner()?;

    let BitstringStage {
        bitstring,
        info: bs_info,
    } = runner.stage("bitstring", &mut metrics, |metrics| {
        let (bitstring, info, bs_metrics) =
            generate_bitstring(&splits, dataset.dim(), dataset.len(), config)?;
        metrics.push(bs_metrics);
        Ok(BitstringStage { bitstring, info })
    })?;

    let grid = *bitstring.grid();
    let plan = plan_groups(&bitstring, config.reducers, config.merge_policy);
    let mut info = RunInfo {
        ppd: bs_info.ppd,
        partitions: grid.num_partitions(),
        non_empty_partitions: bs_info.non_empty,
        surviving_partitions: bs_info.surviving,
        independent_groups: plan.groups.len(),
        buckets: plan.num_buckets(),
    };

    if plan.num_buckets() == 0 {
        // Empty input: nothing survived the bitstring job.
        return Ok(SkylineRun {
            skyline: Vec::new(),
            metrics,
            counters,
            info,
        });
    }

    let bitstring = Arc::new(bitstring);
    let plan = Arc::new(plan);
    let job_config = JobConfig::new("gpmrs", plan.num_buckets())
        .with_cache_bytes(bitstring.bits().byte_size())
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let skyline = runner.stage("gpmrs", &mut metrics, |metrics| {
        let outcome = metrics.track(run_job(
            &config.cluster,
            &job_config,
            &splits,
            &GpmrsMapFactory::new(Arc::clone(&bitstring), Arc::clone(&plan), config.local_algo),
            &GpmrsReduceFactory::new(Arc::clone(&bitstring), Arc::clone(&plan)),
            &ModuloPartitioner,
        ))?;
        for (k, v) in outcome.counters.snapshot() {
            counters.insert(format!("gpmrs.{k}"), v);
        }
        Ok(canonicalize(outcome.into_flat_output()))
    })?;
    info.buckets = plan.num_buckets();
    if cfg!(debug_assertions) {
        if let Err(v) = skymr_mapreduce::analysis::check_skyline(&skyline) {
            panic!("mr_gpmrs produced a non-skyline: {v}");
        }
    }
    Ok(SkylineRun {
        skyline,
        metrics,
        counters,
        info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpsrs::mr_gpsrs;
    use crate::groups::MergePolicy;
    use crate::local::bnl_reference;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn matches_bnl_oracle_on_all_distributions() {
        for dist in [
            Distribution::Independent,
            Distribution::Correlated,
            Distribution::Anticorrelated,
            Distribution::Clustered { clusters: 3 },
        ] {
            let ds = generate(dist, 3, 600, 21);
            let run = mr_gpmrs(&ds, &SkylineConfig::test()).unwrap();
            assert_eq!(
                run.skyline,
                bnl_reference(ds.tuples()),
                "mismatch on {dist:?}"
            );
        }
    }

    #[test]
    fn agrees_with_gpsrs() {
        let ds = generate(Distribution::Anticorrelated, 5, 800, 22);
        let config = SkylineConfig::test();
        let srs = mr_gpsrs(&ds, &config).unwrap();
        let mrs = mr_gpmrs(&ds, &config).unwrap();
        assert_eq!(srs.skyline_ids(), mrs.skyline_ids());
    }

    #[test]
    fn invariant_to_reducer_count() {
        let ds = generate(Distribution::Anticorrelated, 3, 500, 23);
        let base = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(1)).unwrap();
        for r in [2, 3, 5, 8, 17] {
            let run = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(r)).unwrap();
            assert_eq!(
                run.skyline_ids(),
                base.skyline_ids(),
                "mismatch with {r} reducers"
            );
            assert!(run.info.buckets <= r);
        }
    }

    #[test]
    fn invariant_to_merge_policy() {
        let ds = generate(Distribution::Independent, 4, 700, 24);
        let mut comp = SkylineConfig::test().with_reducers(2);
        comp.merge_policy = MergePolicy::ComputationCost;
        let mut comm = SkylineConfig::test().with_reducers(2);
        comm.merge_policy = MergePolicy::CommunicationCost;
        let a = mr_gpmrs(&ds, &comp).unwrap();
        let b = mr_gpmrs(&ds, &comm).unwrap();
        assert_eq!(a.skyline_ids(), b.skyline_ids());
    }

    #[test]
    fn no_duplicate_output_despite_replication() {
        // Plans routinely replicate partitions across buckets; designation
        // must keep the output exactly-once.
        let ds = generate(Distribution::Anticorrelated, 2, 900, 25);
        let run = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(4).with_ppd(6)).unwrap();
        let mut ids = run.skyline_ids();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate tuples in skyline output");
        assert_eq!(run.skyline, bnl_reference(ds.tuples()));
    }

    #[test]
    fn reports_group_structure() {
        let ds = generate(Distribution::Independent, 3, 400, 26);
        let run = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(3)).unwrap();
        assert!(run.info.independent_groups >= 1);
        assert!(run.info.buckets >= 1 && run.info.buckets <= 3);
        assert!(run.info.surviving_partitions <= run.info.non_empty_partitions);
    }

    #[test]
    fn empty_dataset_is_fine() {
        let ds = Dataset::new(4, vec![]).unwrap();
        let run = mr_gpmrs(&ds, &SkylineConfig::test()).unwrap();
        assert!(run.skyline.is_empty());
        assert_eq!(run.info.independent_groups, 0);
    }

    #[test]
    fn survives_injected_failures_on_both_phases() {
        let ds = generate(Distribution::Anticorrelated, 3, 400, 27);
        let clean = mr_gpmrs(&ds, &SkylineConfig::test()).unwrap();
        let mut config = SkylineConfig::test();
        config.fault_tolerance = skymr_mapreduce::FaultTolerance::with_plan(
            skymr_mapreduce::FaultPlan::fail_maps([1])
                .with_reduce_fault(0, skymr_mapreduce::TaskFault::lost(1))
                .for_job("gpmrs"),
        );
        let failed = mr_gpmrs(&ds, &config).unwrap();
        assert_eq!(failed.skyline_ids(), clean.skyline_ids());
        assert_eq!(failed.metrics.jobs[1].map_retries, 1);
        assert_eq!(failed.metrics.jobs[1].reduce_retries, 1);
    }

    #[test]
    fn auto_ppd_policy_works_end_to_end() {
        let ds = generate(Distribution::Anticorrelated, 3, 600, 28);
        let mut config = SkylineConfig::test();
        config.ppd = crate::config::PpdPolicy::auto();
        let run = mr_gpmrs(&ds, &config).unwrap();
        assert_eq!(run.skyline, bnl_reference(ds.tuples()));
    }

    #[test]
    fn more_reducers_spread_shuffle_bytes() {
        let ds = generate(Distribution::Anticorrelated, 4, 1500, 29);
        let one = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(1).with_ppd(4)).unwrap();
        let four = mr_gpmrs(&ds, &SkylineConfig::test().with_reducers(4).with_ppd(4)).unwrap();
        // Replication can only add bytes …
        assert!(four.metrics.jobs[1].shuffle_bytes >= one.metrics.jobs[1].shuffle_bytes);
        // … but spreads them across reducers.
        assert!(four.metrics.jobs[1].per_reducer_bytes.len() > 1);
    }
}
