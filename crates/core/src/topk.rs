//! Top-k dominating queries in MapReduce — a second extension of the
//! paper's framework.
//!
//! The *top-k dominating* query (Yiu & Mamoulis) ranks tuples by their
//! **dominance score** `score(t) = |{x ∈ R : t ≺ x}|` and returns the `k`
//! highest scorers: an absolute, scale-free notion of "most broadly
//! superior" tuples that, unlike the skyline, has a controllable output
//! size.
//!
//! The [`Countstring`] makes this cheap to bound. For a tuple in grid
//! partition `p`:
//!
//! * every tuple of every partition in `DR(p)` is dominated for sure —
//!   a **lower bound** `Σ counts(DR(p))`;
//! * further dominated tuples can only sit in the *ambiguous shell*
//!   `A(p)`: partitions `≥ p` componentwise that are not in `DR(p)`
//!   (including `p` itself) — adding their counts (minus the tuple
//!   itself) gives an **upper bound**.
//!
//! Both bounds depend only on the partition, so the driver derives from
//! the countstring alone a global candidate set: sort partitions by lower
//! bound, accumulate counts until `k` tuples are covered — the k-th best
//! lower bound is a score threshold `T` — and keep every partition whose
//! upper bound reaches `T`. Only candidate partitions can contain top-k
//! scorers.
//!
//! The scoring job then routes every tuple `x` to the reducers of the
//! candidate partitions in whose ambiguous shell `x`'s cell lies (its
//! guaranteed `DR` contribution needs no data movement at all), and each
//! reducer scores its candidate partition's tuples exactly. The driver
//! merges the per-reducer rankings into the global top-k.

use std::sync::Arc;

use skymr_common::dominance::dominates;
use skymr_common::{Dataset, Tuple};
use skymr_mapreduce::{
    run_job, Emitter, JobConfig, MapFactory, MapTask, ModuloPartitioner, OutputCollector,
    PipelineMetrics, ReduceFactory, ReduceTask, TaskContext,
};

use crate::config::SkylineConfig;
use crate::grid::Grid;
use crate::result::RunInfo;
use crate::skyband::Countstring;

/// Result of a top-k dominating query.
#[derive(Debug)]
pub struct TopKRun {
    /// The top `k` tuples with their exact dominance scores, ordered by
    /// score descending (ties broken by ascending id).
    pub ranked: Vec<(Tuple, u64)>,
    /// Per-job metrics.
    pub metrics: PipelineMetrics,
    /// Structural run facts (groups/buckets unused here).
    pub info: RunInfo,
}

/// Reference implementation by exhaustive counting: the test oracle.
pub fn top_k_dominating_reference(tuples: &[Tuple], k: usize) -> Vec<(Tuple, u64)> {
    let mut scored: Vec<(Tuple, u64)> = tuples
        .iter()
        .map(|t| {
            let score = tuples.iter().filter(|x| dominates(t, x)).count() as u64;
            (t.clone(), score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.id.cmp(&b.0.id)));
    scored.truncate(k);
    scored
}

/// The driver-side plan derived from the countstring.
#[derive(Debug)]
pub struct TopKPlan {
    grid: Grid,
    /// Candidate partitions (sorted ascending) that may hold top-k scorers.
    pub candidates: Vec<u32>,
    /// Guaranteed (DR) score contribution per candidate.
    pub dr_sums: Vec<u64>,
    /// The lower-bound threshold the candidates cleared.
    pub threshold: u64,
}

impl TopKPlan {
    /// Builds the candidate plan from partition counts.
    pub fn build(countstring: &Countstring, k: usize) -> Self {
        let grid = countstring.grid();
        let np = grid.num_partitions();
        // Lower bound per partition: Σ counts over DR(p); ambiguous-shell
        // mass: Σ counts over {q ≥ p componentwise} \ DR(p).
        let mut lower = vec![0u64; np];
        let mut shell = vec![0u64; np];
        let mut p_coords = vec![0usize; grid.dim()];
        let mut q_coords = vec![0usize; grid.dim()];
        for p in 0..np {
            if countstring.count(p) == 0 {
                continue;
            }
            grid.coords_into(p, &mut p_coords);
            for q in 0..np {
                if countstring.count(q) == 0 {
                    continue;
                }
                grid.coords_into(q, &mut q_coords);
                let ge = q_coords.iter().zip(p_coords.iter()).all(|(&b, &a)| b >= a);
                if !ge {
                    continue;
                }
                let strictly = q_coords.iter().zip(p_coords.iter()).all(|(&b, &a)| b > a);
                if strictly {
                    lower[p] += countstring.count(q);
                } else {
                    shell[p] += countstring.count(q);
                }
            }
        }
        // Threshold: the k-th best lower bound over tuples (all tuples of
        // a partition share its bounds).
        let mut by_lower: Vec<usize> = (0..np).filter(|&p| countstring.count(p) > 0).collect();
        by_lower.sort_by_key(|&p| std::cmp::Reverse(lower[p]));
        let mut covered = 0u64;
        let mut threshold = 0u64;
        for &p in &by_lower {
            covered += countstring.count(p);
            if covered >= k as u64 {
                threshold = lower[p];
                break;
            }
        }
        // Candidates: partitions whose upper bound reaches the threshold.
        // The shell mass includes the scoring tuple itself, so the true
        // upper bound is `lower + shell − 1 ≥ threshold`, i.e. strictly
        // greater without the self-term.
        let candidates: Vec<u32> = (0..np)
            .filter(|&p| countstring.count(p) > 0 && lower[p] + shell[p] > threshold)
            .map(|p| p as u32)
            .collect();
        let dr_sums = candidates.iter().map(|&p| lower[p as usize]).collect();
        Self {
            grid,
            candidates,
            dr_sums,
            threshold,
        }
    }

    /// `true` iff cell `c` lies in the ambiguous shell of candidate `q`:
    /// `q ≤ c` componentwise with equality somewhere.
    fn in_shell(&self, q_coords: &[usize], c_coords: &[usize]) -> bool {
        let mut all_ge = true;
        let mut any_eq = false;
        for (&c, &q) in c_coords.iter().zip(q_coords.iter()) {
            if c < q {
                all_ge = false;
                break;
            }
            if c == q {
                any_eq = true;
            }
        }
        all_ge && any_eq
    }
}

struct TopKMapFactory {
    plan: Arc<TopKPlan>,
}

struct TopKMapTask {
    plan: Arc<TopKPlan>,
    candidate_coords: Vec<Vec<usize>>,
    cell_buf: Vec<usize>,
}

impl MapTask for TopKMapTask {
    type In = Tuple;
    type K = u32;
    type V = Tuple;

    fn map(&mut self, input: &Tuple, out: &mut Emitter<u32, Tuple>) {
        let cell = self.plan.grid.partition_of(input);
        let dim = self.plan.grid.dim();
        self.cell_buf.resize(dim, 0);
        self.plan.grid.coords_into(cell, &mut self.cell_buf);
        for (ci, qc) in self.candidate_coords.iter().enumerate() {
            if self.plan.in_shell(qc, &self.cell_buf) {
                out.emit(ci as u32, input.clone());
            }
        }
    }
}

impl MapFactory for TopKMapFactory {
    type Task = TopKMapTask;
    fn create(&self, _ctx: &TaskContext) -> TopKMapTask {
        let candidate_coords = self
            .plan
            .candidates
            .iter()
            .map(|&q| self.plan.grid.coords_of(q as usize))
            .collect();
        TopKMapTask {
            plan: Arc::clone(&self.plan),
            candidate_coords,
            cell_buf: Vec::new(),
        }
    }
}

struct TopKReduceFactory {
    plan: Arc<TopKPlan>,
    k: usize,
}

struct TopKReduceTask {
    plan: Arc<TopKPlan>,
    k: usize,
}

impl ReduceTask for TopKReduceTask {
    type K = u32;
    type V = Tuple;
    type Out = (Tuple, u64);

    fn reduce(&mut self, key: u32, values: Vec<Tuple>, out: &mut OutputCollector<(Tuple, u64)>) {
        let candidate = self.plan.candidates[key as usize] as usize;
        let dr_sum = self.plan.dr_sums[key as usize];
        // Scorers: the received tuples whose own cell IS the candidate
        // partition; every received tuple is a potential target.
        let mut ranked: Vec<(Tuple, u64)> = values
            .iter()
            .filter(|t| self.plan.grid.partition_of(t) == candidate)
            .map(|t| {
                let shell_score = values.iter().filter(|x| dominates(t, x)).count() as u64;
                (t.clone(), dr_sum + shell_score)
            })
            .collect();
        // Only this reducer's local top-k can matter globally.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.id.cmp(&b.0.id)));
        ranked.truncate(self.k);
        for entry in ranked {
            out.collect(entry);
        }
    }
}

impl ReduceFactory for TopKReduceFactory {
    type Task = TopKReduceTask;
    fn create(&self, _ctx: &TaskContext) -> TopKReduceTask {
        TopKReduceTask {
            plan: Arc::clone(&self.plan),
            k: self.k,
        }
    }
}

/// Runs the top-k dominating pipeline: countstring job, driver-side
/// candidate bounding, then a parallel scoring job (one reducer key per
/// candidate partition).
///
/// ```
/// use skymr::topk::mr_top_k_dominating;
/// use skymr::SkylineConfig;
/// use skymr_datagen::{generate, Distribution};
///
/// let data = generate(Distribution::Independent, 3, 1_000, 3);
/// let run = mr_top_k_dominating(&data, 5, &SkylineConfig::test()).unwrap();
/// assert_eq!(run.ranked.len(), 5);
/// assert!(run.ranked.windows(2).all(|w| w[0].1 >= w[1].1), "sorted by score");
/// ```
///
/// # Errors
///
/// Fails on invalid configuration or `k == 0`.
pub fn mr_top_k_dominating(
    dataset: &Dataset,
    k: usize,
    config: &SkylineConfig,
) -> skymr_common::Result<TopKRun> {
    config.validate()?;
    if k == 0 {
        return Err(skymr_common::Error::InvalidConfig(
            "k must be at least 1".into(),
        ));
    }
    let grid = match config.ppd {
        crate::config::PpdPolicy::Fixed(n) => Grid::new(dataset.dim().max(1), n)?,
        crate::config::PpdPolicy::Auto {
            max_ppd,
            max_partitions,
        } => {
            let candidates = crate::bitstring::ppd::candidate_ppds(
                dataset.len(),
                dataset.dim().max(1),
                max_ppd,
                max_partitions,
            );
            Grid::new(
                dataset.dim().max(1),
                candidates.last().copied().unwrap_or(2),
            )?
        }
    };
    let splits = dataset.split(config.mappers);
    let mut metrics = PipelineMetrics::new();

    // Job 1: countstring (no k-pruning — every tuple is a potential
    // dominated target, so nothing may be dropped).
    let (countstring, cs_metrics) =
        crate::skyband::run_countstring_job(config, &splits, grid, None)?;
    metrics.push(cs_metrics);

    let plan = Arc::new(TopKPlan::build(&countstring, k));
    let info = RunInfo {
        ppd: grid.ppd(),
        partitions: grid.num_partitions(),
        non_empty_partitions: countstring.non_empty_count(),
        surviving_partitions: plan.candidates.len(),
        independent_groups: 0,
        buckets: plan.candidates.len().min(config.reducers),
    };
    if plan.candidates.is_empty() {
        return Ok(TopKRun {
            ranked: Vec::new(),
            metrics,
            info,
        });
    }

    // Job 2: score the candidates.
    let reducers = plan
        .candidates
        .len()
        .min(config.cluster.reduce_slots)
        .max(1);
    let job = JobConfig::new("topk-dominating", reducers)
        .with_cache_bytes(skymr_mapreduce::ByteSized::byte_size(&countstring))
        .with_fault_tolerance(&config.fault_tolerance)
        .with_collector(config.telemetry.clone());
    let outcome = metrics.track(run_job(
        &config.cluster,
        &job,
        &splits,
        &TopKMapFactory {
            plan: Arc::clone(&plan),
        },
        &TopKReduceFactory {
            plan: Arc::clone(&plan),
            k,
        },
        &ModuloPartitioner,
    ))?;

    let mut ranked = outcome.into_flat_output();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.id.cmp(&b.0.id)));
    ranked.truncate(k);
    Ok(TopKRun {
        ranked,
        metrics,
        info,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_datagen::{generate, Distribution};

    #[test]
    fn reference_orders_by_score() {
        let tuples = vec![
            Tuple::new(0, vec![0.1, 0.1]), // dominates 1, 2
            Tuple::new(1, vec![0.5, 0.5]), // dominates 2
            Tuple::new(2, vec![0.9, 0.9]),
            Tuple::new(3, vec![0.05, 0.95]), // dominates nobody
        ];
        let top = top_k_dominating_reference(&tuples, 2);
        assert_eq!(top[0].0.id, 0);
        assert_eq!(top[0].1, 2);
        assert_eq!(top[1].0.id, 1);
        assert_eq!(top[1].1, 1);
    }

    #[test]
    fn matches_reference_across_distributions() {
        for dist in [
            Distribution::Independent,
            Distribution::Anticorrelated,
            Distribution::Correlated,
        ] {
            let ds = generate(dist, 3, 500, 171);
            for k in [1usize, 5, 20] {
                let run = mr_top_k_dominating(&ds, k, &SkylineConfig::test()).unwrap();
                let oracle = top_k_dominating_reference(ds.tuples(), k);
                assert_eq!(
                    run.ranked, oracle,
                    "top-{k} dominating mismatch on {dist:?}"
                );
            }
        }
    }

    #[test]
    fn invariant_to_job_shape() {
        let ds = generate(Distribution::Independent, 2, 400, 172);
        let oracle = top_k_dominating_reference(ds.tuples(), 10);
        for mappers in [1usize, 3, 7] {
            for ppd in [1usize, 2, 5] {
                let config = SkylineConfig::test().with_mappers(mappers).with_ppd(ppd);
                let run = mr_top_k_dominating(&ds, 10, &config).unwrap();
                assert_eq!(run.ranked, oracle, "m={mappers} ppd={ppd} broke top-k");
            }
        }
    }

    #[test]
    fn k_larger_than_dataset_returns_everything_ranked() {
        let ds = generate(Distribution::Independent, 2, 30, 173);
        let run = mr_top_k_dominating(&ds, 100, &SkylineConfig::test()).unwrap();
        assert_eq!(run.ranked.len(), 30);
        assert_eq!(run.ranked, top_k_dominating_reference(ds.tuples(), 100));
    }

    #[test]
    fn candidate_bounding_actually_prunes() {
        // Clustered data: most partitions can be ruled out by bounds.
        let ds = generate(Distribution::Independent, 2, 3_000, 174);
        let config = SkylineConfig::test().with_ppd(8);
        let run = mr_top_k_dominating(&ds, 3, &config).unwrap();
        assert!(
            run.info.surviving_partitions < run.info.non_empty_partitions,
            "bounding should exclude some partitions ({} vs {})",
            run.info.surviving_partitions,
            run.info.non_empty_partitions
        );
        assert_eq!(run.ranked, top_k_dominating_reference(ds.tuples(), 3));
    }

    #[test]
    fn rejects_k_zero_and_handles_empty() {
        let ds = generate(Distribution::Independent, 2, 10, 175);
        assert!(mr_top_k_dominating(&ds, 0, &SkylineConfig::test()).is_err());
        let empty = Dataset::new(2, vec![]).unwrap();
        let run = mr_top_k_dominating(&empty, 4, &SkylineConfig::test()).unwrap();
        assert!(run.ranked.is_empty());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Identical tuples share scores; ties break by ascending id.
        let ds = Dataset::new(
            2,
            vec![
                Tuple::new(5, vec![0.2, 0.2]),
                Tuple::new(1, vec![0.2, 0.2]),
                Tuple::new(9, vec![0.8, 0.8]),
            ],
        )
        .unwrap();
        let run = mr_top_k_dominating(&ds, 2, &SkylineConfig::test()).unwrap();
        assert_eq!(run.ranked[0].0.id, 1);
        assert_eq!(run.ranked[1].0.id, 5);
        assert_eq!(run.ranked[0].1, 1);
    }
}
