//! Checkpoint/resume wiring for the two-job skyline drivers.
//!
//! The engine's [`Runner`](skymr_mapreduce::Runner) snapshots each stage's
//! forward-flowing value via [`Snapshot`]. For the skyline pipelines those
//! values are the bitstring pre-job's result ([`BitstringStage`], encoded
//! here) and the final tuple list (covered by the engine's
//! `impl Snapshot for Vec<Tuple>`). With both in place, a driver killed
//! between the bitstring job and the skyline job resumes from the
//! checkpoint without re-running the pre-job — and the chaos suite asserts
//! the resumed skyline is byte-identical to a fresh run's.

use skymr_common::BitGrid;
use skymr_mapreduce::Snapshot;

use crate::bitstring::job::BitstringInfo;
use crate::bitstring::Bitstring;
use crate::grid::Grid;

/// The bitstring pre-job's forward-flowing value: the (pruned) global
/// bitstring plus what the job learned about the data. This is exactly
/// what the skyline job needs, so it is what crosses a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitstringStage {
    /// The global bitstring (grid + bit pattern).
    pub bitstring: Bitstring,
    /// PPD/occupancy statistics reported in [`crate::result::RunInfo`].
    pub info: BitstringInfo,
}

/// Layout (all `u64` little-endian): grid dim and PPD, the three
/// [`BitstringInfo`] statistics, the bit count, then one index per set
/// bit in ascending order. Set-bit indices rather than raw words keep the
/// encoding independent of [`BitGrid`]'s internal packing.
impl Snapshot for BitstringStage {
    fn encode(&self) -> Vec<u8> {
        let grid = self.bitstring.grid();
        let bits = self.bitstring.bits();
        let mut out = Vec::with_capacity(56 + bits.count_ones() * 8);
        for field in [
            grid.dim() as u64,
            grid.ppd() as u64,
            self.info.ppd as u64,
            self.info.non_empty as u64,
            self.info.surviving as u64,
            bits.len() as u64,
            bits.count_ones() as u64,
        ] {
            out.extend_from_slice(&field.to_le_bytes());
        }
        for i in bits.iter_ones() {
            out.extend_from_slice(&(i as u64).to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<Self> {
        let mut fields = [0u64; 7];
        if bytes.len() < 56 {
            return None;
        }
        for (k, field) in fields.iter_mut().enumerate() {
            *field = u64::from_le_bytes(bytes.get(k * 8..k * 8 + 8)?.try_into().ok()?);
        }
        let [dim, grid_ppd, info_ppd, non_empty, surviving, bit_len, ones] = fields;
        let grid = Grid::new(usize::try_from(dim).ok()?, usize::try_from(grid_ppd).ok()?).ok()?;
        if grid.num_partitions() as u64 != bit_len {
            return None;
        }
        let ones = usize::try_from(ones).ok()?;
        if bytes.len() != 56 + ones * 8 {
            return None;
        }
        let mut bits = BitGrid::zeros(grid.num_partitions());
        for k in 0..ones {
            let at = 56 + k * 8;
            let i = u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
            let i = usize::try_from(i).ok()?;
            if i >= bits.len() {
                return None;
            }
            bits.set(i);
        }
        Some(Self {
            bitstring: Bitstring::from_parts(grid, bits),
            info: BitstringInfo {
                ppd: usize::try_from(info_ppd).ok()?,
                non_empty: usize::try_from(non_empty).ok()?,
                surviving: usize::try_from(surviving).ok()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkylineConfig;
    use crate::gpsrs::mr_gpsrs;
    use skymr_common::Error;
    use skymr_datagen::{generate, Distribution};

    fn stage() -> BitstringStage {
        let grid = Grid::new(2, 3).unwrap();
        let mut bits = BitGrid::zeros(9);
        for i in [1, 2, 3, 4, 6] {
            bits.set(i);
        }
        BitstringStage {
            bitstring: Bitstring::from_parts(grid, bits),
            info: BitstringInfo {
                ppd: 3,
                non_empty: 5,
                surviving: 5,
            },
        }
    }

    #[test]
    fn bitstring_stage_round_trips() {
        let original = stage();
        let bytes = original.encode();
        assert_eq!(BitstringStage::decode(&bytes).as_ref(), Some(&original));
        assert_eq!(bytes, original.encode(), "encoding must be deterministic");
        // Truncation, padding, and out-of-range bits are all rejected.
        assert!(BitstringStage::decode(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0; 8]);
        assert!(BitstringStage::decode(&padded).is_none());
        let mut bad = bytes;
        let at = bad.len() - 8;
        bad[at..].copy_from_slice(&99u64.to_le_bytes());
        assert!(BitstringStage::decode(&bad).is_none());
    }

    #[test]
    fn killed_pipeline_resumes_to_the_same_skyline() {
        let ds = generate(Distribution::Anticorrelated, 3, 500, 31);
        let fresh = mr_gpsrs(&ds, &SkylineConfig::test()).unwrap();

        let path = std::env::temp_dir().join(format!(
            "skymr-core-resume-test-{}.json",
            std::process::id()
        ));
        let killed = mr_gpsrs(
            &ds,
            &SkylineConfig::test()
                .with_checkpoint_file(&path)
                .with_kill_after(1),
        )
        .expect_err("the kill-point must fire between the two jobs");
        assert_eq!(killed, Error::PipelineKilled { after_jobs: 1 });

        let resumed = mr_gpsrs(
            &ds,
            &SkylineConfig::test()
                .with_checkpoint_file(&path)
                .with_resume(true),
        )
        .unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(resumed.skyline, fresh.skyline);
        // The pipeline shape survives the resume: two jobs, same names.
        assert_eq!(resumed.metrics.jobs.len(), 2);
        assert_eq!(resumed.metrics.jobs[0].name, "bitstring");
        assert_eq!(resumed.metrics.jobs[1].name, "gpsrs");
        // The replayed bitstring stage ran no tasks this time around.
        assert_eq!(resumed.metrics.jobs[0].map_tasks, 0);
        assert_eq!(resumed.info.ppd, fresh.info.ppd);
        assert_eq!(
            resumed.info.surviving_partitions,
            fresh.info.surviving_partitions
        );
    }

    #[test]
    fn resuming_from_a_bit_rotted_checkpoint_aborts_with_a_structured_error() {
        let ds = generate(Distribution::Independent, 2, 200, 7);
        let path =
            std::env::temp_dir().join(format!("skymr-core-rot-test-{}.json", std::process::id()));
        mr_gpsrs(
            &ds,
            &SkylineConfig::test()
                .with_checkpoint_file(&path)
                .with_kill_after(1),
        )
        .expect_err("kill-point fires");

        // Rot one payload bit in the file: swap the first hex digit of the
        // bitstring snapshot's payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let at = text.find("\"payload\":\"").unwrap() + 11;
        let swapped = if text.as_bytes()[at] == b'0' {
            "1"
        } else {
            "0"
        };
        let mut rotted = text;
        rotted.replace_range(at..at + 1, swapped);
        std::fs::write(&path, rotted).unwrap();

        let err = mr_gpsrs(
            &ds,
            &SkylineConfig::test()
                .with_checkpoint_file(&path)
                .with_resume(true),
        )
        .expect_err("rot must abort the resume, not silently re-run");
        let _ = std::fs::remove_file(&path);
        match err {
            Error::CheckpointCorrupt { job, detail } => {
                assert_eq!(job, "bitstring");
                assert!(
                    detail.contains("CRC32C"),
                    "detail names the check: {detail}"
                );
            }
            other => panic!("expected CheckpointCorrupt, got {other:?}"),
        }
    }
}
