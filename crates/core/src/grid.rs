//! The `n × n` grid partitioning of the data space (paper Section 3.1).
//!
//! A [`Grid`] divides `[0,1)^d` into `n` half-open cells per dimension —
//! `n` is the paper's *partitions per dimension* (PPD) — for `n^d`
//! partitions in total. Partitions are indexed in **column-major** order
//! (dimension 0 varies fastest), matching the paper's Figure 2: in the 3×3
//! example the non-empty partitions {1,2,3,4,6} render as the bitstring
//! `011110100`.
//!
//! # Geometry and dominance
//!
//! A partition with per-dimension cell coordinates `c` covers
//! `[c_k·w, (c_k+1)·w)` on dimension `k`, where `w = 1/n`. Its *minimum
//! corner* is `c·w` and its *maximum corner* is `(c+1)·w`.
//!
//! * **Partition dominance** (Definition 2): `p ≺ q` iff `p.max ≺ q.min`.
//!   Because cells are half-open, this reduces to
//!   `p.c_k + 1 ≤ q.c_k` on every dimension — and then *every* tuple of `p`
//!   strictly dominates *every* tuple of `q` (Lemma 1) with no strictness
//!   side condition.
//! * **Dominating region** `DR(p)` (Definition 3): all `q` with
//!   `q.c ≥ p.c + 1` componentwise.
//! * **Anti-dominating region** `ADR(p)` (Definition 4): all `q ≠ p` with
//!   `q.c ≤ p.c` componentwise. A literal corner-point reading of
//!   Definition 4 (`q.min ≺ p.max`) would also admit partitions with some
//!   `q.c_k = p.c_k + 1` when another dimension block ties — but no tuple in
//!   such a `q` can dominate a tuple in `p`, because on dimension `k` every
//!   tuple of `q` is at least `p`'s cell upper bound. The componentwise-`≤`
//!   form is exactly the "may contain a dominating tuple" set and matches
//!   the paper's worked example (`ADR(p4) = {p0, p1, p3}` in Figure 2); a
//!   property test in this module verifies it against brute force over
//!   tuples.

use skymr_common::{Error, Result, Tuple};

/// An `n^d` grid over `[0,1)^d`. Cheap to copy; carries no per-partition
/// state (that lives in [`crate::Bitstring`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    dim: usize,
    ppd: usize,
    num_partitions: usize,
}

impl Grid {
    /// Creates a grid with `ppd` cells per dimension over a `dim`-D space.
    ///
    /// Fails when `dim == 0`, `ppd == 0`, or `ppd^dim` overflows the
    /// addressable partition count.
    pub fn new(dim: usize, ppd: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::InvalidDimension(dim));
        }
        if ppd == 0 {
            return Err(Error::InvalidConfig("PPD must be at least 1".into()));
        }
        let mut num = 1usize;
        for _ in 0..dim {
            num = num
                .checked_mul(ppd)
                .ok_or_else(|| Error::InvalidConfig(format!("{ppd}^{dim} partitions overflow")))?;
        }
        Ok(Self {
            dim,
            ppd,
            num_partitions: num,
        })
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Partitions per dimension `n`.
    #[inline]
    pub fn ppd(&self) -> usize {
        self.ppd
    }

    /// Total number of partitions `n^d`.
    #[inline]
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The column-major index of the partition containing `t`.
    ///
    /// Values are clamped into the last cell defensively (the data-space
    /// invariant `v < 1` already guarantees `cell < n` for valid data).
    #[inline]
    pub fn partition_of(&self, t: &Tuple) -> usize {
        debug_assert_eq!(t.dim(), self.dim);
        let n = self.ppd;
        let mut index = 0usize;
        let mut stride = 1usize;
        for &v in t.values.iter() {
            let cell = ((v * n as f64) as usize).min(n - 1);
            index += cell * stride;
            stride *= n;
        }
        index
    }

    /// Writes the cell coordinates of partition `index` into `coords`.
    ///
    /// # Panics
    ///
    /// Panics if `coords.len() != d` or `index` is out of range.
    #[inline]
    pub fn coords_into(&self, index: usize, coords: &mut [usize]) {
        assert!(index < self.num_partitions, "partition index out of range");
        assert_eq!(coords.len(), self.dim);
        let mut rest = index;
        for c in coords.iter_mut() {
            *c = rest % self.ppd; // xtask: allow(panic-reachability) — Grid::new rejects ppd == 0
            rest /= self.ppd;
        }
    }

    /// The cell coordinates of partition `index` (allocating convenience
    /// wrapper over [`Grid::coords_into`]).
    pub fn coords_of(&self, index: usize) -> Vec<usize> {
        let mut coords = vec![0; self.dim];
        self.coords_into(index, &mut coords);
        coords
    }

    /// The column-major index of the partition at `coords`.
    #[inline]
    pub fn index_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dim);
        let mut index = 0usize;
        let mut stride = 1usize;
        for &c in coords {
            debug_assert!(c < self.ppd);
            index += c * stride;
            stride *= self.ppd;
        }
        index
    }

    /// Partition dominance `p ≺ q` (Definition 2): true iff every tuple of
    /// `p` is guaranteed to dominate every tuple of `q` (Lemma 1).
    pub fn partition_dominates(&self, p: usize, q: usize) -> bool {
        let mut cp = vec![0; self.dim];
        let mut cq = vec![0; self.dim];
        self.coords_into(p, &mut cp);
        self.coords_into(q, &mut cq);
        cp.iter().zip(cq.iter()).all(|(&a, &b)| a < b)
    }

    /// `true` iff `q ∈ ADR(p)`: `q` may contain a tuple dominating a tuple
    /// of `p`.
    pub fn in_adr(&self, p: usize, q: usize) -> bool {
        if p == q {
            return false;
        }
        let mut cp = vec![0; self.dim];
        let mut cq = vec![0; self.dim];
        self.coords_into(p, &mut cp);
        self.coords_into(q, &mut cq);
        cq.iter().zip(cp.iter()).all(|(&b, &a)| b <= a)
    }

    /// Iterates over `ADR(p)` in increasing index order.
    pub fn adr(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        BoxIter::new(
            self,
            self.coords_of(p).into_iter().map(|c| (0, c)).collect(),
        )
        .filter(move |&q| q != p)
    }

    /// Iterates over `DR(p)` in increasing index order.
    pub fn dr(&self, p: usize) -> impl Iterator<Item = usize> + '_ {
        let coords = self.coords_of(p);
        let ranges: Vec<(usize, usize)> = coords
            .into_iter()
            .map(|c| (c + 1, self.ppd.saturating_sub(1)))
            .collect();
        BoxIter::new(self, ranges)
    }

    /// `|ADR(p)| = Π (c_k + 1) − 1` — the paper's `ρ_dom` (Equation 6),
    /// the number of partition-wise comparisons partition `p` requires.
    pub fn adr_size(&self, p: usize) -> u64 {
        let coords = self.coords_of(p);
        coords.iter().map(|&c| (c + 1) as u64).product::<u64>() - 1
    }

    /// Number of d−1-dimensional surfaces touching the origin corner (`d`);
    /// exposed for the cost model's surface bookkeeping.
    pub fn origin_surfaces(&self) -> usize {
        self.dim
    }
}

/// Odometer iterator over an axis-aligned box of cell coordinates,
/// `lo_k ..= hi_k` per dimension, yielding column-major indexes in
/// increasing order. Empty if any `lo_k > hi_k`.
struct BoxIter<'g> {
    grid: &'g Grid,
    ranges: Vec<(usize, usize)>,
    current: Vec<usize>,
    done: bool,
}

impl<'g> BoxIter<'g> {
    fn new(grid: &'g Grid, ranges: Vec<(usize, usize)>) -> Self {
        let done = ranges.iter().any(|&(lo, hi)| lo > hi || hi >= grid.ppd);
        let current = ranges.iter().map(|&(lo, _)| lo).collect();
        Self {
            grid,
            ranges,
            current,
            done,
        }
    }
}

impl Iterator for BoxIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.done {
            return None;
        }
        let index = self.grid.index_of(&self.current);
        // Advance the odometer, least-significant dimension first, so
        // produced indexes are strictly increasing (column-major order).
        let mut k = 0;
        loop {
            if k == self.current.len() {
                self.done = true;
                break;
            }
            if self.current[k] < self.ranges[k].1 {
                self.current[k] += 1;
                break;
            }
            self.current[k] = self.ranges[k].0;
            k += 1;
        }
        Some(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skymr_common::dominance::dominates;

    fn grid3x3() -> Grid {
        Grid::new(2, 3).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Grid::new(0, 3).is_err());
        assert!(Grid::new(2, 0).is_err());
        assert!(Grid::new(64, 1024).is_err(), "overflow must be caught");
        let g = Grid::new(3, 4).unwrap();
        assert_eq!(g.num_partitions(), 64);
    }

    #[test]
    fn column_major_indexing_matches_figure2() {
        let g = grid3x3();
        // Figure 2: p4 is the center cell (coords (1,1)).
        assert_eq!(g.index_of(&[1, 1]), 4);
        assert_eq!(g.coords_of(4), vec![1, 1]);
        assert_eq!(g.index_of(&[0, 2]), 6);
        assert_eq!(g.coords_of(6), vec![0, 2]);
        assert_eq!(g.index_of(&[2, 0]), 2);
    }

    #[test]
    fn partition_of_locates_cells() {
        let g = grid3x3();
        assert_eq!(g.partition_of(&Tuple::new(0, vec![0.0, 0.0])), 0);
        assert_eq!(g.partition_of(&Tuple::new(0, vec![0.5, 0.5])), 4);
        assert_eq!(g.partition_of(&Tuple::new(0, vec![0.99, 0.99])), 8);
        // Cell boundaries belong to the upper cell (half-open cells).
        assert_eq!(g.partition_of(&Tuple::new(0, vec![1.0 / 3.0, 0.0])), 1);
    }

    #[test]
    fn roundtrip_index_coords() {
        let g = Grid::new(3, 4).unwrap();
        for i in 0..g.num_partitions() {
            assert_eq!(g.index_of(&g.coords_of(i)), i);
        }
    }

    #[test]
    fn figure2_dominating_region_of_center() {
        let g = grid3x3();
        // Paper: DR(p4) = {p8}.
        let dr: Vec<usize> = g.dr(4).collect();
        assert_eq!(dr, vec![8]);
        assert!(g.partition_dominates(4, 8));
        assert!(!g.partition_dominates(4, 5));
        assert!(!g.partition_dominates(4, 7));
        assert!(!g.partition_dominates(4, 4));
    }

    #[test]
    fn figure2_anti_dominating_region_of_center() {
        let g = grid3x3();
        // Paper: ADR(p4) = {p0, p1, p3}.
        let adr: Vec<usize> = g.adr(4).collect();
        assert_eq!(adr, vec![0, 1, 3]);
        assert!(g.in_adr(4, 0));
        assert!(g.in_adr(4, 3));
        assert!(!g.in_adr(4, 2), "p2 must not be in ADR(p4)");
        assert!(!g.in_adr(4, 4), "a partition is not in its own ADR");
        assert!(!g.in_adr(4, 8));
    }

    #[test]
    fn corner_partitions() {
        let g = grid3x3();
        // Origin partition: dominates everything with all coords >= 1.
        let dr0: Vec<usize> = g.dr(0).collect();
        assert_eq!(dr0, vec![4, 5, 7, 8]);
        assert_eq!(g.adr(0).count(), 0);
        // Far corner: every other partition is in its ADR; it dominates
        // nothing.
        assert_eq!(g.dr(8).count(), 0);
        assert_eq!(g.adr(8).count(), 8);
    }

    #[test]
    fn adr_size_matches_enumeration() {
        let g = Grid::new(3, 3).unwrap();
        for p in 0..g.num_partitions() {
            assert_eq!(
                g.adr_size(p),
                g.adr(p).count() as u64,
                "ADR size mismatch at {p}"
            );
        }
    }

    #[test]
    fn adr_size_formula_example() {
        // Section 6's running example: the partition with 1-based grid
        // coordinates (1,3) performs 1×3−1 = 2 partition-wise comparisons.
        let g = grid3x3();
        assert_eq!(g.adr_size(g.index_of(&[0, 2])), 2);
        assert_eq!(g.adr_size(0), 0);
        assert_eq!(g.adr_size(8), 8);
    }

    #[test]
    fn dr_iteration_order_is_increasing() {
        let g = Grid::new(3, 3).unwrap();
        for p in 0..g.num_partitions() {
            let dr: Vec<usize> = g.dr(p).collect();
            assert!(
                dr.windows(2).all(|w| w[0] < w[1]),
                "DR({p}) not sorted: {dr:?}"
            );
            let adr: Vec<usize> = g.adr(p).collect();
            assert!(
                adr.windows(2).all(|w| w[0] < w[1]),
                "ADR({p}) not sorted: {adr:?}"
            );
        }
    }

    #[test]
    fn dominance_lemma1_holds_for_sampled_tuples() {
        // If p ≺ q then any tuple of p dominates any tuple of q — sample
        // tuples at cell corners and centers.
        let g = Grid::new(2, 4).unwrap();
        let w = 0.25;
        let tuples_in = |idx: usize| {
            let c = g.coords_of(idx);
            vec![
                Tuple::new(0, vec![c[0] as f64 * w, c[1] as f64 * w]),
                Tuple::new(
                    1,
                    vec![c[0] as f64 * w + w / 2.0, c[1] as f64 * w + w / 2.0],
                ),
                Tuple::new(
                    2,
                    vec![c[0] as f64 * w + w * 0.99, c[1] as f64 * w + w * 0.99],
                ),
            ]
        };
        for p in 0..16 {
            for q in 0..16 {
                if g.partition_dominates(p, q) {
                    for tp in tuples_in(p) {
                        for tq in tuples_in(q) {
                            assert!(
                                dominates(&tp, &tq),
                                "Lemma 1 violated: p{p} ≺ p{q} but {tp:?} does not dominate {tq:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn adr_is_exactly_the_may_dominate_set() {
        // q ∈ ADR(p) iff there exist tuples tq ∈ q, tp ∈ p with tq ≺ tp.
        // For q ∉ ADR(p) ∪ {p}, even the best corner of q must fail to
        // dominate the worst corner of p.
        let g = Grid::new(2, 3).unwrap();
        let w = 1.0 / 3.0;
        for p in 0..9 {
            let cp = g.coords_of(p);
            for q in 0..9 {
                if q == p {
                    continue;
                }
                let cq = g.coords_of(q);
                let q_best = Tuple::new(0, vec![cq[0] as f64 * w, cq[1] as f64 * w]);
                let p_worst = Tuple::new(
                    1,
                    vec![(cp[0] + 1) as f64 * w - 1e-9, (cp[1] + 1) as f64 * w - 1e-9],
                );
                let possible = dominates(&q_best, &p_worst);
                assert_eq!(
                    g.in_adr(p, q),
                    possible,
                    "ADR mismatch: p={p} q={q} possible={possible}"
                );
            }
        }
    }

    #[test]
    fn one_dimensional_grid() {
        let g = Grid::new(1, 5).unwrap();
        assert_eq!(g.num_partitions(), 5);
        assert_eq!(g.partition_of(&Tuple::new(0, vec![0.41])), 2);
        assert!(g.partition_dominates(1, 3));
        assert!(!g.partition_dominates(1, 1));
        let adr: Vec<usize> = g.adr(3).collect();
        assert_eq!(adr, vec![0, 1, 2]);
        let dr: Vec<usize> = g.dr(2).collect();
        assert_eq!(dr, vec![3, 4]);
    }

    #[test]
    fn high_dimensional_grid_small_ppd() {
        let g = Grid::new(8, 2).unwrap();
        assert_eq!(g.num_partitions(), 256);
        // Origin dominates only the far corner (needs +1 on all dims).
        let dr: Vec<usize> = g.dr(0).collect();
        assert_eq!(dr, vec![255]);
        assert_eq!(g.adr(255).count(), 255);
    }

    #[test]
    fn ppd_one_has_single_partition() {
        let g = Grid::new(3, 1).unwrap();
        assert_eq!(g.num_partitions(), 1);
        assert_eq!(g.partition_of(&Tuple::new(0, vec![0.9, 0.1, 0.5])), 0);
        assert_eq!(g.adr(0).count(), 0);
        assert_eq!(g.dr(0).count(), 0);
    }
}
