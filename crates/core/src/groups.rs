//! Independent partition groups (paper Sections 5.1–5.2) and their
//! distribution to reducers (Sections 5.3–5.4).
//!
//! An *independent partition group* `P_I` is a set of partitions closed
//! under anti-dominating regions: `∀p ∈ P_I ⇒ ADR(p) ⊆ P_I` (Definition 5,
//! restricted to surviving partitions — empty and dominated partitions
//! contribute no skyline tuples, see the module docs of [`crate::grid`]).
//! Lemma 2 then guarantees the skyline of the tuples in `P_I` is a subset
//! of the global skyline, so each group can be finalized by a reducer in
//! isolation.
//!
//! Generation (Algorithm 7) repeatedly takes the surviving partition with
//! the **largest index** as a seed — with column-major indexing that
//! partition is always a *maximum partition* (Definition 6) among the
//! remaining set, because `q.c ≥ p.c` componentwise implies
//! `index(q) ≥ index(p)` — and forms the group `{seed} ∪ ADR(seed)`.
//! Partitions may be replicated across groups (paper Figure 6).
//!
//! When there are more groups than reducers, groups are **merged**
//! (Section 5.4.1) under one of two policies; and because replicated
//! partitions would be reported by several reducers, exactly one bucket is
//! **designated responsible** for each partition (Section 5.4.2).

use std::collections::{BTreeMap, BTreeSet};

use crate::bitstring::Bitstring;

/// One independent partition group: a seed (maximum partition) plus every
/// surviving partition in its anti-dominating region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependentGroup {
    /// The maximum partition this group was grown from.
    pub seed: u32,
    /// All partitions of the group, sorted ascending; includes `seed`.
    pub partitions: Vec<u32>,
}

impl IndependentGroup {
    /// The paper's computation-cost estimate for the group: `|ADR(seed)|`
    /// restricted to surviving partitions, i.e. the group size minus the
    /// seed itself.
    pub fn cost(&self) -> u64 {
        (self.partitions.len() - 1) as u64
    }
}

/// Generates independent partition groups from a (pruned) bitstring
/// (Algorithm 7).
pub fn generate_independent_groups(bs: &Bitstring) -> Vec<IndependentGroup> {
    let grid = bs.grid();
    let mut working = bs.bits().clone();
    let mut groups = Vec::new();
    while let Some(seed) = working.highest_one() {
        let mut partitions: Vec<u32> = grid
            .adr(seed)
            .filter(|&q| bs.is_set(q))
            .map(|q| q as u32)
            .collect();
        partitions.push(seed as u32);
        partitions.sort_unstable();
        for &p in &partitions {
            if working.get(p as usize) {
                working.clear(p as usize);
            }
        }
        groups.push(IndependentGroup {
            seed: seed as u32,
            partitions,
        });
    }
    groups
}

/// How groups are merged when there are more groups than reducers
/// (Section 5.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergePolicy {
    /// Balance the estimated computation cost (`|seed.ADR|`) across
    /// reducers — the option the paper found superior and uses in its
    /// experiments.
    ComputationCost,
    /// Merge groups sharing the most partitions, minimizing replicated
    /// communication — the alternative the paper describes and rejects for
    /// load-balance reasons. Kept for the ablation benchmarks.
    CommunicationCost,
}

/// One reducer's share of the groups.
#[derive(Debug, Clone, Default)]
pub struct Bucket {
    /// Indices into [`GroupPlan::groups`] of the merged groups.
    pub group_indices: Vec<usize>,
    /// Union of the partitions of all merged groups.
    pub partitions: BTreeSet<u32>,
    /// Total estimated computation cost.
    pub cost: u64,
}

/// The deterministic distribution plan every mapper (and the driver)
/// derives from the bitstring: groups, merged buckets, and per-partition
/// responsibility designations.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// All independent groups, in generation order.
    pub groups: Vec<IndependentGroup>,
    /// Reducer buckets (at most the requested reducer count).
    pub buckets: Vec<Bucket>,
    /// For each partition, the single bucket that must output its local
    /// skyline (duplicate elimination, Section 5.4.2).
    pub designated: BTreeMap<u32, usize>,
}

impl GroupPlan {
    /// Number of reducers the plan actually uses.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

/// Builds the full distribution plan for `reducers` reducers.
///
/// Deterministic: depends only on the bitstring contents, the reducer
/// count, and the policy — the property MR-GPMRS relies on for all mappers
/// to derive identical plans ("this step is the same on all mappers",
/// Section 5.3).
///
/// ```
/// use skymr::bitstring::Bitstring;
/// use skymr::groups::{plan_groups, MergePolicy};
/// use skymr::Grid;
/// use skymr_common::BitGrid;
///
/// // The paper's Figure 6 occupancy on a 3×3 grid.
/// let grid = Grid::new(2, 3).unwrap();
/// let mut bits = BitGrid::zeros(9);
/// for i in [1, 2, 3, 4, 6] {
///     bits.set(i);
/// }
/// let bs = Bitstring::from_parts(grid, bits);
/// let plan = plan_groups(&bs, 2, MergePolicy::ComputationCost);
/// assert_eq!(plan.groups.len(), 3); // IG1={3,6}, IG2={1,3,4}, IG3={1,2}
/// assert_eq!(plan.num_buckets(), 2);
/// assert_eq!(plan.designated.len(), 5); // every partition exactly once
/// ```
pub fn plan_groups(bs: &Bitstring, reducers: usize, policy: MergePolicy) -> GroupPlan {
    assert!(reducers > 0, "plan needs at least one reducer");
    let groups = generate_independent_groups(bs);
    let num_buckets = reducers.min(groups.len());
    let mut buckets: Vec<Bucket> = (0..num_buckets).map(|_| Bucket::default()).collect();

    // Merge order: largest first so the greedy placements balance well.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    match policy {
        MergePolicy::ComputationCost => {
            order.sort_by_key(|&i| (std::cmp::Reverse(groups[i].cost()), groups[i].seed));
            for gi in order {
                // Least-loaded bucket (ties -> lowest index): LPT balancing
                // of the per-group cost estimates.
                let Some((bi, _)) = buckets.iter().enumerate().min_by_key(|(i, b)| (b.cost, *i))
                else {
                    continue;
                };
                assign(&mut buckets[bi], gi, &groups[gi]);
            }
        }
        MergePolicy::CommunicationCost => {
            order.sort_by_key(|&i| {
                (
                    std::cmp::Reverse(groups[i].partitions.len()),
                    groups[i].seed,
                )
            });
            for (slot, &gi) in order.iter().take(num_buckets).enumerate() {
                assign(&mut buckets[slot], gi, &groups[gi]);
            }
            for &gi in order.iter().skip(num_buckets) {
                // Bucket sharing the most partitions with this group
                // (ties -> smaller bucket, then lowest index).
                let Some((bi, _)) = buckets.iter().enumerate().max_by_key(|(i, b)| {
                    let overlap = groups[gi]
                        .partitions
                        .iter()
                        .filter(|p| b.partitions.contains(p))
                        .count();
                    (
                        overlap,
                        std::cmp::Reverse(b.partitions.len()),
                        std::cmp::Reverse(*i),
                    )
                }) else {
                    continue;
                };
                assign(&mut buckets[bi], gi, &groups[gi]);
            }
        }
    }

    // Responsibility designation: the group with the minimal cost estimate
    // wins the partitions it replicates (ties -> smaller seed), so already
    // expensive reducers are not burdened further (Section 5.4.2).
    let mut responsible_group: BTreeMap<u32, usize> = BTreeMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for &p in &g.partitions {
            let better = match responsible_group.get(&p) {
                None => true,
                Some(&cur) => (g.cost(), g.seed) < (groups[cur].cost(), groups[cur].seed),
            };
            if better {
                responsible_group.insert(p, gi);
            }
        }
    }
    let group_to_bucket: BTreeMap<usize, usize> = buckets
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.group_indices.iter().map(move |&gi| (gi, bi)))
        .collect();
    let designated = responsible_group
        .into_iter()
        .map(|(p, gi)| (p, group_to_bucket[&gi]))
        .collect();

    GroupPlan {
        groups,
        buckets,
        designated,
    }
}

fn assign(bucket: &mut Bucket, group_index: usize, group: &IndependentGroup) {
    bucket.group_indices.push(group_index);
    bucket.partitions.extend(group.partitions.iter().copied());
    bucket.cost += group.cost();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::Grid;
    use skymr_common::BitGrid;

    /// Figure 6's occupancy: non-empty partitions {1,2,3,4,6} in a 3×3
    /// grid (p8's block empty; nothing pruned).
    fn figure6_bitstring() -> Bitstring {
        let grid = Grid::new(2, 3).unwrap();
        let mut bits = BitGrid::zeros(9);
        for i in [1, 2, 3, 4, 6] {
            bits.set(i);
        }
        Bitstring::from_parts(grid, bits)
    }

    #[test]
    fn figure6_groups_match_paper() {
        let groups = generate_independent_groups(&figure6_bitstring());
        // Paper: IG1 = {p3, p6}, IG2 = {p1, p3, p4}, IG3 = {p1, p2}.
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].seed, 6);
        assert_eq!(groups[0].partitions, vec![3, 6]);
        assert_eq!(groups[1].seed, 4);
        assert_eq!(groups[1].partitions, vec![1, 3, 4]);
        assert_eq!(groups[2].seed, 2);
        assert_eq!(groups[2].partitions, vec![1, 2]);
    }

    #[test]
    fn groups_cover_all_surviving_partitions() {
        let bs = figure6_bitstring();
        let groups = generate_independent_groups(&bs);
        let covered: BTreeSet<u32> = groups.iter().flat_map(|g| g.partitions.clone()).collect();
        let surviving: BTreeSet<u32> = bs.iter_set().map(|p| p as u32).collect();
        assert_eq!(covered, surviving);
    }

    #[test]
    fn groups_are_adr_closed() {
        // Definition 5 restricted to surviving partitions: for every p in a
        // group, every surviving q ∈ ADR(p) is also in the group.
        let bs = figure6_bitstring();
        let grid = bs.grid();
        for g in generate_independent_groups(&bs) {
            let set: BTreeSet<u32> = g.partitions.iter().copied().collect();
            for &p in &g.partitions {
                for q in grid.adr(p as usize) {
                    if bs.is_set(q) {
                        assert!(
                            set.contains(&(q as u32)),
                            "group seeded at {} misses {} ∈ ADR({p})",
                            g.seed,
                            q
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn seeds_are_maximum_partitions() {
        // A seed must not lie in the ADR of any other surviving partition
        // that is still unassigned when it is chosen; the simplest sound
        // check: the seed of group k is not in the ADR of any later seed.
        let bs = figure6_bitstring();
        let grid = bs.grid();
        let groups = generate_independent_groups(&bs);
        for (i, g) in groups.iter().enumerate() {
            for later in &groups[i + 1..] {
                assert!(
                    !grid.in_adr(later.seed as usize, g.seed as usize) || g.seed == later.seed,
                    "seed {} is inside ADR of later seed {}",
                    g.seed,
                    later.seed
                );
            }
        }
    }

    #[test]
    fn empty_bitstring_yields_no_groups() {
        let grid = Grid::new(2, 3).unwrap();
        let bs = Bitstring::empty(grid);
        assert!(generate_independent_groups(&bs).is_empty());
        let plan = plan_groups(&bs, 4, MergePolicy::ComputationCost);
        assert_eq!(plan.num_buckets(), 0);
        assert!(plan.designated.is_empty());
    }

    #[test]
    fn plan_uses_at_most_requested_reducers() {
        let bs = figure6_bitstring();
        for r in 1..=5 {
            let plan = plan_groups(&bs, r, MergePolicy::ComputationCost);
            assert!(plan.num_buckets() <= r);
            assert!(plan.num_buckets() <= plan.groups.len());
            // Every group lands in exactly one bucket.
            let mut seen = BTreeSet::new();
            for b in &plan.buckets {
                for &gi in &b.group_indices {
                    assert!(seen.insert(gi), "group {gi} assigned twice");
                }
            }
            assert_eq!(seen.len(), plan.groups.len());
        }
    }

    #[test]
    fn designations_cover_every_partition_exactly_once() {
        let bs = figure6_bitstring();
        for policy in [MergePolicy::ComputationCost, MergePolicy::CommunicationCost] {
            for r in 1..=4 {
                let plan = plan_groups(&bs, r, policy);
                let surviving: BTreeSet<u32> = bs.iter_set().map(|p| p as u32).collect();
                assert_eq!(
                    plan.designated.keys().copied().collect::<BTreeSet<u32>>(),
                    surviving
                );
                // The designated bucket actually holds the partition.
                for (&p, &bi) in &plan.designated {
                    assert!(
                        plan.buckets[bi].partitions.contains(&p),
                        "partition {p} designated to bucket {bi} that lacks it"
                    );
                }
            }
        }
    }

    #[test]
    fn designation_prefers_cheapest_group() {
        // Figure 6: p3 is in IG1 (cost 1) and IG2 (cost 2) -> IG1 wins;
        // p1 is in IG2 (cost 2) and IG3 (cost 1) -> IG3 wins.
        let bs = figure6_bitstring();
        let plan = plan_groups(&bs, 3, MergePolicy::ComputationCost);
        let bucket_of_group = |gi: usize| {
            plan.buckets
                .iter()
                .position(|b| b.group_indices.contains(&gi))
                .unwrap()
        };
        assert_eq!(plan.designated[&3], bucket_of_group(0), "p3 belongs to IG1");
        assert_eq!(plan.designated[&1], bucket_of_group(2), "p1 belongs to IG3");
    }

    #[test]
    fn computation_cost_merging_balances_load() {
        // An 8×8 anti-diagonal plus the origin: eight groups of cost 1
        // (each anti-diagonal partition plus the origin), which two buckets
        // must split evenly.
        let grid = Grid::new(2, 8).unwrap();
        let mut bits = BitGrid::zeros(64);
        bits.set(grid.index_of(&[0, 0]));
        for i in 0..8 {
            bits.set(grid.index_of(&[i, 7 - i]));
        }
        let bs = Bitstring::from_parts(grid, bits);
        let plan = plan_groups(&bs, 2, MergePolicy::ComputationCost);
        assert_eq!(plan.num_buckets(), 2);
        let costs: Vec<u64> = plan.buckets.iter().map(|b| b.cost).collect();
        let max = *costs.iter().max().unwrap();
        let min = *costs.iter().min().unwrap();
        assert!(max - min <= 1, "unbalanced buckets: {costs:?}");
    }

    #[test]
    fn plans_are_deterministic() {
        let bs = figure6_bitstring();
        for policy in [MergePolicy::ComputationCost, MergePolicy::CommunicationCost] {
            let a = plan_groups(&bs, 2, policy);
            let b = plan_groups(&bs, 2, policy);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "plan not deterministic");
        }
    }

    #[test]
    fn communication_policy_prefers_overlap() {
        let bs = figure6_bitstring();
        // Groups: IG1{3,6} IG2{1,3,4} IG3{1,2}. With 2 buckets and
        // communication merging, IG2 (largest) and IG1/IG3 seed the
        // buckets; the leftover group joins whichever shares more
        // partitions.
        let plan = plan_groups(&bs, 2, MergePolicy::CommunicationCost);
        assert_eq!(plan.num_buckets(), 2);
        let total_partitions: usize = plan.buckets.iter().map(|b| b.partitions.len()).sum();
        let comp = plan_groups(&bs, 2, MergePolicy::ComputationCost);
        let comp_total: usize = comp.buckets.iter().map(|b| b.partitions.len()).sum();
        assert!(
            total_partitions <= comp_total,
            "communication merging should not replicate more than computation merging here"
        );
    }
}
