//! The cost-estimation model of paper Section 6.
//!
//! The model upper-bounds the number of **partition-wise comparisons**
//! (executions of `ComparePartitions`' inner body, one per `(p, p_i ∈
//! ADR(p))` pair) performed by a mapper and by the busiest reducer, under
//! two worst-case assumptions: every partition a mapper builds is
//! non-empty, and comparing partitions prunes tuples but never empties a
//! partition.
//!
//! Under those assumptions the partitions surviving bitstring pruning are
//! exactly the `d` origin-side `d−1`-dimensional surfaces of the grid
//! (`ρ_rem(n,d) = n^d − (n−1)^d`, Equation 5). A single partition with
//! 1-based grid coordinates `(i_1, …, i_d)` compares against
//! `ρ_dom = i_1·i_2·…·i_d − 1` partitions (Equation 6); summing over a
//! surface gives `κ` (Equation 7), and summing over the `d` surfaces while
//! subtracting their pairwise overlaps gives the mapper bound `κ_mapper`
//! (Equation 8). A reducer of MR-GPMRS handles one surface-shaped
//! independent group, so its bound is the first (overlap-free) surface sum:
//! `κ_reducer = κ_1` (Equation 9).
//!
//! All quantities are exact integer computations in `u128` (the sums grow
//! like `(n(n+1)/2)^{d−1}`).

/// `ρ_rem(n, d) = n^d − (n−1)^d`: partitions remaining after bitstring
/// pruning when every partition is non-empty (Equation 5).
pub fn rho_rem(n: u64, d: u32) -> u64 {
    n.pow(d) - (n - 1).pow(d)
}

/// `ρ_dom` (Equation 6): partition-wise comparisons for a single partition
/// with **1-based** grid coordinates `coords`.
pub fn rho_dom(coords: &[u64]) -> u128 {
    coords.iter().map(|&c| c as u128).product::<u128>() - 1
}

/// Sum `Σ_{i=a}^{n} i`, the per-dimension factor of a surface sum.
fn tri_range(a: u64, n: u64) -> u128 {
    if a > n {
        return 0;
    }
    let full = (n as u128 * (n as u128 + 1)) / 2;
    let skipped = (a as u128 * (a as u128 - 1)) / 2;
    full - skipped
}

/// `κ_j(n, d)`: partition-wise comparisons on the `j`-th origin surface,
/// with overlaps against surfaces `1..j` removed (the itemized sums before
/// Equation 8). `j` is 1-based; the surface is `d−1`-dimensional with its
/// first `j−1` free coordinates starting from 2 instead of 1.
///
/// For `d = 1` a surface is a single partition with coordinate product 1,
/// so every `κ_j(n, 1) = 0`.
pub fn kappa_surface(n: u64, d: u32, j: u32) -> u128 {
    assert!(j >= 1 && j <= d, "surface index {j} out of 1..={d}");
    if d == 1 {
        return 0;
    }
    let vars = (d - 1) as usize;
    // Saturating products: combinatorially absurd inputs (say n = 1000 at
    // d = 10) pin to u128::MAX instead of wrapping — the estimate is "more
    // comparisons than you can ever run" either way.
    let mut product: u128 = 1; // Π_k Σ_{i=a_k}^n i
    let mut terms: u128 = 1; // number of summands = Π_k (n − a_k + 1)
    for k in 0..vars {
        let a = if (k as u32) < j - 1 { 2 } else { 1 };
        product = product.saturating_mul(tri_range(a, n));
        // Number of summands on this axis; zero when the range is empty
        // (a > n, e.g. overlap-corrected surfaces of a 1-PPD grid).
        let count = if n >= a { (n - a + 1) as u128 } else { 0 };
        terms = terms.saturating_mul(count);
    }
    debug_assert!(product >= terms, "surface sum must dominate its term count");
    product - terms
}

/// `κ_mapper(n, d) = Σ_{j=1}^{d} κ_j` (Equation 8): the worst-case
/// partition-wise comparisons on one mapper (also the single reducer of
/// MR-GPSRS, by the model's assumptions).
pub fn kappa_mapper(n: u64, d: u32) -> u128 {
    (1..=d)
        .map(|j| kappa_surface(n, d, j))
        .fold(0u128, u128::saturating_add)
}

/// `κ_reducer(n, d) = κ_1` (Equation 9): the worst-case partition-wise
/// comparisons on the busiest MR-GPMRS reducer — the biggest independent
/// group is one full surface, counted without overlap deductions.
pub fn kappa_reducer(n: u64, d: u32) -> u128 {
    kappa_surface(n, d, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_rem_matches_paper_example() {
        // Section 6: 3×3 grid -> 3² − 2² = 5 remaining partitions.
        assert_eq!(rho_rem(3, 2), 5);
        assert_eq!(rho_rem(2, 8), 256 - 1);
        assert_eq!(rho_rem(4, 3), 64 - 27);
        assert_eq!(rho_rem(1, 4), 1);
    }

    #[test]
    fn rho_dom_matches_paper_example() {
        // Section 6: partition with 1-based coordinates (1,3) -> 1×3−1 = 2.
        assert_eq!(rho_dom(&[1, 3]), 2);
        assert_eq!(rho_dom(&[1, 1]), 0);
        assert_eq!(rho_dom(&[3, 3]), 8);
    }

    #[test]
    fn surface_sums_for_3x3() {
        // d=2, n=3: κ1 = Σ_{i=1}^3 (i−1) = 3; κ2 = Σ_{i=2}^3 (i−1) = 3.
        assert_eq!(kappa_surface(3, 2, 1), 3);
        assert_eq!(kappa_surface(3, 2, 2), 3);
        assert_eq!(kappa_mapper(3, 2), 6);
        assert_eq!(kappa_reducer(3, 2), 3);
    }

    /// Brute-force κ_mapper: enumerate the d origin surfaces with overlap
    /// removal (a partition counted once, on its first surface) and sum
    /// ρ_dom over them.
    fn kappa_mapper_brute(n: u64, d: u32) -> u128 {
        let d = d as usize;
        let mut total: u128 = 0;
        // Enumerate all partitions with 1-based coords via odometer.
        let mut coords = vec![1u64; d];
        loop {
            // Is this partition on some origin surface (any coord == 1)?
            if let Some(first_surface) = coords.iter().position(|&c| c == 1) {
                // Count it on its *first* surface only — overlap handling:
                // surface j covers partitions with coord_j == 1 and all
                // earlier coords >= 2.
                let _ = first_surface;
                total += rho_dom(&coords);
            }
            // Odometer advance.
            let mut k = 0;
            loop {
                if k == d {
                    return total;
                }
                if coords[k] < n {
                    coords[k] += 1;
                    break;
                }
                coords[k] = 1;
                k += 1;
            }
        }
    }

    #[test]
    fn kappa_mapper_equals_brute_force_surface_enumeration() {
        for (n, d) in [
            (2u64, 2u32),
            (3, 2),
            (4, 2),
            (2, 3),
            (3, 3),
            (4, 3),
            (2, 4),
            (3, 4),
            (2, 5),
        ] {
            assert_eq!(
                kappa_mapper(n, d),
                kappa_mapper_brute(n, d),
                "κ_mapper mismatch n={n} d={d}"
            );
        }
    }

    #[test]
    fn kappa_reducer_is_the_largest_surface() {
        for (n, d) in [(3u64, 2u32), (4, 3), (2, 8), (5, 4)] {
            let k1 = kappa_reducer(n, d);
            for j in 2..=d {
                assert!(
                    kappa_surface(n, d, j) <= k1,
                    "surface {j} exceeds surface 1 for n={n} d={d}"
                );
            }
        }
    }

    #[test]
    fn kappa_is_monotone_in_n_and_d() {
        assert!(kappa_mapper(4, 3) > kappa_mapper(3, 3));
        assert!(kappa_mapper(3, 4) > kappa_mapper(3, 3));
        assert!(kappa_reducer(4, 3) > kappa_reducer(3, 3));
    }

    #[test]
    fn one_dimensional_model_is_zero() {
        assert_eq!(kappa_mapper(5, 1), 0);
        assert_eq!(kappa_reducer(5, 1), 0);
    }

    #[test]
    fn tri_range_basics() {
        assert_eq!(tri_range(1, 3), 6);
        assert_eq!(tri_range(2, 3), 5);
        assert_eq!(tri_range(4, 3), 0);
    }

    #[test]
    fn large_inputs_do_not_overflow() {
        // Realistic extremes of the paper's parameter space.
        assert!(kappa_mapper(1000, 2) > 0); // high PPD, low dim
        assert!(kappa_mapper(4, 10) > 0); // low PPD, high dim
                                          // Absurd combinations saturate instead of wrapping.
        assert!(kappa_mapper(1000, 10) >= kappa_mapper(1000, 9));
    }
}
