//! Property tests for the out-of-core storage plane: the wire codec must
//! round-trip arbitrary tuples and pairs, and the external merge must be
//! observationally identical to the in-memory grouping it replaces.

use std::collections::BTreeMap;

use proptest::prelude::*;

use skymr_common::bytes::{decode_pairs, encode_pairs, Wire, WireCursor};
use skymr_common::Tuple;
use skymr_mapreduce::storage::merge::{external_merge, KWayMerge, RunSource};
use skymr_mapreduce::storage::segment::write_segment;
use skymr_mapreduce::storage::{SpillSession, StorageConfig};

/// Tuples with 1..=8 dimensions of finite unit-interval values — the shape
/// every skyline job shuffles.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (any::<u64>(), proptest::collection::vec(0.0f64..1.0, 1..=8))
        .prop_map(|(id, values)| Tuple::new(id, values))
}

/// The in-memory engine's grouping: runs visited in priority order, pairs
/// appended under their key. The k-way merge (ascending keys, earliest-run
/// tie-break) must reproduce exactly this per-key value order.
fn reference_groups(runs: &[Vec<(u16, u64)>]) -> Vec<(u16, Vec<u64>)> {
    let mut grouped: BTreeMap<u16, Vec<u64>> = BTreeMap::new();
    for run in runs {
        for &(k, v) in run {
            grouped.entry(k).or_default().push(v);
        }
    }
    grouped.into_iter().collect()
}

/// Random sorted runs: each inner batch is key-sorted (stably, so a key's
/// values keep their emission order within the run).
fn arb_runs() -> impl Strategy<Value = Vec<Vec<(u16, u64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u16..12, any::<u64>()), 0..40),
        0..12,
    )
    .prop_map(|mut runs| {
        for run in &mut runs {
            run.sort_by_key(|&(k, _)| k);
        }
        runs
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tuple_wire_round_trips(tuple in arb_tuple()) {
        let mut buf = Vec::new();
        tuple.wire_encode(&mut buf);
        let mut cursor = WireCursor::new(&buf);
        let back = Tuple::wire_decode(&mut cursor).expect("decode");
        prop_assert_eq!(back, tuple);
        prop_assert!(cursor.is_empty(), "decode must consume the encoding");
    }

    #[test]
    fn pair_codec_round_trips(
        pairs in proptest::collection::vec((any::<u64>(), arb_tuple()), 0..50)
    ) {
        let frame = encode_pairs(&pairs);
        let back: Vec<(u64, Tuple)> = decode_pairs(&frame).expect("decode");
        prop_assert_eq!(back, pairs);
    }

    /// The external merge over on-disk runs yields exactly the groups (and
    /// per-key value order) of the in-memory engine, for any run shapes and
    /// any fan-in — including fan-ins small enough to force multi-pass
    /// cascades through intermediate disk runs.
    #[test]
    fn external_merge_matches_in_memory_grouping(
        runs in arb_runs(),
        fan_in in 2usize..6,
        disk_mask in any::<u16>(),
    ) {
        let session =
            SpillSession::create(&StorageConfig::test(), "prop").expect("spill session");
        let mut sources: Vec<RunSource<u16, u64>> = Vec::new();
        for (i, run) in runs.iter().enumerate() {
            // Mix disk and in-memory runs: both cross the same merge.
            if disk_mask & (1 << (i as u16 % 16)) != 0 {
                let segment = write_segment(
                    session.segment_path(i, 0),
                    std::slice::from_ref(run),
                    256,
                )
                .expect("write run");
                sources.push(RunSource::Disk { segment, part: 0 });
            } else {
                sources.push(RunSource::Mem(run.clone()));
            }
        }
        let (mut merge, stats) =
            external_merge(&session, 0, sources, fan_in, 256).expect("merge");
        let mut got: Vec<(u16, Vec<u64>)> = Vec::new();
        while let Some(group) = merge.next_group().expect("group") {
            got.push(group);
        }
        prop_assert_eq!(got, reference_groups(&runs));
        prop_assert_eq!(stats.runs, runs.len() as u64, "stats count presented runs");
    }

    /// Pair-by-pair streaming (the shuffle counting pass) agrees with the
    /// flattened reference as well.
    #[test]
    fn kway_merge_streams_pairs_in_reference_order(runs in arb_runs()) {
        let sources: Vec<RunSource<u16, u64>> =
            runs.iter().map(|r| RunSource::Mem(r.clone())).collect();
        let mut merge = KWayMerge::open(sources).expect("open");
        let mut got: Vec<(u16, u64)> = Vec::new();
        while let Some(pair) = merge.next_pair().expect("pair") {
            got.push(pair);
        }
        let want: Vec<(u16, u64)> = reference_groups(&runs)
            .into_iter()
            .flat_map(|(k, vs)| vs.into_iter().map(move |v| (k, v)))
            .collect();
        prop_assert_eq!(got, want);
    }
}
