//! Property tests for the MapReduce engine: jobs must compute the same
//! answer as a sequential reference regardless of split shape, reducer
//! count, or injected failures, and the scheduling model must respect its
//! bounds.

use std::collections::BTreeMap;
use std::time::Duration;

use proptest::prelude::*;

use skymr_mapreduce::cluster::makespan;
use skymr_mapreduce::{
    run_job, ClusterConfig, Emitter, FaultPlan, HashPartitioner, JobConfig, MapFactory, MapTask,
    OutputCollector, ReduceFactory, ReduceTask, TaskContext, TaskFault,
};

/// Sum-by-key: the canonical aggregation job used as the reference model.
struct SumMap;
struct SumMapTask;
impl MapTask for SumMapTask {
    type In = (u16, u32);
    type K = u16;
    type V = u64;
    fn map(&mut self, input: &(u16, u32), out: &mut Emitter<u16, u64>) {
        out.emit(input.0, input.1 as u64);
    }
}
impl MapFactory for SumMap {
    type Task = SumMapTask;
    fn create(&self, _: &TaskContext) -> SumMapTask {
        SumMapTask
    }
}

struct SumReduce;
struct SumReduceTask;
impl ReduceTask for SumReduceTask {
    type K = u16;
    type V = u64;
    type Out = (u16, u64);
    fn reduce(&mut self, key: u16, values: Vec<u64>, out: &mut OutputCollector<(u16, u64)>) {
        out.collect((key, values.into_iter().sum()));
    }
}
impl ReduceFactory for SumReduce {
    type Task = SumReduceTask;
    fn create(&self, _: &TaskContext) -> SumReduceTask {
        SumReduceTask
    }
}

fn reference(records: &[(u16, u32)]) -> BTreeMap<u16, u64> {
    let mut m = BTreeMap::new();
    for &(k, v) in records {
        *m.entry(k).or_insert(0u64) += v as u64;
    }
    m
}

fn split_into(records: &[(u16, u32)], splits: usize) -> Vec<Vec<(u16, u32)>> {
    let mut out: Vec<Vec<(u16, u32)>> = (0..splits).map(|_| Vec::new()).collect();
    for (i, r) in records.iter().enumerate() {
        out[i % splits].push(*r);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn job_matches_sequential_reference(
        records in proptest::collection::vec((0u16..20, 0u32..1000), 0..200),
        mappers in 1usize..8,
        reducers in 1usize..8,
    ) {
        let splits = split_into(&records, mappers);
        let outcome = run_job(
            &ClusterConfig::test(),
            &JobConfig::new("sum", reducers),
            &splits,
            &SumMap,
            &SumReduce,
            &HashPartitioner,
        );
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(err) => return Err(format!("job aborted: {err}")),
        };
        let got: BTreeMap<u16, u64> = outcome.into_flat_output().into_iter().collect();
        prop_assert_eq!(got, reference(&records));
    }

    #[test]
    fn failures_never_change_the_answer(
        records in proptest::collection::vec((0u16..10, 0u32..100), 1..100),
        mappers in 1usize..5,
        reducers in 1usize..5,
        fail_map in proptest::collection::btree_set(0usize..5, 0..3),
        fail_reduce in proptest::collection::btree_set(0usize..5, 0..3),
    ) {
        let splits = split_into(&records, mappers);
        let mut faults = FaultPlan::fail_maps(fail_map.into_iter().filter(|&i| i < mappers));
        for j in fail_reduce.into_iter().filter(|&j| j < reducers) {
            faults = faults.with_reduce_fault(j, TaskFault::lost(1));
        }
        let expected_retries =
            (faults.map_faults.len() + faults.reduce_faults.len()) as u64;
        let outcome = run_job(
            &ClusterConfig::test(),
            &JobConfig::new("sum", reducers).with_faults(faults),
            &splits,
            &SumMap,
            &SumReduce,
            &HashPartitioner,
        );
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(err) => return Err(format!("job aborted: {err}")),
        };
        prop_assert_eq!(
            outcome.metrics.map_retries + outcome.metrics.reduce_retries,
            expected_retries
        );
        let got: BTreeMap<u16, u64> = outcome.into_flat_output().into_iter().collect();
        prop_assert_eq!(got, reference(&records));
    }

    #[test]
    fn makespan_bounds(
        millis in proptest::collection::vec(0u64..1000, 0..40),
        slots in 1usize..16,
    ) {
        let durations: Vec<Duration> = millis.iter().map(|&m| Duration::from_millis(m)).collect();
        let span = makespan(&durations, slots, Duration::ZERO);
        let total: Duration = durations.iter().sum();
        let max = durations.iter().max().copied().unwrap_or(Duration::ZERO);
        // Classic list-scheduling bounds.
        prop_assert!(span >= max, "makespan below the longest task");
        prop_assert!(span >= total / slots as u32, "makespan below the load bound");
        prop_assert!(span <= total, "makespan above the serial bound");
        // One slot serializes everything.
        prop_assert_eq!(makespan(&durations, 1, Duration::ZERO), total);
        // LPT guarantee: within 4/3 of the trivial lower bound + max.
        let lower = std::cmp::max(max, total / slots as u32);
        prop_assert!(span.as_nanos() <= lower.as_nanos() * 4 / 3 + max.as_nanos());
    }

    #[test]
    fn shuffle_accounting_matches_emissions(
        records in proptest::collection::vec((0u16..8, 0u32..50), 0..100),
        reducers in 1usize..5,
    ) {
        let splits = split_into(&records, 3);
        let outcome = run_job(
            &ClusterConfig::test(),
            &JobConfig::new("sum", reducers),
            &splits,
            &SumMap,
            &SumReduce,
            &HashPartitioner,
        );
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(err) => return Err(format!("job aborted: {err}")),
        };
        // Each (u16, u64) pair is 2 + 8 bytes on the wire.
        prop_assert_eq!(outcome.metrics.shuffle_bytes, records.len() as u64 * 10);
        prop_assert_eq!(outcome.metrics.map_output_records, records.len() as u64);
        prop_assert_eq!(
            outcome.metrics.per_reducer_bytes.iter().sum::<u64>(),
            outcome.metrics.shuffle_bytes
        );
    }
}
